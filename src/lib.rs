//! # cots-suite
//!
//! Umbrella crate for the CoTS reproduction workspace. It carries the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`); the library surface simply re-exports the member crates so
//! examples and downstream experiments can depend on a single crate.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub use cots;
pub use cots_core as core;
pub use cots_datagen as datagen;
pub use cots_naive as naive;
pub use cots_profiling as profiling;
pub use cots_sequential as sequential;
