//! Count conservation (`Σ counts == N`) and bound soundness under
//! adversarial stream shapes and eviction churn, for every Space-Saving
//! engine in the suite.

use std::sync::Arc;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::{CotsConfig, FrequencyCounter, QueryableSummary, Snapshot, SummaryConfig};
use cots_datagen::{Distribution, ExactCounter, StreamSpec};
use cots_naive::{IndependentSpaceSaving, LockKind, MergeStrategy, SharedSpaceSaving};
use cots_sequential::SpaceSaving;

const CAPACITY: usize = 64;

fn adversarial_specs() -> Vec<(&'static str, StreamSpec)> {
    vec![
        (
            "all-distinct (pure overwrite)",
            StreamSpec {
                len: 20_000,
                alphabet: 0,
                distribution: Distribution::AllDistinct,
                seed: 1,
                scramble_ids: true,
            },
        ),
        (
            "constant (pure increment)",
            StreamSpec {
                len: 20_000,
                alphabet: 1,
                distribution: Distribution::Constant,
                seed: 2,
                scramble_ids: true,
            },
        ),
        (
            "round-robin (max churn)",
            StreamSpec {
                len: 20_000,
                alphabet: 1_000,
                distribution: Distribution::RoundRobin,
                seed: 3,
                scramble_ids: true,
            },
        ),
        (
            "uniform over big alphabet",
            StreamSpec {
                len: 20_000,
                alphabet: 5_000,
                distribution: Distribution::Uniform,
                seed: 4,
                scramble_ids: true,
            },
        ),
        ("zipf 1.5", StreamSpec::zipf(20_000, 5_000, 1.5, 5)),
        ("zipf 3.0", StreamSpec::zipf(20_000, 5_000, 3.0, 6)),
    ]
}

fn check(snapshot: &Snapshot<u64>, truth: &ExactCounter<u64>, label: &str) {
    let n = truth.processed();
    let sum: u64 = snapshot.entries().iter().map(|e| e.count).sum();
    assert_eq!(sum, n, "{label}: count conservation");
    assert!(snapshot.len() <= CAPACITY, "{label}: capacity bound");
    for e in snapshot.entries() {
        let t = truth.count(&e.item);
        assert!(
            e.count >= t,
            "{label}: {} count {} < true {}",
            e.item,
            e.count,
            t
        );
        assert!(
            e.guaranteed() <= t,
            "{label}: {} guarantee {} > true {}",
            e.item,
            e.guaranteed(),
            t
        );
    }
    // Unmonitored elements must be bounded by the minimum monitored count
    // (Space Saving's core guarantee) when the structure is full.
    if snapshot.len() == CAPACITY {
        let min = snapshot.entries().last().unwrap().count;
        let snap_items: std::collections::HashSet<u64> =
            snapshot.entries().iter().map(|e| e.item).collect();
        for (item, t) in truth.frequent(cots_core::Threshold::Count(min + 1)) {
            assert!(
                snap_items.contains(&item),
                "{label}: unmonitored {item} has count {t} > min {min}"
            );
        }
    }
}

#[test]
fn sequential_conserves_on_adversarial_streams() {
    for (label, spec) in adversarial_specs() {
        let stream = spec.generate();
        let truth = ExactCounter::from_stream(&stream);
        let mut e = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(CAPACITY).unwrap());
        e.process_slice(&stream);
        e.check_invariants();
        check(&e.snapshot(), &truth, label);
    }
}

#[test]
fn shared_conserves_on_adversarial_streams() {
    for (label, spec) in adversarial_specs() {
        let stream = spec.generate();
        let truth = ExactCounter::from_stream(&stream);
        let e = SharedSpaceSaving::<u64>::new(
            SummaryConfig::with_capacity(CAPACITY).unwrap(),
            LockKind::Mutex,
        )
        .unwrap();
        cots_naive::runner::run_concurrent(&e, &stream, 4, false).unwrap();
        check(&e.snapshot(), &truth, label);
    }
}

#[test]
fn cots_conserves_on_adversarial_streams() {
    for (label, spec) in adversarial_specs() {
        let stream = spec.generate();
        let truth = ExactCounter::from_stream(&stream);
        for threads in [1usize, 4, 16] {
            let e = Arc::new(
                CotsEngine::<u64>::new(CotsConfig::for_capacity(CAPACITY).unwrap()).unwrap(),
            );
            cots::run(
                &e,
                &stream,
                RuntimeOptions {
                    threads,
                    batch: 256,
                    adaptive: false,
                },
            )
            .unwrap();
            check(&e.snapshot(), &truth, &format!("{label} x{threads}"));
        }
    }
}

#[test]
fn independent_merge_keeps_sound_bounds_under_churn() {
    // The merged result is allowed looser bounds than a single structure
    // (absent-mass substitution) but they must stay *sound*.
    for (label, spec) in adversarial_specs() {
        let stream = spec.generate();
        let truth = ExactCounter::from_stream(&stream);
        let engine = IndependentSpaceSaving {
            config: SummaryConfig::with_capacity(CAPACITY).unwrap(),
            strategy: MergeStrategy::Serial,
            merge_every: Some(5_000),
        };
        let out = engine.run(&stream, 4, false).unwrap();
        assert_eq!(out.snapshot.total(), truth.processed(), "{label}");
        for e in out.snapshot.entries() {
            let t = truth.count(&e.item);
            assert!(
                e.count >= t,
                "{label}: merged count {} < true {}",
                e.count,
                t
            );
            assert!(
                e.guaranteed() <= t,
                "{label}: merged guarantee {} > true {}",
                e.guaranteed(),
                t
            );
        }
    }
}

#[test]
fn cots_adaptive_conserves() {
    let stream = StreamSpec::zipf(40_000, 2_000, 2.0, 11).generate();
    let truth = ExactCounter::from_stream(&stream);
    let e = Arc::new(
        CotsEngine::<u64>::new(
            CotsConfig::for_capacity(CAPACITY)
                .unwrap()
                .with_adaptive(64, 8),
        )
        .unwrap(),
    );
    cots::run(
        &e,
        &stream,
        RuntimeOptions {
            threads: 8,
            batch: 256,
            adaptive: true,
        },
    )
    .unwrap();
    check(&e.snapshot(), &truth, "cots adaptive");
}
