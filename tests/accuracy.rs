//! End-to-end accuracy of every engine against exact ground truth on the
//! paper's zipfian workloads: ε-recall of the frequent set, precision of
//! the guaranteed set, and top-k quality.

use std::sync::Arc;

use cots::{CotsEngine, Policy, RuntimeOptions};
use cots_core::{CotsConfig, FrequencyCounter, QueryableSummary, SummaryConfig, Threshold};
use cots_datagen::{AccuracyReport, ExactCounter, StreamSpec};
use cots_sequential::{CountMinSketch, CountSketch, LossyCounting, MisraGries, SpaceSaving};

const N: usize = 80_000;
const ALPHABET: usize = 8_000;
const CAPACITY: usize = 256; // ε = 1/256

fn workload(alpha: f64) -> (Vec<u64>, ExactCounter<u64>) {
    let stream = StreamSpec::zipf(N, ALPHABET, alpha, 21).generate();
    let truth = ExactCounter::from_stream(&stream);
    (stream, truth)
}

/// Threshold strictly above εN so recall must be 1 for ε-deficient
/// algorithms.
fn eps_threshold() -> Threshold {
    Threshold::Count((N / CAPACITY + 1) as u64)
}

#[test]
fn space_saving_epsilon_recall_is_one() {
    for alpha in [1.5, 2.0, 3.0] {
        let (stream, truth) = workload(alpha);
        let mut e = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(CAPACITY).unwrap());
        e.process_slice(&stream);
        let rep = AccuracyReport::for_frequent(&e.snapshot(), &truth, eps_threshold());
        assert_eq!(rep.recall, 1.0, "alpha {alpha}: {rep:?}");
        // Guaranteed-frequent answers must be truly frequent (precision 1
        // by construction of the lower bound).
        let min = eps_threshold().resolve(N as u64);
        for g in e.snapshot().guaranteed_frequent(eps_threshold()) {
            assert!(truth.count(&g.item) >= g.guaranteed());
            assert!(g.guaranteed() >= min);
        }
    }
}

#[test]
fn lossy_counting_epsilon_recall_is_one() {
    for alpha in [1.5, 2.5] {
        let (stream, truth) = workload(alpha);
        let mut e = LossyCounting::<u64>::new(SummaryConfig::with_capacity(CAPACITY).unwrap());
        e.process_slice(&stream);
        let rep = AccuracyReport::for_frequent(&e.snapshot(), &truth, eps_threshold());
        assert_eq!(rep.recall, 1.0, "alpha {alpha}: {rep:?}");
    }
}

#[test]
fn misra_gries_epsilon_recall_is_one() {
    for alpha in [1.5, 2.5] {
        let (stream, truth) = workload(alpha);
        let mut e = MisraGries::<u64>::new(SummaryConfig::with_capacity(CAPACITY).unwrap());
        e.process_slice(&stream);
        let rep = AccuracyReport::for_frequent(&e.snapshot(), &truth, eps_threshold());
        assert_eq!(rep.recall, 1.0, "alpha {alpha}: {rep:?}");
    }
}

#[test]
fn sketches_track_heavy_hitters() {
    let (stream, truth) = workload(2.0);
    let cfg = SummaryConfig::with_capacity(CAPACITY).unwrap();

    let mut cm = CountMinSketch::<u64>::new(0.005, 0.01, cfg).unwrap();
    cm.process_slice(&stream);
    let rep = AccuracyReport::for_top_k(&cm.snapshot(), &truth, 10);
    assert!(rep.recall >= 0.9, "count-min top-10 recall {rep:?}");

    let mut cs = CountSketch::<u64>::new(1024, 5, cfg).unwrap();
    cs.process_slice(&stream);
    let rep = AccuracyReport::for_top_k(&cs.snapshot(), &truth, 10);
    assert!(rep.recall >= 0.9, "count-sketch top-10 recall {rep:?}");
}

#[test]
fn cots_epsilon_recall_is_one_at_any_concurrency() {
    for alpha in [1.5, 2.0, 3.0] {
        let (stream, truth) = workload(alpha);
        for threads in [1usize, 4, 32] {
            let e = Arc::new(
                CotsEngine::<u64>::new(CotsConfig::for_capacity(CAPACITY).unwrap()).unwrap(),
            );
            cots::run(
                &e,
                &stream,
                RuntimeOptions {
                    threads,
                    batch: 512,
                    adaptive: false,
                },
            )
            .unwrap();
            let rep = AccuracyReport::for_frequent(&e.snapshot(), &truth, eps_threshold());
            assert_eq!(rep.recall, 1.0, "alpha {alpha} x{threads}: {rep:?}");
            // Top-k of the head must be perfect for skewed data.
            let rep = AccuracyReport::for_top_k(&e.snapshot(), &truth, 5);
            assert_eq!(rep.recall, 1.0, "alpha {alpha} x{threads} top-5: {rep:?}");
        }
    }
}

#[test]
fn cots_lossy_policy_tracks_heavy_hitters_concurrently() {
    let (stream, truth) = workload(2.0);
    let e = Arc::new(
        CotsEngine::<u64>::with_policy(
            CotsConfig::for_capacity(4096).unwrap(),
            Policy::LossyRounds {
                width: CAPACITY as u64,
            },
        )
        .unwrap(),
    );
    cots::run(
        &e,
        &stream,
        RuntimeOptions {
            threads: 4,
            batch: 512,
            adaptive: false,
        },
    )
    .unwrap();
    let rep = AccuracyReport::for_frequent(&e.snapshot(), &truth, eps_threshold());
    assert_eq!(rep.recall, 1.0, "{rep:?}");
}

#[test]
fn estimates_are_within_min_count_error() {
    // Beyond recall: every monitored estimate deviates from the truth by
    // at most the eviction floor (min monitored count).
    let (stream, truth) = workload(2.0);
    let mut e = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(CAPACITY).unwrap());
    e.process_slice(&stream);
    let min = e.min_count();
    for entry in e.snapshot().entries() {
        let t = truth.count(&entry.item);
        assert!(
            entry.count - t <= min,
            "overestimate {} > floor {min}",
            entry.count - t
        );
    }
}
