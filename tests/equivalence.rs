//! Cross-engine equivalence: on streams whose alphabet fits the counter
//! budget, every engine — sequential, naive-shared, naive-independent, and
//! CoTS at any thread count — must produce the *exact* ground-truth counts,
//! regardless of interleaving.

use std::sync::Arc;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::{
    ConcurrentCounter, CotsConfig, FrequencyCounter, QueryableSummary, Snapshot, SummaryConfig,
};
use cots_datagen::{ExactCounter, StreamSpec};
use cots_naive::{IndependentSpaceSaving, LockKind, MergeStrategy, SharedSpaceSaving};
use cots_sequential::SpaceSaving;

const N: usize = 60_000;
const ALPHABET: usize = 200;
const CAPACITY: usize = 512; // > alphabet: exact regime

fn assert_exact(snapshot: &Snapshot<u64>, truth: &ExactCounter<u64>, engine: &str) {
    assert_eq!(snapshot.total(), N as u64, "{engine}: total");
    assert_eq!(snapshot.len(), truth.distinct(), "{engine}: distinct");
    for e in snapshot.entries() {
        assert_eq!(e.count, truth.count(&e.item), "{engine}: item {}", e.item);
        assert_eq!(e.error, 0, "{engine}: error of {}", e.item);
    }
}

fn workload(alpha: f64, seed: u64) -> (Vec<u64>, ExactCounter<u64>) {
    let stream = StreamSpec::zipf(N, ALPHABET, alpha, seed).generate();
    let truth = ExactCounter::from_stream(&stream);
    (stream, truth)
}

#[test]
fn sequential_is_exact() {
    let (stream, truth) = workload(1.5, 1);
    let mut e = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(CAPACITY).unwrap());
    e.process_slice(&stream);
    e.check_invariants();
    assert_exact(&e.snapshot(), &truth, "sequential");
}

#[test]
fn shared_is_exact_at_all_thread_counts() {
    let (stream, truth) = workload(2.0, 2);
    for threads in [1usize, 2, 4, 8] {
        for kind in [LockKind::Mutex, LockKind::Spin] {
            let e = SharedSpaceSaving::<u64>::new(
                SummaryConfig::with_capacity(CAPACITY).unwrap(),
                kind,
            )
            .unwrap();
            cots_naive::runner::run_concurrent(&e, &stream, threads, false).unwrap();
            assert_exact(
                &e.snapshot(),
                &truth,
                &format!("shared x{threads} {kind:?}"),
            );
        }
    }
}

#[test]
fn independent_is_exact_for_both_merges() {
    let (stream, truth) = workload(2.5, 3);
    for strategy in [MergeStrategy::Serial, MergeStrategy::Hierarchical] {
        for threads in [1usize, 3, 8] {
            let engine = IndependentSpaceSaving {
                config: SummaryConfig::with_capacity(CAPACITY).unwrap(),
                strategy,
                merge_every: Some(10_000),
            };
            let out = engine.run(&stream, threads, false).unwrap();
            assert_exact(
                &out.snapshot,
                &truth,
                &format!("independent {strategy:?} x{threads}"),
            );
        }
    }
}

#[test]
fn cots_is_exact_at_all_thread_counts() {
    let (stream, truth) = workload(2.0, 4);
    for threads in [1usize, 2, 4, 16, 64] {
        let e =
            Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(CAPACITY).unwrap()).unwrap());
        cots::run(
            &e,
            &stream,
            RuntimeOptions {
                threads,
                batch: 512,
                adaptive: false,
            },
        )
        .unwrap();
        assert_eq!(e.processed(), N as u64);
        assert_exact(&e.snapshot(), &truth, &format!("cots x{threads}"));
    }
}

#[test]
fn cots_matches_sequential_beyond_exact_regime_on_heavy_head() {
    // With a constrained budget the engines may disagree on the tail, but
    // the heavy head (counts far above the eviction floor) must match the
    // sequential algorithm's estimates exactly at any concurrency — those
    // elements are never evicted.
    let stream = StreamSpec::zipf(100_000, 20_000, 2.5, 9).generate();
    let mut seq = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(128).unwrap());
    seq.process_slice(&stream);
    let seq_snap = seq.snapshot();
    let truth = ExactCounter::from_stream(&stream);

    let e = Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(128).unwrap()).unwrap());
    cots::run(
        &e,
        &stream,
        RuntimeOptions {
            threads: 8,
            batch: 1024,
            adaptive: false,
        },
    )
    .unwrap();
    let cots_snap = e.snapshot();

    for entry in seq_snap.top_k(10) {
        let t = truth.count(&entry.item);
        let c = cots_snap.get(&entry.item).expect("head element monitored");
        // Both engines track the head exactly (error 0, exact count).
        assert_eq!(entry.count, t, "sequential head exact");
        assert_eq!(c.count, t, "cots head exact");
        assert_eq!(c.error, 0);
    }
}
