//! End-to-end: the SQL-ish query dialect and the jumping window driving
//! real engines.

use std::sync::Arc;

use cots::{CotsEngine, JumpingWindow, RuntimeOptions};
use cots_core::ql;
use cots_core::query::{QueryKind, QueryPeriod};
use cots_core::{CotsConfig, QueryableSummary};
use cots_datagen::StreamSpec;

#[test]
fn parsed_statements_run_against_a_live_engine() {
    let stream = StreamSpec {
        scramble_ids: false,
        ..StreamSpec::zipf(60_000, 2_000, 2.0, 5)
    }
    .generate();
    let engine = Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(256).unwrap()).unwrap());
    cots::run(
        &engine,
        &stream,
        RuntimeOptions {
            threads: 4,
            batch: 512,
            adaptive: false,
        },
    )
    .unwrap();

    // Set query through the dialect matches the direct API.
    let stmt = ql::parse("Select S.element From Stream S Where IsElementFrequent(S.element, 0.01)")
        .unwrap();
    let QueryKind::Set(set) = stmt.query else {
        panic!("expected a set query")
    };
    let via_ql = engine.set_query(set);
    let direct = engine.set_query(cots_core::SetQuery::Frequent {
        threshold: cots_core::Threshold::Fraction(0.01),
    });
    assert_eq!(via_ql.entries(), direct.entries());
    assert!(!via_ql.is_empty(), "1% of a zipf(2.0) stream is non-empty");

    // Point query: rank 1 must be in the top 5 (unscrambled ids = ranks).
    let stmt = ql::parse("Select S.element From Stream S Where IsElementInTopk(1, 5)").unwrap();
    let QueryKind::Point(p) = stmt.query else {
        panic!("expected a point query")
    };
    assert!(engine.point_query(p));

    // Interval scheduling drives periodic evaluation.
    let stmt =
        ql::parse("Select S.element From Stream S Where IsElementInTopk(S.element, 3) Every 20000")
            .unwrap();
    let iq = stmt.to_interval(0.0);
    let QueryPeriod::Updates(period) = iq.period;
    assert_eq!(period, 20_000);
    let mut evaluations = 0;
    for (i, _) in stream.iter().enumerate() {
        if ((i + 1) as u64).is_multiple_of(period) {
            let ans = engine.query(iq.query);
            assert_eq!(ans.as_set().unwrap().len(), 3);
            evaluations += 1;
        }
    }
    assert_eq!(evaluations, 3);
}

#[test]
fn jumping_window_tracks_a_drifting_distribution() {
    // The hot set shifts every phase; the window must follow it while the
    // full-history engine stays anchored to the oldest heavy hitters.
    let window =
        Arc::new(JumpingWindow::<u64>::new(CotsConfig::for_capacity(64).unwrap(), 20_000).unwrap());
    let full = Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(64).unwrap()).unwrap());

    let phases: [(u64, usize); 3] = [(100, 40_000), (200, 40_000), (300, 40_000)];
    for (base, len) in phases {
        for i in 0..len as u64 {
            // 75% of the phase's traffic on its own hot key.
            let item = if i % 4 != 3 {
                base
            } else {
                base + 1 + (i % 50)
            };
            window.process(item);
            full.delegate(item);
        }
    }
    full.finalize();

    let wsnap = window.snapshot();
    let top = wsnap.top_k(1);
    assert_eq!(
        top[0].item, 300,
        "window top must be the latest phase's hot key"
    );
    // Old hot keys have aged out of the window entirely.
    assert!(wsnap.get(&100).is_none(), "phase-1 key must have aged out");
    // The full-history engine still holds all three.
    let fsnap = full.snapshot();
    for key in [100u64, 200, 300] {
        assert!(
            fsnap.get(&key).is_some(),
            "full history must retain hot key {key}"
        );
    }
    assert!(window.rotations() >= 10);
}

#[test]
fn window_snapshot_is_safe_under_concurrent_feeding() {
    let window =
        Arc::new(JumpingWindow::<u64>::new(CotsConfig::for_capacity(32).unwrap(), 5_000).unwrap());
    std::thread::scope(|s| {
        for t in 0..3 {
            let w = window.clone();
            s.spawn(move || {
                for i in 0..30_000u64 {
                    w.process((i + t as u64) % 20);
                }
            });
        }
        let w = window.clone();
        s.spawn(move || {
            for _ in 0..200 {
                let snap = w.snapshot();
                let sum: u64 = snap.entries().iter().map(|e| e.count).sum();
                assert!(sum <= w.window() + 1, "window mass bound: {sum}");
                for e in snap.entries() {
                    assert!(e.error <= e.count);
                }
            }
        });
    });
    assert_eq!(window.processed(), 90_000);
}
