//! Property-based tests (proptest) over the core invariants:
//!
//! * Space Saving guarantees on arbitrary streams (conservation, bounds,
//!   ε-recall, capacity);
//! * the merge algebra's soundness against ground truth for arbitrary
//!   partitionings;
//! * CoTS ≡ sequential on exact-regime streams for arbitrary thread counts;
//! * Lossy Counting / Misra-Gries bounds;
//! * zipf sampler distribution law.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::merge::merge_snapshots;
use cots_core::{CotsConfig, FrequencyCounter, QueryableSummary, SummaryConfig};
use cots_datagen::partition::{by_hash, chunked, round_robin};
use cots_datagen::ExactCounter;
use cots_sequential::{LossyCounting, MisraGries, SpaceSaving};

fn space_saving(stream: &[u64], capacity: usize) -> SpaceSaving<u64> {
    let mut e = SpaceSaving::new(SummaryConfig::with_capacity(capacity).unwrap());
    e.process_slice(stream);
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn space_saving_invariants(
        stream in vec(0u64..64, 1..2_000),
        capacity in 1usize..40,
    ) {
        let truth = ExactCounter::from_stream(&stream);
        let e = space_saving(&stream, capacity);
        e.check_invariants();
        let snap = e.snapshot();
        // Conservation.
        let sum: u64 = snap.entries().iter().map(|x| x.count).sum();
        prop_assert_eq!(sum, stream.len() as u64);
        // Capacity.
        prop_assert!(snap.len() <= capacity);
        // Bounds.
        for entry in snap.entries() {
            let t = truth.count(&entry.item);
            prop_assert!(entry.count >= t);
            prop_assert!(entry.guaranteed() <= t);
        }
        // ε-recall: anything above N/m is monitored.
        let floor = stream.len() as u64 / capacity as u64;
        for (item, t) in truth.frequent(cots_core::Threshold::Count(floor + 1)) {
            prop_assert!(snap.get(&item).is_some(), "missing {} (count {})", item, t);
        }
    }

    #[test]
    fn merge_is_sound_for_any_partitioning(
        stream in vec(0u64..48, 1..1_500),
        parts in 1usize..6,
        capacity in 2usize..32,
        scheme in 0u8..3,
    ) {
        let truth = ExactCounter::from_stream(&stream);
        let partitions: Vec<Vec<u64>> = match scheme {
            0 => chunked(&stream, parts).into_iter().map(|s| s.to_vec()).collect(),
            1 => round_robin(&stream, parts),
            _ => by_hash(&stream, parts),
        };
        let snapshots: Vec<_> = partitions
            .iter()
            .map(|p| {
                if p.is_empty() {
                    cots_core::Snapshot::new(vec![], 0)
                } else {
                    space_saving(p, capacity).snapshot()
                }
            })
            .collect();
        let merged = merge_snapshots(&snapshots, capacity);
        prop_assert_eq!(merged.total(), stream.len() as u64);
        prop_assert!(merged.len() <= capacity);
        for entry in merged.entries() {
            let t = truth.count(&entry.item);
            prop_assert!(entry.count >= t, "count {} < true {}", entry.count, t);
            prop_assert!(entry.guaranteed() <= t, "guarantee {} > true {}", entry.guaranteed(), t);
        }
    }

    #[test]
    fn cots_equals_ground_truth_in_exact_regime(
        stream in vec(0u64..32, 1..1_200),
        threads in 1usize..6,
    ) {
        let truth = ExactCounter::from_stream(&stream);
        let e = Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(64).unwrap()).unwrap());
        cots::run(&e, &stream, RuntimeOptions { threads, batch: 64, adaptive: false }).unwrap();
        let snap = e.snapshot();
        prop_assert_eq!(snap.len(), truth.distinct());
        for entry in snap.entries() {
            prop_assert_eq!(entry.count, truth.count(&entry.item));
            prop_assert_eq!(entry.error, 0);
        }
    }

    #[test]
    fn cots_conserves_beyond_exact_regime(
        stream in vec(0u64..512, 1..1_500),
        threads in 1usize..5,
        capacity in 2usize..24,
    ) {
        let truth = ExactCounter::from_stream(&stream);
        let e = Arc::new(
            CotsEngine::<u64>::new(CotsConfig::for_capacity(capacity).unwrap()).unwrap(),
        );
        cots::run(&e, &stream, RuntimeOptions { threads, batch: 128, adaptive: false }).unwrap();
        let snap = e.snapshot();
        let sum: u64 = snap.entries().iter().map(|x| x.count).sum();
        prop_assert_eq!(sum, stream.len() as u64);
        prop_assert!(snap.len() <= capacity);
        for entry in snap.entries() {
            let t = truth.count(&entry.item);
            prop_assert!(entry.count >= t);
            prop_assert!(entry.guaranteed() <= t);
        }
    }

    #[test]
    fn lossy_counting_bounds(
        stream in vec(0u64..64, 1..2_000),
        width in 2usize..64,
    ) {
        let truth = ExactCounter::from_stream(&stream);
        let mut e = LossyCounting::<u64>::new(SummaryConfig::with_capacity(width).unwrap());
        e.process_slice(&stream);
        let snap = e.snapshot();
        for entry in snap.entries() {
            let t = truth.count(&entry.item);
            prop_assert!(entry.count >= t);
            prop_assert!(entry.guaranteed() <= t);
        }
        // Completeness above εN.
        let floor = stream.len() as u64 / width as u64;
        for (item, _) in truth.frequent(cots_core::Threshold::Count(floor + 1)) {
            prop_assert!(snap.get(&item).is_some());
        }
    }

    #[test]
    fn misra_gries_bounds(
        stream in vec(0u64..64, 1..2_000),
        capacity in 1usize..48,
    ) {
        let truth = ExactCounter::from_stream(&stream);
        let mut e = MisraGries::<u64>::new(SummaryConfig::with_capacity(capacity).unwrap());
        e.process_slice(&stream);
        e.check_invariants();
        let snap = e.snapshot();
        for entry in snap.entries() {
            let t = truth.count(&entry.item);
            prop_assert!(entry.count >= t);
            prop_assert!(entry.guaranteed() <= t);
        }
        // D <= N/(m+1).
        prop_assert!(e.decrement_rounds() <= stream.len() as u64 / (capacity as u64 + 1));
    }

    #[test]
    fn snapshot_queries_are_internally_consistent(
        stream in vec(0u64..128, 1..1_000),
        k in 1usize..20,
        threshold in 1u64..50,
    ) {
        let e = space_saving(&stream, 32);
        let snap = e.snapshot();
        // top_k is a prefix of the sorted entries.
        let top = snap.top_k(k);
        prop_assert_eq!(&top[..], &snap.entries()[..top.len()]);
        // frequent() returns exactly the entries meeting the threshold.
        let freq = snap.frequent(cots_core::Threshold::Count(threshold));
        for e in &freq {
            prop_assert!(e.count >= threshold);
        }
        let n_meeting = snap.entries().iter().filter(|e| e.count >= threshold).count();
        prop_assert_eq!(freq.len(), n_meeting);
        // Point queries agree with set queries.
        for entry in &freq {
            prop_assert!(snap.is_frequent(&entry.item, cots_core::Threshold::Count(threshold)));
        }
    }
}
