//! The query model (§3.2) end to end: point, set, and interval queries
//! against live engines, including queries running concurrently with
//! updates (the paper's lock-free readers).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::query::{IntervalQuery, QueryKind, QueryPeriod};
use cots_core::{
    ConcurrentCounter, CotsConfig, FrequencyCounter, PointQuery, QueryableSummary, SetQuery,
    SummaryConfig, Threshold,
};
use cots_datagen::StreamSpec;
use cots_sequential::SpaceSaving;

#[test]
fn point_and_set_queries_agree_with_snapshot() {
    let stream = StreamSpec::zipf(50_000, 2_000, 2.0, 5).generate();
    let e = Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(256).unwrap()).unwrap());
    cots::run(
        &e,
        &stream,
        RuntimeOptions {
            threads: 4,
            batch: 512,
            adaptive: false,
        },
    )
    .unwrap();
    let snap = e.snapshot();
    let threshold = Threshold::Fraction(0.01);
    let frequent = e.set_query(SetQuery::Frequent { threshold });
    // Every element of the set answer satisfies the point query, and the
    // point query matches snapshot membership.
    for entry in frequent.entries() {
        assert!(e.point_query(PointQuery::IsFrequent {
            item: entry.item,
            threshold
        }));
    }
    assert_eq!(frequent.entries(), &snap.frequent(threshold)[..]);

    let top = e.set_query(SetQuery::TopK { k: 10 });
    assert_eq!(top.len(), 10);
    for entry in top.entries() {
        assert!(e.point_query(PointQuery::IsInTopK {
            item: entry.item,
            k: 10
        }));
    }
    // An element below the k-th frequency is not in top-k.
    let kth = e.kth_frequency(10).unwrap();
    if let Some(below) = snap.entries().iter().find(|x| x.count < kth) {
        assert!(!e.point_query(PointQuery::IsInTopK {
            item: below.item,
            k: 10
        }));
    }
}

#[test]
fn kth_frequency_matches_sorted_snapshot() {
    let stream = StreamSpec::zipf(30_000, 500, 2.5, 8).generate();
    let e = Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(128).unwrap()).unwrap());
    cots::run(
        &e,
        &stream,
        RuntimeOptions {
            threads: 2,
            batch: 512,
            adaptive: false,
        },
    )
    .unwrap();
    let snap = e.snapshot();
    for k in [1usize, 2, 5, 20, snap.len()] {
        assert_eq!(
            e.kth_frequency(k),
            snap.entries().get(k - 1).map(|x| x.count),
            "k = {k}"
        );
    }
    assert_eq!(e.kth_frequency(snap.len() + 1), None);
}

#[test]
fn interval_query_driver_over_sequential_engine() {
    // Query 3: a set query re-evaluated every 10 000 updates; answers must
    // be monotone in the total for the dominating element.
    let stream = StreamSpec::zipf(50_000, 1_000, 2.0, 13).generate();
    let q: IntervalQuery<u64> = IntervalQuery {
        query: QueryKind::Set(SetQuery::TopK { k: 1 }),
        period: QueryPeriod::Updates(10_000),
    };
    let QueryPeriod::Updates(period) = q.period;
    let mut engine = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(256).unwrap());
    let mut last_top_count = 0u64;
    let mut evaluations = 0;
    for (i, &item) in stream.iter().enumerate() {
        engine.process(item);
        if ((i + 1) as u64).is_multiple_of(period) {
            let ans = engine.query(q.query);
            let top = ans.as_set().unwrap()[0];
            assert!(top.count >= last_top_count, "top count must not shrink");
            last_top_count = top.count;
            evaluations += 1;
        }
    }
    assert_eq!(evaluations, 5);
}

#[test]
fn queries_concurrent_with_updates_are_safe_and_sane() {
    // Readers ask point/set queries while writers count; answers must be
    // internally consistent (error <= count, sets sorted, sizes bounded).
    let stream = StreamSpec::zipf(200_000, 5_000, 2.0, 17).generate();
    let e = Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(512).unwrap()).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let writer_engine = e.clone();
        let writer_stop = stop.clone();
        s.spawn(move || {
            cots::run(
                &writer_engine,
                &stream,
                RuntimeOptions {
                    threads: 2,
                    batch: 512,
                    adaptive: false,
                },
            )
            .unwrap();
            writer_stop.store(true, Ordering::Release);
        });
        for _ in 0..2 {
            let e = e.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut queries = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let snap = e.snapshot();
                    assert!(snap.entries().windows(2).all(|w| w[0].count >= w[1].count));
                    for entry in snap.top_k(5) {
                        assert!(entry.error <= entry.count);
                        let _ = e.point_query(PointQuery::IsFrequent {
                            item: entry.item,
                            threshold: Threshold::Count(1),
                        });
                    }
                    let _ = e.kth_frequency(3);
                    queries += 1;
                }
                assert!(queries > 0);
            });
        }
    });
    // Post-quiescence exactness.
    assert_eq!(e.processed(), 200_000);
    let sum: u64 = e.snapshot().entries().iter().map(|x| x.count).sum();
    assert_eq!(sum, 200_000);
}

#[test]
fn fractional_and_absolute_thresholds_are_consistent() {
    let stream = StreamSpec::zipf(10_000, 100, 2.0, 23).generate();
    let mut engine = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(128).unwrap());
    engine.process_slice(&stream);
    let snap = engine.snapshot();
    let frac = snap.frequent(Threshold::Fraction(0.02));
    let abs = snap.frequent(Threshold::Count(200)); // 2% of 10 000
    assert_eq!(frac, abs);
}
