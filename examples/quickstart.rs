//! Quickstart: count a skewed stream with the CoTS engine and answer the
//! paper's queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::{ConcurrentCounter, CotsConfig, PointQuery, QueryableSummary, SetQuery, Threshold};
use cots_datagen::StreamSpec;

fn main() {
    // A zipfian stream: 1M elements over a 50k alphabet, α = 2.0.
    let stream = StreamSpec::zipf(1_000_000, 50_000, 2.0, 7).generate();

    // An engine monitoring 1 000 counters (ε = 0.001).
    let engine = Arc::new(
        CotsEngine::<u64>::new(CotsConfig::for_capacity(1_000).expect("valid config"))
            .expect("valid config"),
    );

    // Count with 4 cooperating threads.
    let stats = cots::run(
        &engine,
        &stream,
        RuntimeOptions {
            threads: 4,
            batch: 2048,
            adaptive: false,
        },
    )
    .expect("run succeeds");
    println!(
        "processed {} elements in {:.3}s ({:.2} M elements/s), combining factor {:.1}",
        stats.elements,
        stats.elapsed.as_secs_f64(),
        stats.throughput() / 1e6,
        stats.work.combining_factor()
    );
    assert_eq!(engine.processed(), stream.len() as u64);

    // Query 2 (set): the top-10 elements.
    println!("\ntop-10 elements:");
    for e in engine.set_query(SetQuery::TopK { k: 10 }).entries() {
        println!(
            "  item {:>20}  count {:>7}  (error <= {})",
            e.item, e.count, e.error
        );
    }

    // Query 2 (set): everything above 0.5% of the stream.
    let frequent = engine.set_query(SetQuery::Frequent {
        threshold: Threshold::Fraction(0.005),
    });
    println!("\n{} elements exceed 0.5% of the stream", frequent.len());

    // Query 1 (point): is the most frequent element frequent / in the top-k?
    let top_item = engine.snapshot().top_k(1)[0].item;
    let is_frequent = engine.point_query(PointQuery::IsFrequent {
        item: top_item,
        threshold: Threshold::Fraction(0.01),
    });
    let in_top5 = engine.point_query(PointQuery::IsInTopK {
        item: top_item,
        k: 5,
    });
    println!("\nitem {top_item}: frequent(1%) = {is_frequent}, in top-5 = {in_top5}");

    // Point estimates run in O(1) against the live search structure.
    let (count, error) = engine.estimate(&top_item).expect("monitored");
    println!(
        "estimate: count = {count}, error bound = {error} (true count >= {})",
        count - error
    );
}
