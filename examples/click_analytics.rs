//! Internet-advertising click analytics — the paper's motivating scenario
//! (§1): a *publisher* counts impressions and clicks per advertisement in
//! real time to estimate Click-Through Rates, answer "ads clicked more than
//! 0.1% of total clicks" (a frequent-elements query), serve "top-25 most
//! clicked" (a top-k query), and flag click-fraud suspects.
//!
//! Two CoTS engines run side by side — one over the impression stream, one
//! over the click stream — and the CTR is derived from their estimates.
//!
//! ```text
//! cargo run --release --example click_analytics
//! ```

use std::sync::Arc;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::{CotsConfig, QueryableSummary, SetQuery, Threshold};
use cots_datagen::StreamSpec;
/// Tiny deterministic RNG so the example needs no extra dependencies.
mod rand_free {
    pub struct SmallRng(u64);

    impl SmallRng {
        pub fn new(seed: u64) -> Self {
            Self(seed | 1)
        }

        pub fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }

        /// A coin with probability `num/den`.
        pub fn chance(&mut self, num: u64, den: u64) -> bool {
            self.next() % den < num
        }
    }
}

const ADS: usize = 20_000;
const IMPRESSIONS: usize = 2_000_000;
const FRAUD_AD: u64 = 4_242;

fn main() {
    // Impressions follow ad popularity (zipf over ad ids, ids NOT
    // scrambled so they read as small integers).
    let mut impressions = StreamSpec {
        scramble_ids: false,
        ..StreamSpec::zipf(IMPRESSIONS, ADS, 1.8, 99)
    }
    .generate();

    // Clicks: every impression has a ~2% organic click chance, except one
    // fraudulent ad whose operator clicks ~60% of its own impressions.
    let mut rng = rand_free::SmallRng::new(7);
    let mut clicks: Vec<u64> = Vec::new();
    for &ad in &impressions {
        let p = if ad == FRAUD_AD { 60 } else { 2 };
        if rng.chance(p, 100) {
            clicks.push(ad);
        }
    }
    // Inject extra fraudulent impressions so the fraud ad is visible.
    impressions.resize(impressions.len() + 5_000, FRAUD_AD);
    for _ in 0..5_000 {
        if rng.chance(60, 100) {
            clicks.push(FRAUD_AD);
        }
    }

    let config = CotsConfig::for_capacity(2_000).expect("valid");
    let impressions_engine = Arc::new(CotsEngine::<u64>::new(config).expect("valid"));
    let clicks_engine = Arc::new(CotsEngine::<u64>::new(config).expect("valid"));
    let opts = RuntimeOptions {
        threads: 4,
        batch: 2048,
        adaptive: false,
    };
    let imp_stats = cots::run(&impressions_engine, &impressions, opts).expect("impressions run");
    let clk_stats = cots::run(&clicks_engine, &clicks, opts).expect("clicks run");
    println!(
        "counted {} impressions ({:.1} M/s) and {} clicks ({:.1} M/s)\n",
        imp_stats.elements,
        imp_stats.throughput() / 1e6,
        clk_stats.elements,
        clk_stats.throughput() / 1e6
    );

    // "Top-25 most clicked advertisements" (Query 2, top-k).
    println!("top-10 most clicked ads (of the top-25 query):");
    let top25 = clicks_engine.set_query(SetQuery::TopK { k: 25 });
    for e in top25.entries().iter().take(10) {
        let (imp, _) = impressions_engine.estimate(&e.item).unwrap_or((0, 0));
        let ctr = if imp > 0 {
            e.count as f64 / imp as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "  ad {:>6}: ~{:>6} clicks / ~{:>7} impressions  CTR {ctr:5.1}%",
            e.item, e.count, imp
        );
    }

    // "Ads clicked more than 0.1% of the total clicks" (Query 2, frequent).
    let hot = clicks_engine.set_query(SetQuery::Frequent {
        threshold: Threshold::Fraction(0.001),
    });
    println!("\n{} ads exceed 0.1% of all clicks", hot.len());

    // Fraud screen: a frequent ad whose CTR estimate is implausible.
    println!("\nfraud screen (CTR > 20% among frequently clicked ads):");
    let mut caught = false;
    for e in hot.entries() {
        let (imp, imp_err) = impressions_engine.estimate(&e.item).unwrap_or((0, 0));
        // Conservative CTR lower bound: guaranteed clicks over the
        // impression upper bound.
        let guaranteed_clicks = e.guaranteed();
        if imp > 0 && guaranteed_clicks as f64 / imp as f64 > 0.20 {
            println!(
                "  SUSPECT ad {:>6}: >= {} clicks on <= {} impressions (imp err {})",
                e.item, guaranteed_clicks, imp, imp_err
            );
            caught = e.item == FRAUD_AD || caught;
        }
    }
    assert!(caught, "the planted fraudulent ad must be flagged");
    println!("\nplanted fraudulent ad {FRAUD_AD} was flagged ✔");
}
