//! Network monitoring — the paper's second motivating application (§1):
//! watch a packet stream for heavy-hitter sources (e.g. a DDoS burst) with
//! *interval queries* (Query 3): the frequent-source set is re-evaluated
//! every 50 000 packets while counting continues on worker threads.
//!
//! The stream is mostly benign background traffic over a large address
//! space; partway through, a handful of attacking sources start flooding.
//! The monitor reports the window in which each attacker first crosses the
//! alert threshold.
//!
//! ```text
//! cargo run --release --example network_monitor
//! ```

use std::sync::Arc;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::{ConcurrentCounter, CotsConfig, QueryableSummary, Threshold};
use cots_datagen::{Distribution, StreamSpec};

const PACKETS: usize = 2_000_000;
const WINDOW: usize = 50_000;
const ATTACKERS: [u64; 3] = [0xBAD_0001, 0xBAD_0002, 0xBAD_0003];
/// Alert when a source exceeds 1% of traffic.
const ALERT: Threshold = Threshold::Fraction(0.01);

fn main() {
    // Background: lightly skewed traffic over ~1M source addresses — no
    // single benign source comes near the alert threshold (at α = 0.5 the
    // hottest source carries well under 0.1% of the traffic).
    let background = StreamSpec::zipf(PACKETS, 1_000_000, 0.5, 1234).generate();

    // Attack: starting at 40% of the trace, every 6th packet comes from
    // one of three attackers.
    let mut packets = Vec::with_capacity(background.len() + background.len() / 6);
    let attack_start = background.len() * 2 / 5;
    for (i, &src) in background.iter().enumerate() {
        packets.push(src);
        if i >= attack_start && i % 6 == 0 {
            packets.push(ATTACKERS[(i / 6) % ATTACKERS.len()]);
        }
    }

    let engine = Arc::new(
        CotsEngine::<u64>::new(CotsConfig::for_capacity(4_096).expect("valid")).expect("valid"),
    );

    // Interval-query loop: feed one window, then evaluate the set query.
    // (Queries run lock-free against the live structure; counting threads
    // are not paused — here we interleave for a deterministic report.)
    let opts = RuntimeOptions {
        threads: 4,
        batch: 2048,
        adaptive: false,
    };
    let mut alerted: Vec<u64> = Vec::new();
    for (w, window) in packets.chunks(WINDOW).enumerate() {
        cots::run(&engine, window, opts).expect("window run");
        let snapshot = engine.snapshot();
        for entry in snapshot.frequent(ALERT) {
            if !alerted.contains(&entry.item) {
                alerted.push(entry.item);
                let share = entry.count as f64 / snapshot.total() as f64 * 100.0;
                println!(
                    "window {w:>3}: source {:#x} crossed {:.2}% of traffic (count ~{})",
                    entry.item, share, entry.count
                );
            }
        }
    }
    println!(
        "\nprocessed {} packets; {} sources ever exceeded 1%",
        engine.processed(),
        alerted.len()
    );

    // The monitor must have caught every attacker and (in this synthetic
    // setup) nothing else.
    for a in ATTACKERS {
        assert!(alerted.contains(&a), "attacker {a:#x} missed");
        let (count, error) = engine.estimate(&a).expect("attacker monitored");
        println!(
            "attacker {a:#x}: estimated {count} packets (at least {})",
            count - error
        );
    }
    assert!(
        alerted.iter().all(|s| ATTACKERS.contains(s)),
        "false positives: {alerted:x?}"
    );
    println!(
        "all {} attackers detected, no false positives ✔",
        ATTACKERS.len()
    );

    // Bonus: was the background's hottest source ever close? Show the
    // top-5 for context.
    println!("\nfinal top-5 sources:");
    for e in engine.snapshot().top_k(5) {
        println!("  {:#x}: ~{} packets", e.item, e.count);
    }
    let _ = Distribution::Uniform; // (see cots-datagen for more traffic shapes)
}
