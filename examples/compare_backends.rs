//! Compare every frequency-counting engine in the suite on one stream:
//! throughput, accuracy against exact ground truth, and the work counters
//! that explain the differences.
//!
//! ```text
//! cargo run --release --example compare_backends [alpha]
//! ```

use std::sync::Arc;
use std::time::Instant;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::{
    CotsConfig, FrequencyCounter, QueryableSummary, Snapshot, SummaryConfig, Threshold,
};
use cots_datagen::{AccuracyReport, ExactCounter, StreamSpec};
use cots_naive::{IndependentSpaceSaving, LockKind, MergeStrategy, SharedSpaceSaving};
use cots_sequential::{CountMinSketch, LossyCounting, MisraGries, SpaceSaving};

const N: usize = 1_000_000;
const ALPHABET: usize = 50_000;
const CAPACITY: usize = 1_000;
const THREADS: usize = 4;

fn main() {
    let alpha: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2.0);
    println!("stream: {N} elements, alphabet {ALPHABET}, zipf alpha = {alpha}\n");
    let stream = StreamSpec::zipf(N, ALPHABET, alpha, 7).generate();
    let truth = ExactCounter::from_stream(&stream);
    let threshold = Threshold::Fraction(0.001);

    println!(
        "{:<22} {:>10} {:>9} {:>9} {:>10} {:>12}",
        "engine", "M elem/s", "recall", "precision", "avg relerr", "top-25 hits"
    );

    let report = |name: &str, secs: f64, snap: Snapshot<u64>| {
        let acc = AccuracyReport::for_frequent(&snap, &truth, threshold);
        let topk = AccuracyReport::for_top_k(&snap, &truth, 25);
        println!(
            "{:<22} {:>10.2} {:>9.3} {:>9.3} {:>10.4} {:>11.0}%",
            name,
            N as f64 / secs / 1e6,
            acc.recall,
            acc.precision,
            acc.avg_relative_error,
            topk.recall * 100.0
        );
    };

    let cfg = SummaryConfig::with_capacity(CAPACITY).unwrap();

    // Sequential counter-based engines.
    let t = Instant::now();
    let mut e = SpaceSaving::<u64>::new(cfg);
    e.process_slice(&stream);
    report(
        "space-saving (seq)",
        t.elapsed().as_secs_f64(),
        e.snapshot(),
    );

    let t = Instant::now();
    let mut e = LossyCounting::<u64>::new(cfg);
    e.process_slice(&stream);
    report(
        "lossy-counting (seq)",
        t.elapsed().as_secs_f64(),
        e.snapshot(),
    );

    let t = Instant::now();
    let mut e = MisraGries::<u64>::new(cfg);
    e.process_slice(&stream);
    report("misra-gries (seq)", t.elapsed().as_secs_f64(), e.snapshot());

    // A sketch baseline.
    let t = Instant::now();
    let mut e = CountMinSketch::<u64>::new(0.001, 0.01, cfg).unwrap();
    e.process_slice(&stream);
    report("count-min + heap", t.elapsed().as_secs_f64(), e.snapshot());

    // Naive parallelizations.
    let t = Instant::now();
    let engine = SharedSpaceSaving::<u64>::new(cfg, LockKind::Mutex).unwrap();
    cots_naive::runner::run_concurrent(&engine, &stream, THREADS, false).unwrap();
    report(
        &format!("shared-mutex x{THREADS}"),
        t.elapsed().as_secs_f64(),
        engine.snapshot(),
    );

    let t = Instant::now();
    let ind = IndependentSpaceSaving {
        config: cfg,
        strategy: MergeStrategy::Serial,
        merge_every: Some(50_000),
    };
    let out = ind.run(&stream, THREADS, false).unwrap();
    report(
        &format!("independent x{THREADS}"),
        t.elapsed().as_secs_f64(),
        out.snapshot,
    );

    // CoTS.
    for threads in [THREADS, 16] {
        let engine =
            Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(CAPACITY).unwrap()).unwrap());
        let t = Instant::now();
        cots::run(
            &engine,
            &stream,
            RuntimeOptions {
                threads,
                batch: 2048,
                adaptive: false,
            },
        )
        .unwrap();
        let secs = t.elapsed().as_secs_f64();
        let w = engine.work();
        report(&format!("cots x{threads}"), secs, engine.snapshot());
        println!(
            "{:<22} {:>10} combining {:>5.1}, {:.3} summary ops/element",
            "",
            "",
            w.combining_factor(),
            w.summary_ops_per_element()
        );
    }

    println!("\nrecall/precision at threshold = 0.1% of the stream; top-25 hits = tie-tolerant top-k recall");
}
