//! An interactive-style query console over a live CoTS engine, driven by
//! the paper's SQL-like dialect (§3.2) via `cots_core::ql`.
//!
//! A background workload (zipfian click stream) is counted by the engine;
//! the console then executes a scripted set of statements — including the
//! paper's own examples — against the live summary. Pass a statement as
//! the first CLI argument to run your own instead:
//!
//! ```text
//! cargo run --release --example query_console -- \
//!     "Select S.element From Stream S Where IsElementInTopk(S.element, 5)"
//! ```

use std::sync::Arc;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::ql;
use cots_core::query::{QueryKind, QueryPeriod};
use cots_core::{CotsConfig, QueryableSummary};
use cots_datagen::StreamSpec;

fn main() {
    // Count a 1M-element zipfian stream (ids unscrambled so output reads
    // as ranks).
    let stream = StreamSpec {
        scramble_ids: false,
        ..StreamSpec::zipf(1_000_000, 100_000, 1.8, 5)
    }
    .generate();
    let engine = Arc::new(
        CotsEngine::<u64>::new(CotsConfig::for_capacity(2_000).expect("valid")).expect("valid"),
    );
    cots::run(
        &engine,
        &stream,
        RuntimeOptions {
            threads: 4,
            batch: 2048,
            adaptive: false,
        },
    )
    .expect("counting run");
    println!("counted {} elements; console ready\n", stream.len());

    let user_statement = std::env::args().nth(1);
    let statements: Vec<String> = match user_statement {
        Some(s) => vec![s],
        None => vec![
            // The paper's §3.2 examples, plus point-query variants.
            "Select S.element From Stream S Where IsElementFrequent(S.element, 0.01)".into(),
            "Select S.element From Stream S Where IsElementFrequent(S.element, 0.001) Every 50000"
                .into(),
            "Select S.element From Stream S Where IsElementInTopk(S.element, 10)".into(),
            "Select S.element From Stream S Where IsElementFrequent(1, 0.05)".into(),
            "Select S.element From Stream S Where IsElementInTopk(3, 5)".into(),
        ],
    };

    for text in statements {
        println!("cots> {text}");
        let stmt = match ql::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                println!("  error: {e}\n");
                continue;
            }
        };
        if let Some(every) = stmt.every {
            // Interval queries are scheduled against updates; here we show
            // the resolved schedule and evaluate once.
            let iq = stmt.to_interval(1_000_000.0); // assume 1M updates/s
            let QueryPeriod::Updates(n) = iq.period;
            println!("  (interval query: re-evaluate every {n} updates — {every:?})");
        }
        match stmt.query {
            QueryKind::Point(p) => {
                println!("  => {}\n", engine.point_query(p));
            }
            QueryKind::Set(s) => {
                let snap = engine.set_query(s);
                println!("  => {} rows", snap.len());
                for e in snap.entries().iter().take(10) {
                    println!(
                        "     element {:>8}  count ~{:>8}  (guaranteed >= {})",
                        e.item,
                        e.count,
                        e.guaranteed()
                    );
                }
                if snap.len() > 10 {
                    println!("     ... {} more", snap.len() - 10);
                }
                println!();
            }
        }
    }
}
