//! Stream persistence: save and reload materialized streams.
//!
//! Benchmarks sometimes want to replay the *exact same* stream across
//! processes (e.g. comparing builds, or archiving the stream behind a
//! published number). The format is deliberately trivial and documented so
//! other tools can produce it:
//!
//! ```text
//! magic   8 bytes   b"COTSSTRM"
//! version 4 bytes   little-endian u32 (currently 1)
//! count   8 bytes   little-endian u64
//! items   count × 8 bytes, little-endian u64 each
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"COTSSTRM";
const VERSION: u32 = 1;

/// Write a stream to `path`.
pub fn save_stream(path: &Path, stream: &[u64]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(stream.len() as u64).to_le_bytes())?;
    for &item in stream {
        w.write_all(&item.to_le_bytes())?;
    }
    w.flush()
}

/// Read a stream from `path`.
pub fn load_stream(path: &Path) -> io::Result<Vec<u64>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a CoTS stream file (bad magic)",
        ));
    }
    let mut version = [0u8; 4];
    r.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported stream file version {version}"),
        ));
    }
    let mut count = [0u8; 8];
    r.read_exact(&mut count)?;
    let count = u64::from_le_bytes(count) as usize;
    // Bulk read and decode.
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    if raw.len() != count * 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "stream file truncated: header says {count} items, body has {} bytes",
                raw.len()
            ),
        ));
    }
    Ok(raw
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

/// Incremental reader over a `COTSSTRM` file: yields the stream in
/// bounded chunks so replay tools (`cots-load`) can stream multi-gigabyte
/// files over the wire without materializing them in memory.
///
/// Iterates `io::Result<Vec<u64>>`; every chunk except possibly the last
/// has exactly `chunk_len` items. Truncated files surface an error on the
/// chunk where the shortfall is discovered.
pub struct StreamChunks {
    reader: BufReader<File>,
    remaining: u64,
    chunk_len: usize,
    failed: bool,
}

impl StreamChunks {
    /// Open `path` and validate the header; items are yielded in chunks of
    /// `chunk_len` (> 0).
    pub fn open(path: &Path, chunk_len: usize) -> io::Result<Self> {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let mut reader = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a CoTS stream file (bad magic)",
            ));
        }
        let mut version = [0u8; 4];
        reader.read_exact(&mut version)?;
        let version = u32::from_le_bytes(version);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported stream file version {version}"),
            ));
        }
        let mut count = [0u8; 8];
        reader.read_exact(&mut count)?;
        Ok(Self {
            reader,
            remaining: u64::from_le_bytes(count),
            chunk_len,
            failed: false,
        })
    }

    /// Items not yet yielded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Iterator for StreamChunks {
    type Item = io::Result<Vec<u64>>;

    fn next(&mut self) -> Option<io::Result<Vec<u64>>> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        let take = (self.remaining).min(self.chunk_len as u64) as usize;
        let mut raw = vec![0u8; take * 8];
        if let Err(e) = self.reader.read_exact(&mut raw) {
            self.failed = true;
            let e = if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("stream file truncated with {} items unread", self.remaining),
                )
            } else {
                e
            };
            return Some(Err(e));
        }
        self.remaining -= take as u64;
        Some(Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cots-datagen-io-tests");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let stream = StreamSpec::zipf(10_000, 500, 2.0, 9).generate();
        let path = tmp("round_trip.stream");
        save_stream(&path, &stream).unwrap();
        let back = load_stream(&path).unwrap();
        assert_eq!(stream, back);
    }

    #[test]
    fn empty_stream_round_trip() {
        let path = tmp("empty.stream");
        save_stream(&path, &[]).unwrap();
        assert_eq!(load_stream(&path).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("bad_magic.stream");
        std::fs::write(
            &path,
            b"NOTMAGIC\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",
        )
        .unwrap();
        let err = load_stream(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_truncation() {
        let stream = vec![1u64, 2, 3, 4];
        let path = tmp("truncated.stream");
        save_stream(&path, &stream).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let err = load_stream(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn chunked_reader_matches_bulk_load() {
        let stream = StreamSpec::zipf(10_007, 300, 1.5, 11).generate();
        let path = tmp("chunked.stream");
        save_stream(&path, &stream).unwrap();
        let mut chunks = StreamChunks::open(&path, 1_000).unwrap();
        assert_eq!(chunks.remaining(), 10_007);
        let mut rebuilt = Vec::new();
        let mut sizes = Vec::new();
        for chunk in &mut chunks {
            let chunk = chunk.unwrap();
            sizes.push(chunk.len());
            rebuilt.extend_from_slice(&chunk);
        }
        assert_eq!(rebuilt, stream);
        assert_eq!(sizes.len(), 11);
        assert!(sizes[..10].iter().all(|&s| s == 1_000));
        assert_eq!(sizes[10], 7);
        assert_eq!(chunks.remaining(), 0);
    }

    #[test]
    fn chunked_reader_surfaces_truncation() {
        let stream: Vec<u64> = (0..100).collect();
        let path = tmp("chunked_truncated.stream");
        save_stream(&path, &stream).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
        let mut chunks = StreamChunks::open(&path, 64).unwrap();
        let first = chunks.next().unwrap().unwrap();
        assert_eq!(first.len(), 64);
        let err = chunks.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("truncated"));
        assert!(chunks.next().is_none(), "iterator fuses after failure");
    }

    #[test]
    fn rejects_unknown_version() {
        let path = tmp("version.stream");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let err = load_stream(&path).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
