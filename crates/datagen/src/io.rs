//! Stream persistence: save and reload materialized streams.
//!
//! Benchmarks sometimes want to replay the *exact same* stream across
//! processes (e.g. comparing builds, or archiving the stream behind a
//! published number). The format is deliberately trivial and documented so
//! other tools can produce it:
//!
//! ```text
//! magic   8 bytes   b"COTSSTRM"
//! version 4 bytes   little-endian u32 (currently 1)
//! count   8 bytes   little-endian u64
//! items   count × 8 bytes, little-endian u64 each
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"COTSSTRM";
const VERSION: u32 = 1;

/// Write a stream to `path`.
pub fn save_stream(path: &Path, stream: &[u64]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(stream.len() as u64).to_le_bytes())?;
    for &item in stream {
        w.write_all(&item.to_le_bytes())?;
    }
    w.flush()
}

/// Read a stream from `path`.
pub fn load_stream(path: &Path) -> io::Result<Vec<u64>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a CoTS stream file (bad magic)",
        ));
    }
    let mut version = [0u8; 4];
    r.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported stream file version {version}"),
        ));
    }
    let mut count = [0u8; 8];
    r.read_exact(&mut count)?;
    let count = u64::from_le_bytes(count) as usize;
    // Bulk read and decode.
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    if raw.len() != count * 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "stream file truncated: header says {count} items, body has {} bytes",
                raw.len()
            ),
        ));
    }
    Ok(raw
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cots-datagen-io-tests");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let stream = StreamSpec::zipf(10_000, 500, 2.0, 9).generate();
        let path = tmp("round_trip.stream");
        save_stream(&path, &stream).unwrap();
        let back = load_stream(&path).unwrap();
        assert_eq!(stream, back);
    }

    #[test]
    fn empty_stream_round_trip() {
        let path = tmp("empty.stream");
        save_stream(&path, &[]).unwrap();
        assert_eq!(load_stream(&path).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("bad_magic.stream");
        std::fs::write(
            &path,
            b"NOTMAGIC\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",
        )
        .unwrap();
        let err = load_stream(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_truncation() {
        let stream = vec![1u64, 2, 3, 4];
        let path = tmp("truncated.stream");
        save_stream(&path, &stream).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let err = load_stream(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn rejects_unknown_version() {
        let path = tmp("version.stream");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let err = load_stream(&path).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
