//! Stream partitioners.
//!
//! The parallel engines split the stream among worker threads. Three
//! policies are provided:
//!
//! * [`chunked`] — contiguous equal slices; what the paper's harness uses
//!   (each thread processes a contiguous region of the input buffer).
//! * [`round_robin`] — element `i` goes to thread `i mod t`; preserves
//!   fine-grained interleaving, at the cost of copying.
//! * [`by_hash`] — element-hash partitioning; gives each thread a *disjoint
//!   key space*, which makes the independent design's merge trivially exact
//!   and is included so that experiments can separate partitioning effects
//!   from structure effects.

use cots_core::{Element, MulHash};

/// Split `stream` into `parts` contiguous slices whose lengths differ by at
/// most one.
///
/// # Panics
/// If `parts == 0`.
pub fn chunked<K>(stream: &[K], parts: usize) -> Vec<&[K]> {
    assert!(parts > 0, "parts must be positive");
    let n = stream.len();
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(&stream[start..start + len]);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Deal elements to `parts` owned partitions round-robin.
///
/// # Panics
/// If `parts == 0`.
pub fn round_robin<K: Element>(stream: &[K], parts: usize) -> Vec<Vec<K>> {
    assert!(parts > 0, "parts must be positive");
    let mut out: Vec<Vec<K>> = (0..parts)
        .map(|p| Vec::with_capacity(stream.len() / parts + usize::from(p < stream.len() % parts)))
        .collect();
    for (i, &e) in stream.iter().enumerate() {
        out[i % parts].push(e);
    }
    out
}

/// Partition by element hash: all occurrences of a key land in the same
/// partition.
///
/// # Panics
/// If `parts == 0`.
pub fn by_hash<K: Element>(stream: &[K], parts: usize) -> Vec<Vec<K>> {
    assert!(parts > 0, "parts must be positive");
    let mut out: Vec<Vec<K>> = (0..parts).map(|_| Vec::new()).collect();
    for &e in stream {
        let h = MulHash::hash(&e);
        out[(h % parts as u64) as usize].push(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn chunked_covers_everything_in_order() {
        let data: Vec<u64> = (0..103).collect();
        let parts = chunked(&data, 4);
        assert_eq!(parts.len(), 4);
        let lens: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(lens, vec![26, 26, 26, 25]);
        let flat: Vec<u64> = parts.iter().flat_map(|p| p.iter().copied()).collect();
        assert_eq!(flat, data);
    }

    #[test]
    fn chunked_more_parts_than_elements() {
        let data: Vec<u64> = vec![1, 2];
        let parts = chunked(&data, 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().filter(|p| p.is_empty()).count(), 3);
        let flat: Vec<u64> = parts.iter().flat_map(|p| p.iter().copied()).collect();
        assert_eq!(flat, data);
    }

    #[test]
    fn round_robin_deals_evenly() {
        let data: Vec<u64> = (0..10).collect();
        let parts = round_robin(&data, 3);
        assert_eq!(parts[0], vec![0, 3, 6, 9]);
        assert_eq!(parts[1], vec![1, 4, 7]);
        assert_eq!(parts[2], vec![2, 5, 8]);
    }

    #[test]
    fn by_hash_is_key_disjoint_and_complete() {
        let data: Vec<u64> = (0..1000).map(|i| i % 37).collect();
        let parts = by_hash(&data, 4);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, data.len());
        let key_sets: Vec<HashSet<u64>> =
            parts.iter().map(|p| p.iter().copied().collect()).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    key_sets[i].is_disjoint(&key_sets[j]),
                    "partitions {i} and {j} share keys"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn chunked_zero_parts_panics() {
        let _ = chunked::<u64>(&[], 0);
    }

    #[test]
    fn single_partition_is_identity() {
        let data: Vec<u64> = (0..5).collect();
        assert_eq!(chunked(&data, 1)[0], &data[..]);
        assert_eq!(round_robin(&data, 1)[0], data);
        assert_eq!(by_hash(&data, 1)[0], data);
    }
}
