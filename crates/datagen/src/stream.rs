//! Stream materialization.
//!
//! Experiments pre-generate the stream into memory (as the paper's harness
//! does) so that generation cost never pollutes the measured counting time
//! and every engine consumes the byte-identical sequence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::AliasTable;
use cots_core::MulHash;

/// The element-frequency law of a synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Zipfian with skew `alpha` (the paper's workload; α ∈ [1.5, 3.0]).
    Zipf {
        /// Skew parameter; 0 = uniform, larger = more skewed.
        alpha: f64,
    },
    /// Uniform over the alphabet.
    Uniform,
    /// Rotates through the alphabet in rank order — every element reappears
    /// with the maximum possible gap; adversarial for Space Saving's
    /// eviction heuristic (constant churn of the monitored set when the
    /// alphabet exceeds the counter budget).
    RoundRobin,
    /// Every element occurs exactly once (ids never repeat) — the pure
    /// overwrite workload: after warm-up, every processed element evicts a
    /// minimum-frequency counter.
    AllDistinct,
    /// A single element repeated — the pure increment workload and the
    /// maximum-contention case for the shared design / maximum-combining
    /// case for CoTS.
    Constant,
}

/// A reproducible stream description.
///
/// # Example
///
/// ```
/// use cots_datagen::StreamSpec;
///
/// let spec = StreamSpec::zipf(10_000, 500, 2.0, 42);
/// let a = spec.generate();
/// let b = spec.generate();
/// assert_eq!(a, b, "same spec, same stream");
/// assert_eq!(a.len(), 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Number of elements to generate.
    pub len: usize,
    /// Alphabet size `|A|` (ignored by `Constant`; `AllDistinct` emits
    /// `len` distinct ids).
    pub alphabet: usize,
    /// Frequency law.
    pub distribution: Distribution,
    /// RNG seed; two specs with equal fields generate identical streams.
    pub seed: u64,
    /// When true, rank `i` is mapped to a pseudo-random (but deterministic)
    /// element id instead of the id `i` itself, so that frequency rank is
    /// uncorrelated with key value and with hash-bucket placement.
    pub scramble_ids: bool,
}

impl StreamSpec {
    /// The paper's standard workload shape: zipfian stream.
    pub fn zipf(len: usize, alphabet: usize, alpha: f64, seed: u64) -> Self {
        Self {
            len,
            alphabet,
            distribution: Distribution::Zipf { alpha },
            seed,
            scramble_ids: true,
        }
    }

    /// Map a 1-based rank to an element id under this spec.
    #[inline]
    pub fn id_of_rank(&self, rank: usize) -> u64 {
        if self.scramble_ids {
            // Deterministic injective scrambling: mix (seed, rank). The
            // avalanche finalizer is a bijection on u64, so distinct ranks
            // map to distinct ids even across the full alphabet.
            MulHash::finalize((rank as u64).wrapping_add(self.seed.rotate_left(17)))
        } else {
            rank as u64
        }
    }

    /// Materialize the stream.
    ///
    /// # Panics
    /// If `len == 0`, or the alphabet is empty for a law that needs one.
    pub fn generate(&self) -> Vec<u64> {
        assert!(self.len > 0, "stream must be non-empty");
        let mut out = Vec::with_capacity(self.len);
        match self.distribution {
            Distribution::Zipf { alpha } => {
                assert!(self.alphabet > 0, "zipf needs a non-empty alphabet");
                let table = AliasTable::zipf(self.alphabet, alpha);
                let mut rng = StdRng::seed_from_u64(self.seed);
                for _ in 0..self.len {
                    out.push(self.id_of_rank(table.sample_rank(&mut rng)));
                }
            }
            Distribution::Uniform => {
                assert!(self.alphabet > 0, "uniform needs a non-empty alphabet");
                let mut rng = StdRng::seed_from_u64(self.seed);
                for _ in 0..self.len {
                    out.push(self.id_of_rank(rng.gen_range(1..=self.alphabet)));
                }
            }
            Distribution::RoundRobin => {
                assert!(self.alphabet > 0, "round-robin needs a non-empty alphabet");
                for i in 0..self.len {
                    out.push(self.id_of_rank(1 + (i % self.alphabet)));
                }
            }
            Distribution::AllDistinct => {
                for i in 0..self.len {
                    out.push(self.id_of_rank(1 + i));
                }
            }
            Distribution::Constant => {
                let id = self.id_of_rank(1);
                out.resize(self.len, id);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn reproducible() {
        let spec = StreamSpec::zipf(10_000, 100, 2.0, 42);
        assert_eq!(spec.generate(), spec.generate());
        let other = StreamSpec::zipf(10_000, 100, 2.0, 43);
        assert_ne!(spec.generate(), other.generate());
    }

    #[test]
    fn zipf_respects_alphabet() {
        let spec = StreamSpec {
            scramble_ids: false,
            ..StreamSpec::zipf(5_000, 32, 1.5, 7)
        };
        let s = spec.generate();
        assert!(s.iter().all(|&e| (1..=32).contains(&e)));
        // Rank 1 must dominate under α=1.5.
        let ones = s.iter().filter(|&&e| e == 1).count();
        assert!(ones * 3 > s.len() / 4, "rank-1 occupancy too low: {ones}");
    }

    #[test]
    fn scrambled_ids_are_injective() {
        let spec = StreamSpec::zipf(1, 50_000, 1.0, 3);
        let ids: HashSet<u64> = (1..=50_000).map(|r| spec.id_of_rank(r)).collect();
        assert_eq!(ids.len(), 50_000);
    }

    #[test]
    fn round_robin_cycles() {
        let spec = StreamSpec {
            len: 10,
            alphabet: 3,
            distribution: Distribution::RoundRobin,
            seed: 0,
            scramble_ids: false,
        };
        assert_eq!(spec.generate(), vec![1, 2, 3, 1, 2, 3, 1, 2, 3, 1]);
    }

    #[test]
    fn all_distinct_never_repeats() {
        let spec = StreamSpec {
            len: 1000,
            alphabet: 0,
            distribution: Distribution::AllDistinct,
            seed: 11,
            scramble_ids: true,
        };
        let s = spec.generate();
        let set: HashSet<u64> = s.iter().copied().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn constant_is_constant() {
        let spec = StreamSpec {
            len: 64,
            alphabet: 9,
            distribution: Distribution::Constant,
            seed: 5,
            scramble_ids: false,
        };
        let s = spec.generate();
        assert!(s.iter().all(|&e| e == 1));
    }

    #[test]
    fn uniform_hits_most_of_small_alphabet() {
        let spec = StreamSpec {
            len: 2000,
            alphabet: 16,
            distribution: Distribution::Uniform,
            seed: 1,
            scramble_ids: false,
        };
        let distinct: HashSet<u64> = spec.generate().into_iter().collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_stream() {
        let _ = StreamSpec::zipf(0, 10, 1.0, 0).generate();
    }
}
