//! # cots-datagen
//!
//! Synthetic data-stream generation for the CoTS experiments.
//!
//! The paper evaluates on zipfian streams: "The frequency of the elements in
//! the distribution varies as `f_i = N / (i^α ζ(α))` where
//! `ζ(α) = Σ_{i=1}^{|A|} 1/i^α`" (§6). This crate provides:
//!
//! * [`zipf`] — exact-CDF and O(1) alias-method samplers for that law;
//! * [`stream`] — reproducible stream materialization from a
//!   [`StreamSpec`](stream::StreamSpec) (zipf, uniform, and adversarial
//!   patterns);
//! * [`partition`] — the stream partitioners used to feed worker threads;
//! * [`io`] — a trivial on-disk stream format for replaying identical
//!   streams across processes;
//! * [`truth`] — an exact hash-map counter and accuracy metrics for
//!   validating the approximate algorithms against ground truth.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod io;
pub mod partition;
pub mod stream;
pub mod truth;
pub mod zipf;

pub use io::StreamChunks;
pub use stream::{Distribution, StreamSpec};
pub use truth::{AccuracyReport, ExactCounter};
pub use zipf::{AliasTable, Zipf};
