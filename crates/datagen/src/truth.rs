//! Exact ground truth and accuracy metrics.
//!
//! The approximate engines are validated against an exact hash-map counter:
//! recall/precision of the frequent set, exactness of the top-k prefix, and
//! the average relative error of count estimates — the metrics used in the
//! experimental literature the paper builds on (Cormode & Hadjieleftheriou,
//! VLDB '08).

use std::collections::HashMap;

use cots_core::{CounterEntry, Element, FrequencyCounter, QueryableSummary, Snapshot, Threshold};

/// Exact frequency counter over an in-memory hash map. Space-unbounded;
/// used only as ground truth for tests and accuracy reports.
#[derive(Debug, Clone, Default)]
pub struct ExactCounter<K: Element> {
    counts: HashMap<K, u64>,
    total: u64,
}

impl<K: Element> ExactCounter<K> {
    /// Empty counter.
    pub fn new() -> Self {
        Self {
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Count an entire stream.
    pub fn from_stream(stream: &[K]) -> Self {
        let mut c = Self::new();
        c.process_slice(stream);
        c
    }

    /// The exact count of `item`.
    pub fn count(&self, item: &K) -> u64 {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// Number of distinct elements seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Exact frequent set at `threshold`.
    pub fn frequent(&self, threshold: Threshold) -> Vec<(K, u64)> {
        let min = threshold.resolve(self.total);
        let mut v: Vec<(K, u64)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= min)
            .map(|(&k, &c)| (k, c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

impl<K: Element> FrequencyCounter<K> for ExactCounter<K> {
    fn process(&mut self, item: K) {
        *self.counts.entry(item).or_insert(0) += 1;
        self.total += 1;
    }

    fn processed(&self) -> u64 {
        self.total
    }
}

impl<K: Element> QueryableSummary<K> for ExactCounter<K> {
    fn snapshot(&self) -> Snapshot<K> {
        Snapshot::new(
            self.counts
                .iter()
                .map(|(&k, &c)| CounterEntry::new(k, c, 0))
                .collect(),
            self.total,
        )
    }

    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        self.counts.get(item).map(|&c| (c, 0))
    }
}

/// Accuracy of an approximate summary against exact ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Fraction of truly frequent elements the summary reported.
    pub recall: f64,
    /// Fraction of reported elements that are truly frequent.
    pub precision: f64,
    /// Mean of `|estimate - truth| / truth` over reported elements.
    pub avg_relative_error: f64,
    /// Max of `estimate - truth` over reported elements (over-estimation).
    pub max_overestimate: u64,
    /// Number of truly frequent elements.
    pub true_frequent: usize,
    /// Number of reported elements.
    pub reported: usize,
}

impl AccuracyReport {
    /// Compare a summary's frequent-set answer against ground truth at the
    /// given threshold.
    pub fn for_frequent<K: Element>(
        summary: &Snapshot<K>,
        truth: &ExactCounter<K>,
        threshold: Threshold,
    ) -> Self {
        let reported = summary.frequent(threshold);
        let exact = truth.frequent(threshold);
        Self::compare(&reported, &exact, truth)
    }

    /// Compare a summary's top-k answer against the exact top-k.
    ///
    /// An approximate top-k answer is counted as a hit when the element's
    /// true count ties or exceeds the true k-th count (the standard
    /// tie-tolerant definition).
    pub fn for_top_k<K: Element>(summary: &Snapshot<K>, truth: &ExactCounter<K>, k: usize) -> Self {
        let reported = summary.top_k(k);
        let mut exact: Vec<(K, u64)> = truth.counts.iter().map(|(&a, &b)| (a, b)).collect();
        exact.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        exact.truncate(k);
        Self::compare(&reported, &exact, truth)
    }

    fn compare<K: Element>(
        reported: &[CounterEntry<K>],
        exact: &[(K, u64)],
        truth: &ExactCounter<K>,
    ) -> Self {
        let kth_true = exact.last().map(|&(_, c)| c).unwrap_or(0);
        let hits = reported
            .iter()
            .filter(|e| truth.count(&e.item) >= kth_true && truth.count(&e.item) > 0)
            .count();
        let recall = if exact.is_empty() {
            1.0
        } else {
            // Recall against the exact set size (tie-tolerant hits are
            // capped so ties cannot push recall above 1).
            (hits.min(exact.len())) as f64 / exact.len() as f64
        };
        let precision = if reported.is_empty() {
            1.0
        } else {
            hits as f64 / reported.len() as f64
        };
        let mut rel = 0.0;
        let mut max_over = 0u64;
        let mut measured = 0usize;
        for e in reported {
            let t = truth.count(&e.item);
            if t > 0 {
                rel += (e.count as f64 - t as f64).abs() / t as f64;
                measured += 1;
                max_over = max_over.max(e.count.saturating_sub(t));
            }
        }
        AccuracyReport {
            recall,
            precision,
            avg_relative_error: if measured == 0 {
                0.0
            } else {
                rel / measured as f64
            },
            max_overestimate: max_over,
            true_frequent: exact.len(),
            reported: reported.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counter_counts() {
        let c = ExactCounter::from_stream(&[1u64, 2, 2, 3, 3, 3]);
        assert_eq!(c.count(&3), 3);
        assert_eq!(c.count(&9), 0);
        assert_eq!(c.processed(), 6);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn exact_frequent_sorted() {
        let c = ExactCounter::from_stream(&[1u64, 2, 2, 3, 3, 3]);
        let f = c.frequent(Threshold::Count(2));
        assert_eq!(f, vec![(3, 3), (2, 2)]);
    }

    #[test]
    fn snapshot_has_zero_errors() {
        let c = ExactCounter::from_stream(&[5u64, 5, 6]);
        let s = c.snapshot();
        assert!(s.entries().iter().all(|e| e.error == 0));
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn perfect_summary_scores_perfectly() {
        let stream: Vec<u64> = vec![1, 1, 1, 2, 2, 3];
        let truth = ExactCounter::from_stream(&stream);
        let snap = truth.snapshot();
        let rep = AccuracyReport::for_frequent(&snap, &truth, Threshold::Count(2));
        assert_eq!(rep.recall, 1.0);
        assert_eq!(rep.precision, 1.0);
        assert_eq!(rep.avg_relative_error, 0.0);
        assert_eq!(rep.max_overestimate, 0);
        let rep = AccuracyReport::for_top_k(&snap, &truth, 2);
        assert_eq!(rep.recall, 1.0);
        assert_eq!(rep.precision, 1.0);
    }

    #[test]
    fn overestimating_summary_reports_error() {
        let stream: Vec<u64> = vec![1, 1, 2];
        let truth = ExactCounter::from_stream(&stream);
        // Summary over-estimates element 2 as 3 (true 1).
        let snap = Snapshot::new(
            vec![CounterEntry::new(1u64, 2, 0), CounterEntry::new(2u64, 3, 2)],
            3,
        );
        let rep = AccuracyReport::for_frequent(&snap, &truth, Threshold::Count(2));
        assert!(rep.avg_relative_error > 0.0);
        assert_eq!(rep.max_overestimate, 2);
        // Element 2 is reported frequent but truly is not (count 1 < 2).
        assert!(rep.precision < 1.0);
    }

    #[test]
    fn empty_cases() {
        let truth: ExactCounter<u64> = ExactCounter::new();
        let snap: Snapshot<u64> = Snapshot::new(vec![], 0);
        let rep = AccuracyReport::for_frequent(&snap, &truth, Threshold::Count(1));
        assert_eq!(rep.recall, 1.0);
        assert_eq!(rep.precision, 1.0);
        assert_eq!(rep.true_frequent, 0);
    }
}
