//! Zipfian samplers.
//!
//! Two interchangeable samplers over ranks `1..=n` with
//! `P(rank = i) = (1/i^α) / H(n, α)`:
//!
//! * [`Zipf`] — inverse-CDF sampling by binary search over the exact
//!   cumulative weights. O(log n) per sample, O(n) setup, numerically exact.
//! * [`AliasTable`] — Walker/Vose alias method. O(1) per sample after an
//!   O(n) setup; this is what the benchmark harness uses so that stream
//!   generation never dominates the measured counting time.
//!
//! Both are deterministic given a seeded RNG; the `stream` module wires them
//! to a reproducible seed so every engine in an experiment consumes the
//! *identical* stream.

use rand::Rng;

/// Generalized harmonic number `H(n, α) = Σ_{i=1}^{n} 1/i^α`
/// (the paper's `ζ(α)` truncated to the alphabet size).
pub fn harmonic(n: usize, alpha: f64) -> f64 {
    // Sum smallest-first to bound floating point error.
    let mut h = 0.0;
    for i in (1..=n).rev() {
        h += 1.0 / (i as f64).powf(alpha);
    }
    h
}

/// Exact inverse-CDF zipf sampler over ranks `1..=n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[i]` = P(rank <= i+1), strictly increasing, last element 1.0.
    cdf: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// Build a sampler over `n` ranks with skew `alpha >= 0`
    /// (`alpha == 0` is the uniform distribution).
    ///
    /// # Panics
    /// If `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "alphabet must be non-empty");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and >= 0"
        );
        let h = harmonic(n, alpha);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(alpha) / h;
            cdf.push(acc);
        }
        // Guard against accumulated rounding leaving the tail unreachable.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf, alpha }
    }

    /// The skew parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the alphabet is empty (never: `new` rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of rank `i` (1-based).
    pub fn probability(&self, rank: usize) -> f64 {
        assert!((1..=self.len()).contains(&rank));
        let lo = if rank == 1 { 0.0 } else { self.cdf[rank - 2] };
        self.cdf[rank - 1] - lo
    }

    /// Sample a 1-based rank.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the first
        // index with cdf >= u; +1 converts to a 1-based rank.
        self.cdf.partition_point(|&c| c < u) + 1
    }
}

/// Walker/Vose alias table for O(1) sampling of an arbitrary finite
/// distribution; used here for the zipf law.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each slot.
    prob: Vec<f64>,
    /// Alias target of each slot.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from (unnormalized) non-negative weights.
    ///
    /// # Panics
    /// If `weights` is empty, longer than `u32::MAX`, contains a negative
    /// or non-finite weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "weights must be non-empty");
        assert!(n <= u32::MAX as usize, "alphabet too large for alias table");
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| *w >= 0.0 && w.is_finite()) && total > 0.0,
            "weights must be finite, non-negative and not all zero"
        );

        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual slots (numerical leftovers) accept unconditionally.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Build the alias table for the zipf law over `n` ranks.
    pub fn zipf(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "alphabet must be non-empty");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and >= 0"
        );
        let weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(alpha)).collect();
        Self::new(&weights)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table is empty (never: construction rejects empties).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sample a 0-based slot index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let slot = rng.gen_range(0..self.len());
        if rng.gen::<f64>() < self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }

    /// Sample a 1-based rank (zipf convention).
    #[inline]
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample(rng) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harmonic_known_values() {
        assert!((harmonic(1, 2.0) - 1.0).abs() < 1e-12);
        assert!((harmonic(2, 1.0) - 1.5).abs() < 1e-12);
        assert!((harmonic(4, 0.0) - 4.0).abs() < 1e-12);
        // ζ(2) = π²/6 ≈ 1.6449; H(10^5, 2) should be within 1e-4 of it.
        assert!((harmonic(100_000, 2.0) - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-4);
    }

    #[test]
    fn zipf_probabilities_sum_to_one_and_decrease() {
        let z = Zipf::new(100, 1.5);
        let total: f64 = (1..=100).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..100 {
            assert!(z.probability(i) >= z.probability(i + 1));
        }
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 1..=10 {
            assert!((z.probability(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_law() {
        let z = Zipf::new(50, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = vec![0u64; 51];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 1 expectation: n / H(50,2); allow 5% relative error.
        let expect = n as f64 / harmonic(50, 2.0);
        let got = counts[1] as f64;
        assert!(
            (got - expect).abs() / expect < 0.05,
            "rank-1 count {got} vs expected {expect}"
        );
        // Monotonic-ish: rank 1 strictly dominates rank 3.
        assert!(counts[1] > counts[3]);
    }

    #[test]
    fn alias_matches_exact_cdf_statistics() {
        let n = 40;
        let alpha = 1.5;
        let a = AliasTable::zipf(n, alpha);
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 200_000;
        let mut counts = vec![0u64; n + 1];
        for _ in 0..trials {
            counts[a.sample_rank(&mut rng)] += 1;
        }
        let h = harmonic(n, alpha);
        for rank in [1usize, 2, 5] {
            let expect = trials as f64 / (rank as f64).powf(alpha) / h;
            let got = counts[rank] as f64;
            assert!(
                (got - expect).abs() / expect < 0.06,
                "rank {rank}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn alias_handles_degenerate_weights() {
        // Single element.
        let a = AliasTable::new(&[3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(a.sample(&mut rng), 0);
        // One dominant weight among zeros.
        let a = AliasTable::new(&[0.0, 5.0, 0.0]);
        for _ in 0..100 {
            assert_eq!(a.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_uniform_covers_all_slots() {
        let a = AliasTable::new(&[1.0; 16]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[a.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_rejects_empty_alphabet() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn zipf_rejects_negative_alpha() {
        let _ = Zipf::new(4, -1.0);
    }

    #[test]
    #[should_panic(expected = "not all zero")]
    fn alias_rejects_zero_mass() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
