//! Statistical and structural properties of the generators and
//! partitioners.

use std::collections::HashMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use cots_datagen::partition::{by_hash, chunked, round_robin};
use cots_datagen::zipf::{harmonic, AliasTable, Zipf};
use cots_datagen::{Distribution, StreamSpec};

/// The paper's frequency law: the i-th rank's expected share is
/// `1 / (i^α ζ(α))`. Check the materialized stream against it.
#[test]
fn generated_stream_follows_the_paper_frequency_law() {
    for alpha in [1.5f64, 2.0, 3.0] {
        let n = 400_000;
        let alphabet = 1_000;
        let spec = StreamSpec {
            scramble_ids: false,
            ..StreamSpec::zipf(n, alphabet, alpha, 99)
        };
        let stream = spec.generate();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &e in &stream {
            *counts.entry(e).or_insert(0) += 1;
        }
        let h = harmonic(alphabet, alpha);
        for rank in [1usize, 2, 4, 8] {
            let expect = n as f64 / (rank as f64).powf(alpha) / h;
            let got = counts.get(&(rank as u64)).copied().unwrap_or(0) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(
                rel < 0.08,
                "alpha {alpha} rank {rank}: got {got}, expected {expect:.0} (rel {rel:.3})"
            );
        }
    }
}

/// Both samplers target the identical distribution: compare empirical
/// rank-1/rank-2 shares between exact-CDF and alias sampling.
#[test]
fn alias_and_exact_cdf_agree() {
    let n = 300;
    let alpha = 1.8;
    let trials = 150_000;
    let exact = Zipf::new(n, alpha);
    let alias = AliasTable::zipf(n, alpha);
    let mut rng_a = StdRng::seed_from_u64(1);
    let mut rng_b = StdRng::seed_from_u64(2);
    let mut counts_a = vec![0u32; n + 1];
    let mut counts_b = vec![0u32; n + 1];
    for _ in 0..trials {
        counts_a[exact.sample(&mut rng_a)] += 1;
        counts_b[alias.sample_rank(&mut rng_b)] += 1;
    }
    for rank in [1usize, 2, 3, 10] {
        let a = counts_a[rank] as f64;
        let b = counts_b[rank] as f64;
        let rel = (a - b).abs() / a.max(1.0);
        assert!(rel < 0.1, "rank {rank}: exact {a} vs alias {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partitions_preserve_the_multiset(
        stream in proptest::collection::vec(0u64..100, 0..500),
        parts in 1usize..8,
        scheme in 0u8..3,
    ) {
        let partitions: Vec<Vec<u64>> = match scheme {
            0 => chunked(&stream, parts).into_iter().map(|s| s.to_vec()).collect(),
            1 => round_robin(&stream, parts),
            _ => by_hash(&stream, parts),
        };
        prop_assert_eq!(partitions.len(), parts);
        let mut all: Vec<u64> = partitions.into_iter().flatten().collect();
        let mut want = stream.clone();
        all.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(all, want);
    }

    #[test]
    fn chunked_is_balanced(
        len in 0usize..1000,
        parts in 1usize..16,
    ) {
        let stream: Vec<u64> = (0..len as u64).collect();
        let chunks = chunked(&stream, parts);
        let min = chunks.iter().map(|c| c.len()).min().unwrap();
        let max = chunks.iter().map(|c| c.len()).max().unwrap();
        prop_assert!(max - min <= 1, "chunk sizes {min}..{max}");
    }

    #[test]
    fn specs_are_pure_functions(
        len in 1usize..2_000,
        alphabet in 1usize..500,
        seed in 0u64..1_000,
    ) {
        let spec = StreamSpec::zipf(len, alphabet, 2.0, seed);
        prop_assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn zipf_probability_sums_to_one(
        n in 1usize..400,
        alpha in 0.0f64..4.0,
    ) {
        let z = Zipf::new(n, alpha);
        let total: f64 = (1..=n).map(|i| z.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn alias_samples_in_range(
        n in 1usize..200,
        alpha in 0.0f64..4.0,
        seed in 0u64..50,
    ) {
        let a = AliasTable::zipf(n, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let r = a.sample_rank(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
    }
}

#[test]
fn adversarial_distributions_have_expected_shapes() {
    let rr = StreamSpec {
        len: 100,
        alphabet: 7,
        distribution: Distribution::RoundRobin,
        seed: 0,
        scramble_ids: false,
    }
    .generate();
    // Max gap between repeats of an element is exactly the alphabet size.
    for w in rr.windows(8) {
        assert_eq!(w[0], w[7]);
    }

    let distinct = StreamSpec {
        len: 64,
        alphabet: 0,
        distribution: Distribution::AllDistinct,
        seed: 3,
        scramble_ids: false,
    }
    .generate();
    let set: std::collections::HashSet<u64> = distinct.iter().copied().collect();
    assert_eq!(set.len(), 64);
}
