//! The primary-side WAL shipper: a background thread that tails this
//! instance's committed WAL segments and streams them to a standby.
//!
//! One shipper per replica pair. The loop is: connect (framed `HELLO`),
//! `REPL_SUBSCRIBE` to learn the standby's durable watermark, send a
//! catch-up `REPL_SNAPSHOT` if that watermark has already been pruned
//! here, then tail the live WAL and push `REPL_BATCH` chunks, persisting
//! every ack (`repl-ack` file) and pinning the local prune floor so a
//! slow standby never loses its place. Disconnects retry with
//! exponential backoff; while disconnected the shipper keeps the
//! `STATS` replication report honest by counting the un-acked tail
//! directly from the log.
//!
//! AUDIT: locks — the shipper publishes progress into the service's
//! report slot but must never hold any lock across its network or disk
//! I/O; enforced by `cargo xtask audit` (lint-locks).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cots_core::{CotsError, ReplReport, Result};
use cots_persist::{load_ack, store_ack, WalTailer};
use cots_serve::frame::Payload;
use cots_serve::{bin1, Client, Persistence, Request, Response, Service};

use crate::plan::{expected_ack, frames_for, is_contiguous, plan_chunks, runs_for};

/// Tuning knobs for one shipper thread.
#[derive(Debug, Clone)]
pub struct ShipperConfig {
    /// Standby address (`host:port`).
    pub peer: String,
    /// How long to sleep when the tail is dry.
    pub poll_interval: Duration,
    /// Key budget per `REPL_BATCH` frame (batches are never split).
    pub max_keys_per_frame: usize,
    /// First reconnect delay after a connection failure.
    pub reconnect_backoff: Duration,
    /// Cap on the exponential reconnect delay.
    pub max_backoff: Duration,
}

impl ShipperConfig {
    /// Defaults for a pair on one LAN: 10ms poll, 8192-key frames,
    /// 100ms → 5s reconnect backoff.
    pub fn new(peer: impl Into<String>) -> Self {
        Self {
            peer: peer.into(),
            poll_interval: Duration::from_millis(10),
            max_keys_per_frame: 8_192,
            reconnect_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
        }
    }
}

/// A running shipper thread; dropping the handle leaves it running,
/// [`ShipperHandle::stop`] joins it.
pub struct ShipperHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ShipperHandle {
    /// Signal the shipper to stop and wait for it to exit. Idempotent
    /// under repeated handles; safe to call while disconnected (the
    /// backoff sleep polls the stop flag).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Monotone shipping counters, folded into every published report.
#[derive(Default)]
struct ShipCounters {
    streamed_batches: u64,
    streamed_keys: u64,
    snapshots: u64,
}

/// Why a connected session ended. The distinction drives the retry
/// policy: a transport failure is transient (exponential backoff,
/// reconnect soon), but a standby's explicit refusal is a state the
/// shipper cannot fix by retrying — it parks at the maximum backoff and
/// flags `resync_required` in `STATS` so an operator sees it.
enum SessionEnd {
    /// The standby answered with a protocol refusal (divergent lineage,
    /// watermark ahead of ours, non-empty standby needing a snapshot).
    Refused(String),
    /// The link or the local tail failed; reconnect and resume. The
    /// underlying error is dropped: transport failures are routine
    /// during failover and the retry loop is the handling.
    Io,
}

impl From<CotsError> for SessionEnd {
    fn from(_: CotsError) -> Self {
        SessionEnd::Io
    }
}

/// Spawn the shipper thread for `service`, streaming toward
/// `config.peer`. The service must run with a data directory (the
/// shipper tails its WAL); standby instances hold the thread idle until
/// they are promoted, so a symmetric pair can start shippers on both
/// sides unconditionally.
pub fn spawn(service: Arc<Service>, config: ShipperConfig) -> Result<ShipperHandle> {
    if service.persistence().is_none() {
        return Err(CotsError::InvalidConfig(
            "replication requires --data-dir: the shipper tails the WAL".into(),
        ));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    let thread = std::thread::Builder::new()
        .name("cots-repl-shipper".into())
        .spawn(move || run(&service, &config, &flag))
        .map_err(|e| CotsError::Report(format!("spawn shipper: {e}")))?;
    Ok(ShipperHandle {
        stop,
        thread: Some(thread),
    })
}

/// Outer connection loop: connect, stream until the link breaks, back
/// off, repeat. Standby role parks the loop (promotion un-parks it).
fn run(service: &Service, config: &ShipperConfig, stop: &AtomicBool) {
    let Some(p) = service.persistence().cloned() else {
        return;
    };
    let mut counters = ShipCounters::default();
    let mut backoff = config.reconnect_backoff;
    while !stop.load(Ordering::Acquire) {
        if service.is_standby() {
            // Only a primary ships. A rejoined ex-primary (or a fresh
            // standby of a symmetric pair) waits here until promoted.
            sleep_unless_stopped(stop, config.poll_interval);
            continue;
        }
        let mut refused = None;
        if let Ok(mut client) = Client::connect(&config.peer) {
            backoff = config.reconnect_backoff;
            let _ = client.set_timeout(Some(Duration::from_secs(10)));
            match stream(service, &p, &mut client, config, stop, &mut counters) {
                // Clean exit: the stop flag is set.
                Ok(()) => continue,
                Err(SessionEnd::Refused(msg)) => refused = Some(msg),
                Err(SessionEnd::Io) => {}
            }
        }
        // Disconnected (or never connected): report the honest un-acked
        // tail, then retry. A transport failure backs off exponentially;
        // an explicit refusal parks at the maximum backoff — retrying
        // faster cannot fix divergent state, only an operator can.
        let acked = load_ack(p.dir());
        let unacked_keys = count_unacked_keys(&p, acked);
        publish(
            service,
            &p,
            config,
            false,
            acked,
            unacked_keys,
            refused.is_some(),
            &counters,
        );
        if let Some(msg) = refused {
            eprintln!("cots-repl: standby refused the stream (resync required): {msg}");
            sleep_unless_stopped(stop, config.max_backoff);
            backoff = config.reconnect_backoff;
        } else {
            sleep_unless_stopped(stop, backoff);
            backoff = backoff.saturating_mul(2).min(config.max_backoff);
        }
    }
}

/// One connected session: subscribe, catch up via snapshot if the
/// standby is behind the local prune floor, then tail and push until
/// the link breaks or the stop flag is set. `Ok(())` means stop.
fn stream(
    service: &Service,
    p: &Arc<Persistence>,
    client: &mut Client,
    config: &ShipperConfig,
    stop: &AtomicBool,
    counters: &mut ShipCounters,
) -> std::result::Result<(), SessionEnd> {
    let acked = load_ack(p.dir());
    let lineage = service.lineage();
    let mut ack = call_acked(
        client,
        &Request::ReplSubscribe {
            start_seq: acked,
            lineage,
            next_seq: p.next_seq(),
        },
    )?;
    if ack < service.repl_floor() {
        // The standby's watermark predates what the local log can
        // replay batch-by-batch: install a full catch-up base first.
        let (watermark, snapshot) = service.repl_cut()?;
        ack = call_acked(
            client,
            &Request::ReplSnapshot {
                lineage,
                watermark,
                snapshot,
            },
        )?;
        counters.snapshots = counters.snapshots.saturating_add(1);
        if ack < watermark {
            return Err(SessionEnd::Refused(format!(
                "catch-up snapshot not installed: acked {ack} < watermark {watermark}"
            )));
        }
    }
    note_ack(service, p, config, ack, counters);
    let mut tailer = WalTailer::new(p.dir(), ack);
    while !stop.load(Ordering::Acquire) {
        let batches = tailer.poll(config.max_keys_per_frame)?;
        if batches.is_empty() {
            publish(service, p, config, true, ack, 0, false, counters);
            sleep_unless_stopped(stop, config.poll_interval);
            continue;
        }
        for chunk in plan_chunks(&batches, config.max_keys_per_frame) {
            if !is_contiguous(chunk) {
                // Shipping plan lost contiguity: resubscribe.
                return Err(SessionEnd::Io);
            }
            let expected = expected_ack(chunk);
            let chunk_batches = chunk.len() as u64;
            let chunk_keys: u64 = chunk.iter().map(|b| b.keys.len() as u64).sum();
            // A negotiated standby gets BIN1 framed straight from the
            // tailer's buffers — no per-frame key clone; the JSON
            // fallback materializes owned frames.
            let payload = if client.is_binary() {
                Payload::Bin(bin1::encode_repl_batch_runs(lineage, &runs_for(chunk)))
            } else {
                client.encode_request(&Request::ReplBatch {
                    lineage,
                    batches: frames_for(chunk),
                })
            };
            let got = call_acked_payload(client, &payload)?;
            if Some(got) != expected {
                // The standby applied a prefix (or none): rewind the
                // tail cursor to its watermark and try again from there.
                ack = got;
                note_ack(service, p, config, ack, counters);
                tailer = WalTailer::new(p.dir(), ack);
                break;
            }
            counters.streamed_batches = counters.streamed_batches.saturating_add(chunk_batches);
            counters.streamed_keys = counters.streamed_keys.saturating_add(chunk_keys);
            ack = got;
            note_ack(service, p, config, ack, counters);
        }
    }
    Ok(())
}

/// Send one request and extract the `REPL_ACK` watermark; any other
/// response tears the session down — an explicit `Error` as a refusal
/// (parked retry), anything else as a transport-level failure.
fn call_acked(client: &mut Client, request: &Request) -> std::result::Result<u64, SessionEnd> {
    let payload = client.encode_request(request);
    call_acked_payload(client, &payload)
}

/// [`call_acked`] for an already-encoded payload (the BIN1 streaming
/// path encodes straight from borrowed WAL buffers).
fn call_acked_payload(
    client: &mut Client,
    payload: &Payload,
) -> std::result::Result<u64, SessionEnd> {
    client.send_payload(payload)?;
    match client.recv()? {
        Response::ReplAck { ack_seq } => Ok(ack_seq),
        Response::Error { message } => Err(SessionEnd::Refused(message)),
        // Anything else is a protocol surprise: tear down and reconnect.
        _ => Err(SessionEnd::Io),
    }
}

/// Persist a new ack watermark: durable `repl-ack` file, local prune
/// floor, and the published `STATS` report. I/O failures here only
/// delay pruning, so they are absorbed.
fn note_ack(
    service: &Service,
    p: &Arc<Persistence>,
    config: &ShipperConfig,
    ack: u64,
    counters: &ShipCounters,
) {
    let _ = store_ack(p.dir(), ack);
    p.set_repl_retain(ack);
    publish(service, p, config, true, ack, 0, false, counters);
}

/// Push the current shipping state into the service's `STATS` report.
/// The service stamps role/promotions itself; `unacked_batches` is
/// exact (`next_seq − ack`), `unacked_keys` is exact when supplied and
/// zero while the connected tail is being pushed (in-flight chunks are
/// acked within the same call).
fn publish(
    service: &Service,
    p: &Arc<Persistence>,
    config: &ShipperConfig,
    connected: bool,
    ack: u64,
    unacked_keys: u64,
    resync_required: bool,
    counters: &ShipCounters,
) {
    let next = p.next_seq();
    service.set_repl_report(ReplReport {
        role: String::new(),
        peer: config.peer.clone(),
        connected,
        streamed_batches: counters.streamed_batches,
        streamed_keys: counters.streamed_keys,
        acked_seq: ack,
        next_seq: next,
        unacked_batches: next.saturating_sub(ack),
        unacked_keys,
        snapshots: counters.snapshots,
        duplicates: 0,
        promotions: 0,
        lineage: service.lineage(),
        resync_required,
    });
}

/// Exact size of the un-acked WAL tail, by reading it: a throwaway
/// tailer from `ack` to the newest committed record. Used only while
/// disconnected (once per backoff round), where its cost is idle time.
fn count_unacked_keys(p: &Arc<Persistence>, ack: u64) -> u64 {
    let mut tailer = WalTailer::new(p.dir(), ack);
    let mut keys = 0u64;
    loop {
        match tailer.poll(usize::MAX) {
            Ok(batches) if batches.is_empty() => break,
            Ok(batches) => {
                keys = keys.saturating_add(batches.iter().map(|b| b.keys.len() as u64).sum())
            }
            Err(_) => break,
        }
    }
    keys
}

/// Sleep `total` in small steps, returning early when `stop` is set.
fn sleep_unless_stopped(stop: &AtomicBool, total: Duration) {
    let step = Duration::from_millis(10);
    let mut slept = Duration::ZERO;
    while slept < total {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let next = step.min(total - slept);
        std::thread::sleep(next);
        slept += next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_requires_persistence() {
        let service = Arc::new(
            Service::start(cots_serve::ServiceConfig {
                shards: 1,
                capacity: 16,
                ..Default::default()
            })
            .unwrap(),
        );
        let err = spawn(service.clone(), ShipperConfig::new("127.0.0.1:0"));
        assert!(err.is_err(), "no --data-dir, nothing to tail");
        match Arc::try_unwrap(service) {
            Ok(s) => s.drain(),
            Err(_) => panic!("service still shared"),
        }
    }

    #[test]
    fn stop_is_prompt_even_while_backing_off() {
        let dir = std::env::temp_dir().join(format!("cots-repl-stop-{}", std::process::id()));
        let mut opts = cots_serve::PersistOptions::new(dir.clone());
        opts.checkpoint_every = Duration::ZERO;
        let service = Arc::new(
            Service::start(cots_serve::ServiceConfig {
                shards: 1,
                capacity: 16,
                persist: Some(opts),
                ..Default::default()
            })
            .unwrap(),
        );
        // Nothing listens on the peer address: the shipper cycles
        // connect-fail → report → backoff. Stop must still return fast.
        let handle = spawn(service.clone(), ShipperConfig::new("127.0.0.1:1")).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let started = std::time::Instant::now();
        handle.stop();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "stop took {:?}",
            started.elapsed()
        );
        let report = service.stats().repl.expect("shipper published a report");
        assert!(!report.connected);
        assert_eq!(report.peer, "127.0.0.1:1");
        match Arc::try_unwrap(service) {
            Ok(s) => s.drain(),
            Err(_) => panic!("service still shared"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
