//! Primary/standby replication for `cots-serve`.
//!
//! A primary running with a data directory already writes every ingested
//! batch to a segmented WAL (`cots-persist`). This crate adds the piece
//! that turns one durable log into two: a **WAL shipper** thread that
//! tails the primary's committed segments and streams them to a standby
//! over the existing framed protocol (`REPL_SUBSCRIBE` / `REPL_BATCH` /
//! `REPL_SNAPSHOT`), plus the planning logic that chunks tailed batches
//! into bounded wire frames.
//!
//! The standby side lives in `cots-serve` itself (`--standby` mode): it
//! applies shipped batches through the same `log → apply` path local
//! ingest uses, so its WAL copy is byte-for-byte replayable and its
//! in-memory summary obeys the same `count ≥ true ≥ count − error`
//! envelope. Acks carry the standby's durable watermark (its own
//! `next_seq`), which makes retransmission idempotent and lets the
//! primary prune shipped segments only once they are safe on two disks.
//!
//! Failover is the coordinator's job (`cots-cluster`): on primary death
//! it sends `REPL_PROMOTE`, the standby flips to primary in place, and
//! the federated staleness bound widens by exactly the un-acked WAL
//! tail this crate reports — counted once, never double-counted.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod plan;
pub mod shipper;

pub use plan::{expected_ack, frames_for, is_contiguous, plan_chunks, runs_for};
pub use shipper::{spawn, ShipperConfig, ShipperHandle};
