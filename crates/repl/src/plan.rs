//! Shipping plans: turning tailed WAL batches into bounded `REPL_BATCH`
//! frames and reasoning about the acks they should produce.
//!
//! Plans are *subslices* of the tailer's batch run — no keys are copied
//! at planning time. The BIN1 shipper encodes a chunk straight from the
//! borrowed slices ([`runs_for`]); only the JSON fallback materializes
//! owned [`ReplFrame`]s ([`frames_for`]).
//!
//! AUDIT: total — planning runs on every shipper poll against data read
//! back from disk; it must never panic. Enforced by `cargo xtask audit`
//! (lint-totality).

use cots_persist::WalBatch;
use cots_serve::ReplFrame;

/// Chunk a run of tailed WAL batches into `REPL_BATCH`-sized subslices,
/// each carrying at most `max_keys` keys. Batches are never split — a
/// batch is the unit of ack — so a single batch larger than `max_keys`
/// still ships, alone in its own chunk. Order is preserved.
pub fn plan_chunks(batches: &[WalBatch], max_keys: usize) -> Vec<&[WalBatch]> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut current_keys = 0usize;
    for (i, batch) in batches.iter().enumerate() {
        let n = batch.keys.len();
        if i > start && current_keys.saturating_add(n) > max_keys {
            if let Some(chunk) = batches.get(start..i) {
                chunks.push(chunk);
            }
            start = i;
            current_keys = 0;
        }
        current_keys = current_keys.saturating_add(n);
    }
    if let Some(chunk) = batches.get(start..) {
        if !chunk.is_empty() {
            chunks.push(chunk);
        }
    }
    chunks
}

/// Owned `REPL_FRAME`s for one planned chunk — the JSON encoding path.
pub fn frames_for(chunk: &[WalBatch]) -> Vec<ReplFrame> {
    chunk
        .iter()
        .map(|b| ReplFrame {
            seq: b.seq,
            keys: b.keys.clone(),
        })
        .collect()
}

/// Borrowed `(seq, keys)` runs for one planned chunk — the BIN1
/// encoding path feeds these straight to the wire without copying keys.
pub fn runs_for(chunk: &[WalBatch]) -> Vec<(u64, &[u64])> {
    chunk.iter().map(|b| (b.seq, b.keys.as_slice())).collect()
}

/// The ack a standby that applies every batch of this chunk will return:
/// one past the last sequence shipped. `None` for an empty chunk.
pub fn expected_ack(chunk: &[WalBatch]) -> Option<u64> {
    chunk.last().map(|b| b.seq.saturating_add(1))
}

/// Whether a chunk is a gap-free run of consecutive sequences. The
/// tailer only yields such runs; a violation here means the plan (not
/// the log) is wrong, so the shipper re-subscribes instead of sending.
pub fn is_contiguous(chunk: &[WalBatch]) -> bool {
    chunk
        .windows(2)
        .all(|w| matches!(w, [a, b] if b.seq == a.seq.saturating_add(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(seq: u64, n: usize) -> WalBatch {
        WalBatch {
            seq,
            keys: vec![seq; n],
        }
    }

    #[test]
    fn chunks_respect_the_key_budget_without_splitting_batches() {
        let batches = vec![batch(0, 3), batch(1, 3), batch(2, 3), batch(3, 1)];
        let chunks = plan_chunks(&batches, 6);
        assert_eq!(chunks.len(), 2);
        assert_eq!(
            chunks.iter().map(|c| c.len()).collect::<Vec<_>>(),
            vec![2, 2],
            "3+3 fills the budget, 3+1 goes next"
        );
        let seqs: Vec<u64> = chunks.iter().flat_map(|c| c.iter()).map(|b| b.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3], "order preserved across chunks");
    }

    #[test]
    fn oversized_batch_ships_alone() {
        let batches = vec![batch(0, 1), batch(1, 100), batch(2, 1)];
        let chunks = plan_chunks(&batches, 10);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[1][0].keys.len(), 100);
    }

    #[test]
    fn empty_input_plans_nothing() {
        assert!(plan_chunks(&[], 10).is_empty());
        assert_eq!(expected_ack(&[]), None);
        assert!(is_contiguous(&[]));
    }

    #[test]
    fn expected_ack_is_one_past_the_last_seq() {
        let batches = [batch(5, 1), batch(6, 2)];
        let chunks = plan_chunks(&batches, 100);
        assert_eq!(chunks.len(), 1);
        assert_eq!(expected_ack(chunks[0]), Some(7));
        assert!(is_contiguous(chunks[0]));
    }

    #[test]
    fn gaps_are_detected() {
        let batches = [batch(3, 0), batch(5, 0)];
        assert!(!is_contiguous(&batches));
    }

    #[test]
    fn both_encodings_plan_the_same_chunk() {
        let batches = [batch(7, 2), batch(8, 1)];
        let chunks = plan_chunks(&batches, 100);
        let frames = frames_for(chunks[0]);
        let runs = runs_for(chunks[0]);
        assert_eq!(frames.len(), runs.len());
        for (f, (seq, keys)) in frames.iter().zip(&runs) {
            assert_eq!(f.seq, *seq);
            assert_eq!(f.keys.as_slice(), *keys);
        }
    }
}
