//! Shipping plans: turning tailed WAL batches into bounded `REPL_BATCH`
//! frames and reasoning about the acks they should produce.
//!
//! AUDIT: total — planning runs on every shipper poll against data read
//! back from disk; it must never panic. Enforced by `cargo xtask audit`
//! (lint-totality).

use cots_persist::WalBatch;
use cots_serve::ReplFrame;

/// Chunk a run of tailed WAL batches into `REPL_BATCH` payloads, each
/// carrying at most `max_keys` keys. Batches are never split — a batch
/// is the unit of ack — so a single batch larger than `max_keys` still
/// ships, alone in its own chunk. Order is preserved.
pub fn plan_frames(batches: &[WalBatch], max_keys: usize) -> Vec<Vec<ReplFrame>> {
    let mut chunks: Vec<Vec<ReplFrame>> = Vec::new();
    let mut current: Vec<ReplFrame> = Vec::new();
    let mut current_keys = 0usize;
    for batch in batches {
        let n = batch.keys.len();
        if !current.is_empty() && current_keys.saturating_add(n) > max_keys {
            chunks.push(std::mem::take(&mut current));
            current_keys = 0;
        }
        current_keys = current_keys.saturating_add(n);
        current.push(ReplFrame {
            seq: batch.seq,
            keys: batch.keys.clone(),
        });
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// The ack a standby that applies every frame of this chunk will return:
/// one past the last sequence shipped. `None` for an empty chunk.
pub fn expected_ack(frames: &[ReplFrame]) -> Option<u64> {
    frames.last().map(|f| f.seq.saturating_add(1))
}

/// Whether a chunk is a gap-free run of consecutive sequences. The
/// tailer only yields such runs; a violation here means the plan (not
/// the log) is wrong, so the shipper re-subscribes instead of sending.
pub fn is_contiguous(frames: &[ReplFrame]) -> bool {
    frames
        .windows(2)
        .all(|w| matches!(w, [a, b] if b.seq == a.seq.saturating_add(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(seq: u64, n: usize) -> WalBatch {
        WalBatch {
            seq,
            keys: vec![seq; n],
        }
    }

    #[test]
    fn chunks_respect_the_key_budget_without_splitting_batches() {
        let batches = vec![batch(0, 3), batch(1, 3), batch(2, 3), batch(3, 1)];
        let chunks = plan_frames(&batches, 6);
        assert_eq!(chunks.len(), 2);
        assert_eq!(
            chunks.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![2, 2],
            "3+3 fills the budget, 3+1 goes next"
        );
        let seqs: Vec<u64> = chunks.iter().flatten().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3], "order preserved across chunks");
    }

    #[test]
    fn oversized_batch_ships_alone() {
        let batches = vec![batch(0, 1), batch(1, 100), batch(2, 1)];
        let chunks = plan_frames(&batches, 10);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[1][0].keys.len(), 100);
    }

    #[test]
    fn empty_input_plans_nothing() {
        assert!(plan_frames(&[], 10).is_empty());
        assert_eq!(expected_ack(&[]), None);
        assert!(is_contiguous(&[]));
    }

    #[test]
    fn expected_ack_is_one_past_the_last_seq() {
        let chunks = plan_frames(&[batch(5, 1), batch(6, 2)], 100);
        assert_eq!(chunks.len(), 1);
        assert_eq!(expected_ack(&chunks[0]), Some(7));
        assert!(is_contiguous(&chunks[0]));
    }

    #[test]
    fn gaps_are_detected() {
        let frames = vec![
            ReplFrame { seq: 3, keys: vec![] },
            ReplFrame { seq: 5, keys: vec![] },
        ];
        assert!(!is_contiguous(&frames));
    }
}
