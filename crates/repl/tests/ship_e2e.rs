//! End-to-end replication: a real primary and a real standby on
//! loopback TCP, the real shipper in between, promotion flipping the
//! standby into a serving primary.

use std::time::{Duration, Instant};

use cots_datagen::{ExactCounter, StreamSpec};
use cots_repl::{spawn, ShipperConfig};
use cots_serve::protocol::QueryReq;
use cots_serve::{Client, PersistOptions, Request, Response, Server, ServiceConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "cots-repl-e2e-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn persist(dir: &std::path::Path) -> PersistOptions {
    let mut opts = PersistOptions::new(dir.to_path_buf());
    opts.checkpoint_every = Duration::ZERO;
    // Small segments force rotation, so checkpoints actually prune and
    // the shipping floor moves — exercising the catch-up snapshot path.
    opts.segment_bytes = 16 * 1024;
    opts
}

fn bind(dir: &std::path::Path, standby: bool, peer: Option<String>) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            shards: 2,
            capacity: 256,
            refresh: Duration::from_millis(2),
            persist: Some(persist(dir)),
            standby,
            repl_peer: peer,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn primary_ships_standby_catches_up_and_promotes() {
    let primary_dir = temp_dir("primary");
    let standby_dir = temp_dir("standby");

    let standby = bind(&standby_dir, true, None);
    let standby_addr = standby.local_addr().to_string();
    let standby_service = standby.service().clone();
    let standby_thread = std::thread::spawn(move || standby.run());

    let primary = bind(&primary_dir, false, Some(standby_addr.clone()));
    let primary_addr = primary.local_addr().to_string();
    let primary_service = primary.service().clone();
    let primary_thread = std::thread::spawn(move || primary.run());

    // Some data lands on the primary *before* the shipper even starts,
    // so the stream begins with a real backlog.
    let keys = StreamSpec::zipf(30_000, 500, 1.5, 11).generate();
    let total_items = keys.len() as u64;
    let exact = ExactCounter::from_stream(&keys);
    let mut client = Client::connect(&primary_addr).unwrap();
    for chunk in keys.chunks(1_024).take(10) {
        client.ingest(chunk).unwrap();
    }

    let mut shipper_cfg = ShipperConfig::new(standby_addr.clone());
    shipper_cfg.poll_interval = Duration::from_millis(2);
    let shipper = spawn(primary_service.clone(), shipper_cfg).unwrap();

    // The rest of the stream flows while the shipper runs.
    for chunk in keys.chunks(1_024).skip(10) {
        client.ingest(chunk).unwrap();
    }

    // Wait until the standby acked everything the primary logged.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = primary_service.stats();
        if let Some(repl) = &stats.repl {
            if repl.connected && repl.unacked_batches == 0 && stats.applied_keys() == total_items {
                break;
            }
        }
        assert!(Instant::now() < deadline, "standby never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }
    let repl = primary_service.stats().repl.unwrap();
    assert_eq!(repl.role, "primary");
    assert!(repl.streamed_keys >= total_items, "whole stream shipped");

    // The standby's replication report mirrors the stream.
    let mut sclient = Client::connect(&standby_addr).unwrap();
    let sstats = sclient.stats().unwrap();
    let srepl = sstats.repl.expect("standby reports repl state");
    assert_eq!(srepl.role, "standby");
    assert_eq!(srepl.next_seq, repl.acked_seq, "durable watermarks agree");

    // Promote the standby and stop the old primary; the promoted node
    // answers inside the count ± error envelope over the acked stream.
    match sclient.call(&Request::ReplPromote).unwrap() {
        Response::ReplAck { ack_seq } => assert_eq!(ack_seq, repl.acked_seq),
        other => panic!("unexpected: {other:?}"),
    }
    assert!(!standby_service.is_standby());
    shipper.stop();
    client.shutdown().unwrap();
    drop(client);
    primary_thread.join().unwrap().unwrap();

    // Quiesce the promoted node, then check heavy hitters against truth.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, total, stamp) = sclient.query(QueryReq::TopK { k: 1 }).unwrap();
        if total == total_items && stamp.staleness == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "promoted node never quiesced");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (entries, total, _) = sclient.query(QueryReq::TopK { k: 20 }).unwrap();
    assert_eq!(total, total_items);
    for e in &entries {
        let truth = exact.count(&e.item);
        assert!(
            e.count >= truth && truth >= e.count - e.error,
            "envelope violated for {}: count={} error={} truth={truth}",
            e.item,
            e.count,
            e.error
        );
    }

    // The promoted node accepts writes now.
    sclient.ingest(&[42, 42, 42]).expect("promoted node accepts INGEST");

    sclient.shutdown().unwrap();
    drop(sclient);
    standby_thread.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}

#[test]
fn diverged_standby_is_refused_and_flagged_for_resync() {
    let primary_dir = temp_dir("div-primary");
    let standby_dir = temp_dir("div-standby");

    // Seed the standby's data dir by running it as a primary first: its
    // WAL ends up *ahead* of the fresh primary below — the shape of a
    // dead ex-primary restarted with --standby on its old directory.
    {
        let seed = bind(&standby_dir, false, None);
        let seed_addr = seed.local_addr().to_string();
        let seed_service = seed.service().clone();
        let seed_thread = std::thread::spawn(move || seed.run());
        let mut client = Client::connect(&seed_addr).unwrap();
        for chunk in (0..5_000u64).collect::<Vec<_>>().chunks(100) {
            client.ingest(chunk).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while seed_service.stats().applied_keys() < 5_000 {
            assert!(Instant::now() < deadline, "seed never applied the stream");
            std::thread::sleep(Duration::from_millis(5));
        }
        client.shutdown().unwrap();
        drop(client);
        seed_thread.join().unwrap().unwrap();
    }

    let standby = bind(&standby_dir, true, None);
    let standby_addr = standby.local_addr().to_string();
    let standby_thread = std::thread::spawn(move || standby.run());

    let primary = bind(&primary_dir, false, Some(standby_addr.clone()));
    let primary_addr = primary.local_addr().to_string();
    let primary_service = primary.service().clone();
    let primary_thread = std::thread::spawn(move || primary.run());

    // One small batch: the primary's watermark stays far below the
    // standby's divergent one.
    let mut client = Client::connect(&primary_addr).unwrap();
    client.ingest(&[1, 2, 3]).unwrap();

    let mut cfg = ShipperConfig::new(standby_addr.clone());
    cfg.poll_interval = Duration::from_millis(2);
    cfg.max_backoff = Duration::from_millis(200);
    let shipper = spawn(primary_service.clone(), cfg).unwrap();

    // The standby must refuse the stream (never ack unseen batches) and
    // the primary's STATS must escalate the divergence to the operator.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(repl) = &primary_service.stats().repl {
            if repl.resync_required {
                assert!(!repl.connected, "a refused session is not a live stream");
                assert_eq!(repl.streamed_batches, 0, "nothing was falsely recorded");
                break;
            }
        }
        assert!(Instant::now() < deadline, "divergence never surfaced in STATS");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The standby kept its divergent state intact and acked nothing.
    let mut sclient = Client::connect(&standby_addr).unwrap();
    let srepl = sclient.stats().unwrap().repl.expect("standby repl report");
    assert!(srepl.resync_required, "standby flags the divergence too");
    assert_eq!(srepl.streamed_batches, 0, "no replicated batch applied");

    shipper.stop();
    client.shutdown().unwrap();
    drop(client);
    primary_thread.join().unwrap().unwrap();
    sclient.shutdown().unwrap();
    drop(sclient);
    standby_thread.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}

#[test]
fn late_standby_catches_up_via_snapshot() {
    let primary_dir = temp_dir("snap-primary");
    let standby_dir = temp_dir("snap-standby");

    let primary = bind(&primary_dir, false, None);
    let primary_addr = primary.local_addr().to_string();
    let primary_service = primary.service().clone();
    let primary_thread = std::thread::spawn(move || primary.run());

    // Ingest, checkpoint, and let pruning advance the floor past 0: a
    // fresh standby can then only catch up via REPL_SNAPSHOT.
    let mut client = Client::connect(&primary_addr).unwrap();
    let keys: Vec<u64> = (0..20_000u64).map(|i| i % 100).collect();
    for chunk in keys.chunks(1_000) {
        client.ingest(chunk).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while primary_service.stats().applied_keys() < 20_000 {
        assert!(Instant::now() < deadline, "primary never applied the stream");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (watermark, _, _) = client.checkpoint().unwrap();
    assert!(watermark > 0);
    assert!(
        primary_service.repl_floor() > 0,
        "checkpoint + prune moved the shipping floor"
    );

    let standby = bind(&standby_dir, true, None);
    let standby_addr = standby.local_addr().to_string();
    let standby_thread = std::thread::spawn(move || standby.run());

    let mut cfg = ShipperConfig::new(standby_addr.clone());
    cfg.poll_interval = Duration::from_millis(2);
    let shipper = spawn(primary_service.clone(), cfg).unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(repl) = &primary_service.stats().repl {
            if repl.connected && repl.unacked_batches == 0 && repl.snapshots >= 1 {
                break;
            }
        }
        assert!(Instant::now() < deadline, "late standby never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The standby holds the full mass: snapshot base + shipped tail.
    let mut sclient = Client::connect(&standby_addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, total, stamp) = sclient.query(QueryReq::TopK { k: 1 }).unwrap();
        if total == 20_000 && stamp.staleness == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "standby never published the base");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (entries, _, _) = sclient.query(QueryReq::Point { key: 7 }).unwrap();
    let e = &entries[0];
    assert!(e.count >= 200 && e.count - e.error <= 200, "7 appears exactly 200 times");

    shipper.stop();
    client.shutdown().unwrap();
    drop(client);
    primary_thread.join().unwrap().unwrap();
    sclient.shutdown().unwrap();
    drop(sclient);
    standby_thread.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}
