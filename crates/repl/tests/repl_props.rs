//! Property tests for the replication layer.
//!
//! Two obligations: the `REPL_*` wire codec must be **total** (any
//! damaged frame decodes to a clean error, never a panic), and shipping
//! must be **faithful** (applying any prefix of the planned frames is
//! indistinguishable from locally replaying the same WAL prefix).

use proptest::prelude::*;

use cots::CotsEngine;
use cots_core::{CotsConfig, QueryableSummary};
use cots_persist::{scan_wal, FsyncPolicy, WalTailer, WalWriter};
use cots_repl::{expected_ack, frames_for, is_contiguous, plan_chunks};
use cots_serve::protocol::{decode, encode, ReplFrame, Request, Response};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cots-repl-props-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small strategy for REPL batch runs: up to 12 batches of up to 24
/// keys each, starting at an arbitrary base sequence.
fn batch_run() -> impl Strategy<Value = (u64, Vec<Vec<u64>>)> {
    (
        0u64..1_000,
        proptest::collection::vec(proptest::collection::vec(0u64..64, 0..24), 1..12),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode → damage → decode must be total: truncations, bit flips
    /// (lossy-UTF-8 repaired), and arbitrary garbage all produce either
    /// a valid request or a typed error — never a panic.
    #[test]
    fn repl_request_decode_is_total(
        (base, runs) in batch_run(),
        keep in any::<usize>(),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let request = Request::ReplBatch {
            lineage: base,
            batches: runs
                .iter()
                .enumerate()
                .map(|(i, keys)| ReplFrame { seq: base + i as u64, keys: keys.clone() })
                .collect(),
        };
        let payload = encode(&request);

        // The clean payload round-trips.
        let back: Request = decode(&payload).unwrap();
        prop_assert_eq!(&back, &request);

        // Truncation: a strict prefix (cut at a char boundary).
        let mut cut = keep % payload.len();
        while !payload.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = decode::<Request>(&payload[..cut]);

        // Bit flip: repair to UTF-8 the way a socket reader would.
        let mut bytes = payload.clone().into_bytes();
        let at = flip_at % bytes.len();
        bytes[at] ^= 1 << flip_bit;
        let flipped = String::from_utf8_lossy(&bytes);
        if let Ok(req) = decode::<Request>(&flipped) {
            // A surviving decode must still be a REPL_BATCH (the tag
            // byte landed outside the flipped position).
            prop_assert!(matches!(req, Request::ReplBatch { .. } | Request::Ingest { .. }
                | Request::Hello { .. } | Request::Query(_) | Request::Stats
                | Request::Snapshot | Request::SnapshotPage { .. } | Request::ClusterStats
                | Request::Checkpoint | Request::Shutdown | Request::ReplSubscribe { .. }
                | Request::ReplSnapshot { .. } | Request::ReplPromote));
        }

        // Arbitrary garbage.
        let _ = decode::<Request>(&String::from_utf8_lossy(&garbage));
        let _ = decode::<Response>(&String::from_utf8_lossy(&garbage));
    }

    /// Plans are loss-free and contiguous: every chunk is a gap-free
    /// run, concatenating the chunks reproduces the input exactly, and
    /// the expected acks are monotone.
    #[test]
    fn plans_partition_the_run((base, runs) in batch_run(), budget in 1usize..64) {
        let batches: Vec<cots_persist::WalBatch> = runs
            .iter()
            .enumerate()
            .map(|(i, keys)| cots_persist::WalBatch { seq: base + i as u64, keys: keys.clone() })
            .collect();
        let chunks = plan_chunks(&batches, budget);
        let flat: Vec<(u64, Vec<u64>)> =
            chunks.iter().flat_map(|c| c.iter()).map(|b| (b.seq, b.keys.clone())).collect();
        let original: Vec<(u64, Vec<u64>)> =
            batches.iter().map(|b| (b.seq, b.keys.clone())).collect();
        prop_assert_eq!(flat, original, "chunking loses or reorders nothing");
        let mut last_ack = None;
        for chunk in &chunks {
            prop_assert!(is_contiguous(chunk));
            let ack = expected_ack(chunk);
            prop_assert!(ack > last_ack, "acks advance monotonically");
            last_ack = ack;
        }
    }

    /// Shipping is replay: write a WAL, tail + plan it like the shipper,
    /// apply an arbitrary prefix of the planned frames to one engine,
    /// and locally replay the same sequence prefix into another. The
    /// two summaries must be identical.
    #[test]
    fn shipped_prefix_equals_local_replay(
        runs in proptest::collection::vec(proptest::collection::vec(0u64..32, 1..16), 1..10),
        budget in 1usize..48,
        prefix in any::<usize>(),
    ) {
        let dir = temp_dir("equiv");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, 64 * 1024).unwrap();
        for (i, keys) in runs.iter().enumerate() {
            w.append(i as u64, keys);
        }
        w.commit().unwrap();
        drop(w);

        // Shipper's view: tail the directory, plan the frames.
        let mut tailer = WalTailer::new(&dir, 0);
        let mut tailed = Vec::new();
        loop {
            let got = tailer.poll(budget).unwrap();
            if got.is_empty() {
                break;
            }
            tailed.extend(got);
        }
        let frames: Vec<ReplFrame> =
            plan_chunks(&tailed, budget).into_iter().flat_map(frames_for).collect();
        prop_assert_eq!(frames.len(), runs.len());

        // Apply a prefix of the shipped frames (what a standby that lost
        // its primary mid-stream holds)...
        let cut = prefix % (frames.len() + 1);
        let shipped = CotsEngine::new(CotsConfig::for_capacity(16).unwrap()).unwrap();
        for f in frames.iter().take(cut) {
            shipped.delegate_batch(&f.keys);
        }
        shipped.finalize();

        // ...and replay the same sequence prefix straight from the WAL.
        let replayed = CotsEngine::new(CotsConfig::for_capacity(16).unwrap()).unwrap();
        let scan = scan_wal(&dir, 0).unwrap();
        for b in scan.batches.iter().filter(|b| (b.seq as usize) < cut) {
            replayed.delegate_batch(&b.keys);
        }
        replayed.finalize();

        let a = QueryableSummary::snapshot(&shipped);
        let b = QueryableSummary::snapshot(&replayed);
        prop_assert_eq!(a.total(), b.total());
        let mut ea: Vec<_> = a.entries().iter().map(|e| (e.item, e.count, e.error)).collect();
        let mut eb: Vec<_> = b.entries().iter().map(|e| (e.item, e.count, e.error)).collect();
        ea.sort_unstable();
        eb.sort_unstable();
        prop_assert_eq!(ea, eb, "shipped prefix and local replay agree exactly");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
