//! Shared lexical front-end for every audit pass.
//!
//! All the analyzers in this crate are *lexical*: they strip comments,
//! string literals, and char literals from each source line, then match
//! tokens in what remains. That keeps the whole suite dependency-free
//! (no syn, no proc-macro) and fast, at the cost of being a
//! token-stream approximation of the language — the passes are written
//! so that approximation errs on the side of flagging, and every flag
//! can be discharged with a written justification comment.
//!
//! This module owns:
//!
//! * [`lex`] — the line-by-line comment/string stripper (the one piece
//!   of state that must survive across lines: block comments and raw
//!   strings);
//! * [`find_word`] — identifier-boundary token search;
//! * [`has_marker_near`] — the shared "justification comment within a
//!   bounded window above" rule used by `SAFETY:`, `PANIC-OK:`, and
//!   `LOCK-OK:` alike;
//! * [`file_marker`] — file-level audit annotations (`//! AUDIT: total`,
//!   `//! AUDIT: locks`);
//! * [`test_lines`] — which lines sit inside `#[cfg(test)]` items, so
//!   test code is exempt from the production-code gates.

/// How many non-comment lines above a flagged token a justification
/// comment may sit. Comment-only lines do not consume the window, so a
/// multi-line justification block counts in full however long it is.
pub const JUSTIFY_WINDOW: usize = 5;

/// A source line split into its code part and its comment part.
pub struct LexedLine {
    /// The line with comments, strings and char literals blanked out.
    pub code: String,
    /// Concatenated comment text on the line (line, block, and doc).
    pub comment: String,
    /// Whether the comment is a doc comment (`///` or `//!` or `/** */`).
    pub is_doc: bool,
}

/// First occurrence of `word` in `code` at or after `from`, with
/// identifier boundaries on both sides.
pub fn find_word(code: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(rel) = code.get(start..)?.find(word) {
        let pos = start + rel;
        let before_ok = pos == 0
            || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
        let end = pos + word.len();
        let after_ok = end >= bytes.len()
            || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

/// A `marker` comment (e.g. `SAFETY:`, `PANIC-OK:`, `LOCK-OK:`) on the
/// same line or within the [`JUSTIFY_WINDOW`] lines above `line_idx`.
///
/// Pure comment lines do not consume the window, so a multi-line
/// justification block counts in full however long it is; only code and
/// blank lines burn the budget.
pub fn has_marker_near(lines: &[LexedLine], line_idx: usize, marker: &str) -> bool {
    if lines[line_idx].comment.contains(marker) {
        return true;
    }
    let mut budget = JUSTIFY_WINDOW;
    let mut idx = line_idx;
    while idx > 0 && budget > 0 {
        idx -= 1;
        let l = &lines[idx];
        if l.comment.contains(marker) {
            return true;
        }
        // A comment-only line extends the window upward for free.
        if !(l.code.trim().is_empty() && !l.comment.is_empty()) {
            budget -= 1;
        }
    }
    false
}

/// Whether the file carries a module-level audit annotation, e.g.
/// `//! AUDIT: total`. Only inner doc comments (`//!`) in the leading
/// doc block are consulted, so a pass can't be enabled from deep inside
/// a function by accident.
pub fn file_marker(lines: &[LexedLine], marker: &str) -> bool {
    for l in lines {
        let has_code = !l.code.trim().is_empty();
        if has_code {
            // The leading doc block ends at the first code line
            // (attributes like `#![deny(..)]` included — they follow
            // the doc block in the conventional layout, so stopping
            // here keeps the rule "top-of-file only").
            return false;
        }
        if l.is_doc && is_marker_line(&l.comment, marker) {
            return true;
        }
    }
    false
}

/// A doc line *is* the annotation only if the marker opens it (after the
/// `//!` sigil) — prose that merely mentions `AUDIT: total` (backticked
/// examples, this very file's docs) must not opt a file in.
fn is_marker_line(comment: &str, marker: &str) -> bool {
    let t = comment.trim();
    let t = t.strip_prefix("//!").unwrap_or(t).trim();
    t.starts_with(marker)
}

/// Mark every line that sits inside a `#[cfg(test)]`-gated item (almost
/// always `mod tests { .. }`). Production-code gates skip those lines.
///
/// The detector is lexical: when a line's code contains `#[cfg(test)]`
/// (or the multi-attr `#[cfg(all(test` form), everything from there to
/// the close of the next brace-balanced region is test code.
pub fn test_lines(lines: &[LexedLine]) -> Vec<bool> {
    let mut is_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            // Find the opening brace of the gated item, then skip to its
            // matching close, marking every line on the way.
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                is_test[j] = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    is_test
}

/// Strip comments, strings and char literals, keeping per-line comment
/// text.
pub fn lex(source: &str) -> Vec<LexedLine> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Normal,
        Block { depth: u32, doc: bool },
        Str,
        RawStr { hashes: u32 },
    }

    let mut out = Vec::new();
    let mut state = State::Normal;
    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut is_doc = false;
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Normal => match c {
                    '/' if chars.get(i + 1) == Some(&'/') => {
                        let text: String = chars[i..].iter().collect();
                        if text.starts_with("///") || text.starts_with("//!") {
                            is_doc = true;
                        }
                        comment.push_str(&text);
                        i = chars.len();
                    }
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        let doc = chars.get(i + 2) == Some(&'*') || chars.get(i + 2) == Some(&'!');
                        state = State::Block { depth: 1, doc };
                        if doc {
                            is_doc = true;
                        }
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' if matches!(chars.get(i + 1), Some('"' | '#'))
                        && raw_string_hashes(&chars[i + 1..]).is_some() =>
                    {
                        let hashes = raw_string_hashes(&chars[i + 1..])
                            .unwrap_or_default();
                        state = State::RawStr { hashes };
                        code.push(' ');
                        i += 2 + hashes as usize; // r, hashes, opening quote
                    }
                    'b' if chars.get(i + 1) == Some(&'"') => {
                        state = State::Str;
                        code.push(' ');
                        i += 2;
                    }
                    '\'' => {
                        // Char literal vs lifetime.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to closing quote.
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            code.push(' ');
                            i = (j + 1).min(chars.len());
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push(' ');
                            i += 3;
                        } else {
                            // Lifetime: keep going.
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::Block { depth, doc } => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        if depth == 1 {
                            state = State::Normal;
                        } else {
                            state = State::Block {
                                depth: depth - 1,
                                doc,
                            };
                        }
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block {
                            depth: depth + 1,
                            doc,
                        };
                        i += 2;
                    } else {
                        comment.push(c);
                        if doc {
                            is_doc = true;
                        }
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        state = State::Normal;
                        code.push('"');
                        i += 1;
                    }
                    _ => i += 1,
                },
                State::RawStr { hashes } => {
                    if c == '"' && closes_raw(&chars[i + 1..], hashes) {
                        state = State::Normal;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        if let State::Block { doc, .. } = state {
            // Block comment continues onto the next line.
            if doc {
                is_doc = true;
            }
        }
        out.push(LexedLine {
            code,
            comment,
            is_doc,
        });
    }
    out
}

/// For text after a leading `r`, return `Some(hash_count)` if it opens a
/// raw string (`#*"` prefix).
fn raw_string_hashes(after_r: &[char]) -> Option<u32> {
    let mut hashes = 0u32;
    for &c in after_r {
        match c {
            '#' => hashes += 1,
            '"' => return Some(hashes),
            _ => return None,
        }
    }
    None
}

/// Whether the chars after a `"` close a raw string with `hashes` hashes.
fn closes_raw(after_quote: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| after_quote.get(k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let lines = lex("let s = \"unsafe { }\"; // trailing unsafe\n");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("trailing unsafe"));
    }

    #[test]
    fn file_marker_only_in_leading_doc_block() {
        let top = lex("//! Module.\n//! AUDIT: total\n\nfn f() {}\n");
        assert!(file_marker(&top, "AUDIT: total"));
        let buried = lex("fn f() {}\n//! AUDIT: total\n");
        assert!(!file_marker(&buried, "AUDIT: total"));
        let plain = lex("// AUDIT: total\nfn f() {}\n");
        assert!(!file_marker(&plain, "AUDIT: total"), "non-doc comments don't count");
        let mention = lex("//! Opt in with a `//! AUDIT: total` line.\n\nfn f() {}\n");
        assert!(!file_marker(&mention, "AUDIT: total"), "prose mentions don't count");
    }

    #[test]
    fn marker_window_is_bounded() {
        let src = format!(
            "// PANIC-OK: too far.\n{}let x = v.unwrap();\n",
            "let a = 1;\n".repeat(JUSTIFY_WINDOW + 1)
        );
        let lines = lex(&src);
        assert!(!has_marker_near(&lines, lines.len() - 1, "PANIC-OK:"));
        let near = lex("// PANIC-OK: fine.\nlet x = v.unwrap();\n");
        assert!(has_marker_near(&near, 1, "PANIC-OK:"));
    }

    #[test]
    fn test_region_detection_covers_mod_tests() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}\n";
        let lines = lex(src);
        let mask = test_lines(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn raw_strings_do_not_leak_code() {
        let lines = lex("let r = r#\"x.unwrap() [0]\"#; let y = 1;\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("let y"));
    }
}
