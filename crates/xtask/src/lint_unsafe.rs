//! The `unsafe` pass: every `unsafe` site must carry a justification.
//!
//! Policy (matching `docs/correctness.md`):
//!
//! * an `unsafe` **block**, `unsafe impl`, or `unsafe trait` needs a comment
//!   containing `SAFETY:` on the same line or within the five preceding
//!   lines;
//! * an `unsafe fn` declaration may alternatively carry a doc comment with a
//!   `# Safety` section (the rustdoc convention), searched in the directly
//!   attached doc block.
//!
//! The scanner is lexical (see [`crate::lexer`]): comments, strings, and
//! char literals are stripped before looking for the `unsafe` keyword, so
//! occurrences inside text never trip it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::lexer::{find_word, has_marker_near, lex, LexedLine};
use crate::report::Finding;

/// Run the unsafe pass over the given files, returning findings.
pub fn pass(root: &Path, files: &[PathBuf]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let Ok(source) = std::fs::read_to_string(file) else {
            eprintln!("warning: unreadable file {}", file.display());
            continue;
        };
        let rel = file.strip_prefix(root).unwrap_or(file);
        for site in scan(&source) {
            if !site.justified {
                findings.push(Finding {
                    pass: "unsafe",
                    rule: site.kind.rule(),
                    file: rel.display().to_string(),
                    line: site.line,
                    message: format!(
                        "`{}` without an adjacent SAFETY justification",
                        site.kind.describe()
                    ),
                });
            }
        }
    }
    findings
}

/// Standalone `cargo xtask lint-unsafe` entry point.
pub fn run(root: &Path) -> ExitCode {
    let files = crate::audit::collect_rs_files(root);
    let mut sites = 0usize;
    for file in &files {
        if let Ok(source) = std::fs::read_to_string(file) {
            sites += scan(&source).len();
        }
    }
    let findings = pass(root, &files);
    if findings.is_empty() {
        println!(
            "lint-unsafe: OK ({} files, {} unsafe sites, all justified)",
            files.len(),
            sites
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("error: {}", f.display());
        }
        eprintln!(
            "\nlint-unsafe: {} unjustified unsafe site(s). Add a `// SAFETY: ...` \
             comment explaining why the invariants hold (or a `# Safety` doc \
             section for an unsafe fn).",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

/// What kind of unsafe site was found (affects accepted justifications).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `unsafe { ... }`.
    Block,
    /// `unsafe fn ...`.
    Fn,
    /// `unsafe impl ...` / `unsafe trait ...`.
    ImplOrTrait,
}

impl SiteKind {
    fn describe(self) -> &'static str {
        match self {
            SiteKind::Block => "unsafe block",
            SiteKind::Fn => "unsafe fn",
            SiteKind::ImplOrTrait => "unsafe impl/trait",
        }
    }

    fn rule(self) -> &'static str {
        match self {
            SiteKind::Block => "unsafe-block",
            SiteKind::Fn => "unsafe-fn",
            SiteKind::ImplOrTrait => "unsafe-impl",
        }
    }
}

/// One `unsafe` occurrence in real code.
#[derive(Debug)]
pub struct Site {
    /// 1-based line number.
    pub line: usize,
    /// Site classification.
    pub kind: SiteKind,
    /// Whether an accepted justification is present.
    pub justified: bool,
}

/// Scan source text for unsafe sites and their justifications.
pub fn scan(source: &str) -> Vec<Site> {
    let lines = lex(source);
    let mut sites = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let mut from = 0;
        while let Some(pos) = find_word(code, "unsafe", from) {
            from = pos + "unsafe".len();
            // Classify by the next code token, looking ahead across lines.
            let kind = classify(&lines, i, from);
            // `unsafe fn` after `:`/`(`/`,`/`<`/`&` is a function-pointer
            // *type* (e.g. `destroy: unsafe fn(*mut ())`), not an unsafe
            // operation — a real declaration never follows those tokens.
            if kind == SiteKind::Fn {
                let before = code[..pos].trim_end();
                if before.ends_with([':', '(', ',', '<', '&', '=']) {
                    continue;
                }
            }
            let justified = match kind {
                SiteKind::Fn => {
                    has_marker_near(&lines, i, "SAFETY:") || has_safety_doc_section(&lines, i)
                }
                _ => has_marker_near(&lines, i, "SAFETY:"),
            };
            sites.push(Site {
                line: i + 1,
                kind,
                justified,
            });
        }
    }
    sites
}

/// Determine what follows the `unsafe` keyword (skipping whitespace across
/// lines): `fn` ⇒ Fn, `impl`/`trait` ⇒ ImplOrTrait, else a block.
fn classify(lines: &[LexedLine], line_idx: usize, col: usize) -> SiteKind {
    let mut idx = line_idx;
    let mut rest = lines[idx].code[col..].to_string();
    loop {
        let trimmed = rest.trim_start();
        if !trimmed.is_empty() {
            return if trimmed.starts_with("fn")
                || trimmed.starts_with("extern") && trimmed.contains("fn")
            {
                SiteKind::Fn
            } else if trimmed.starts_with("impl") || trimmed.starts_with("trait") {
                SiteKind::ImplOrTrait
            } else {
                SiteKind::Block
            };
        }
        idx += 1;
        match lines.get(idx) {
            Some(l) => rest = l.code.clone(),
            None => return SiteKind::Block,
        }
    }
}

/// A doc block directly above the declaration containing `# Safety`.
///
/// Walks upward through attached doc comments and attributes only.
fn has_safety_doc_section(lines: &[LexedLine], line_idx: usize) -> bool {
    let mut idx = line_idx;
    while idx > 0 {
        idx -= 1;
        let l = &lines[idx];
        let code_trimmed = l.code.trim();
        let is_attr = code_trimmed.starts_with('#');
        let is_attached =
            l.is_doc || is_attr || (code_trimmed.is_empty() && !l.comment.is_empty());
        if !is_attached {
            // Also allow the `pub`/`pub(crate)` qualifier split across lines.
            if code_trimmed.is_empty() {
                continue;
            }
            return false;
        }
        if l.is_doc && l.comment.contains("# Safety") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::JUSTIFY_WINDOW;

    fn unjustified(source: &str) -> Vec<usize> {
        scan(source)
            .into_iter()
            .filter(|s| !s.justified)
            .map(|s| s.line)
            .collect()
    }

    #[test]
    fn flags_bare_unsafe_block() {
        let src = "fn f() {\n    let x = unsafe { *p };\n}\n";
        assert_eq!(unjustified(src), vec![2]);
    }

    #[test]
    fn accepts_safety_comment_above() {
        let src = "fn f() {\n    // SAFETY: p is valid.\n    let x = unsafe { *p };\n}\n";
        assert!(unjustified(src).is_empty());
    }

    #[test]
    fn accepts_same_line_safety() {
        let src = "let x = unsafe { *p }; // SAFETY: p is valid.\n";
        assert!(unjustified(src).is_empty());
    }

    #[test]
    fn window_is_bounded() {
        let filler = "let a = 1;\n".repeat(JUSTIFY_WINDOW + 1);
        let src = format!("// SAFETY: too far away.\n{filler}let x = unsafe {{ *p }};\n");
        assert_eq!(unjustified(&src).len(), 1);
    }

    #[test]
    fn ignores_unsafe_in_strings_and_comments() {
        let src = "// this mentions unsafe code\nlet s = \"unsafe\";\nlet r = r#\"unsafe { }\"#;\nlet c = '\"'; let u = \"x\"; // unsafe\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc() {
        let src = "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller must own it.\npub unsafe fn f() {}\n";
        assert!(unjustified(src).is_empty());
        assert_eq!(scan(src)[0].kind, SiteKind::Fn);
    }

    #[test]
    fn unsafe_fn_without_docs_flagged() {
        let src = "pub unsafe fn f() {}\n";
        assert_eq!(unjustified(src), vec![1]);
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        let src = "unsafe impl Send for X {}\n";
        assert_eq!(unjustified(src), vec![1]);
        assert_eq!(scan(src)[0].kind, SiteKind::ImplOrTrait);
        let ok = "// SAFETY: all fields are Send.\nunsafe impl Send for X {}\n";
        assert!(unjustified(ok).is_empty());
    }

    #[test]
    fn doc_section_does_not_justify_blocks() {
        // `# Safety` docs justify the *declaration* of an unsafe fn, not
        // unsafe blocks in its body.
        let src = "/// # Safety\n/// Caller beware.\nfn f() {\n    unsafe { *p }\n}\n";
        // Within the window the doc comment still matches nothing: it lacks
        // `SAFETY:` and doc sections only apply to Fn sites.
        assert_eq!(unjustified(src), vec![4]);
    }

    #[test]
    fn lifetimes_do_not_break_lexer() {
        let src = "fn f<'g>(x: &'g str) -> &'g str { x }\nlet y = unsafe { g() };\n";
        assert_eq!(unjustified(src), vec![2]);
    }

    #[test]
    fn block_comments_strip() {
        let src = "/* unsafe here */ let x = 1;\nlet y = /* SAFETY: fine */ unsafe { g() };\n";
        assert!(unjustified(src).is_empty());
        assert_eq!(scan(src).len(), 1);
    }

    #[test]
    fn long_safety_comment_block_counts() {
        let src = "// SAFETY: a justification that runs on\n// and on and on and on\n// and on and on and on\n// and on and on and on\n// and on and on and on\n// and on and on and on\n// before finally ending.\nlet x = unsafe { g() };\n";
        assert!(unjustified(src).is_empty());
    }

    #[test]
    fn fn_pointer_type_is_not_a_site() {
        let src = "struct D {\n    destroy: unsafe fn(*mut ()),\n}\ntype F = unsafe fn(u32) -> u32;\nfn apply(f: unsafe fn()) {}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn multiline_block_comment_with_unsafe_text() {
        let src = "/*\n * unsafe unsafe unsafe\n */\nlet x = 1;\n";
        assert!(scan(src).is_empty());
    }
}
