//! The `lint-unsafe` task: every `unsafe` site must carry a justification.
//!
//! Policy (matching `docs/correctness.md`):
//!
//! * an `unsafe` **block**, `unsafe impl`, or `unsafe trait` needs a comment
//!   containing `SAFETY:` on the same line or within the five preceding
//!   lines;
//! * an `unsafe fn` declaration may alternatively carry a doc comment with a
//!   `# Safety` section (the rustdoc convention), searched in the directly
//!   attached doc block.
//!
//! The scanner is lexical: it strips comments, strings, and char literals
//! before looking for the `unsafe` keyword, so occurrences inside text never
//! trip it, and it needs no syn/proc-macro dependency.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 5;

/// Directories never scanned.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "docs"];

/// Run the lint over every `.rs` file under `root`.
pub fn run(root: &Path) -> ExitCode {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    files.sort();
    let mut violations = Vec::new();
    let mut sites = 0usize;
    for file in &files {
        let Ok(source) = fs::read_to_string(file) else {
            eprintln!("warning: unreadable file {}", file.display());
            continue;
        };
        let rel = file.strip_prefix(root).unwrap_or(file);
        for site in scan(&source) {
            sites += 1;
            if !site.justified {
                violations.push(format!(
                    "{}:{}: `{}` without an adjacent SAFETY justification",
                    rel.display(),
                    site.line,
                    site.kind.describe(),
                ));
            }
        }
    }
    if violations.is_empty() {
        println!(
            "lint-unsafe: OK ({} files, {} unsafe sites, all justified)",
            files.len(),
            sites
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("error: {v}");
        }
        eprintln!(
            "\nlint-unsafe: {} unjustified unsafe site(s). Add a `// SAFETY: ...` \
             comment explaining why the invariants hold (or a `# Safety` doc \
             section for an unsafe fn).",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// What kind of unsafe site was found (affects accepted justifications).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `unsafe { ... }`.
    Block,
    /// `unsafe fn ...`.
    Fn,
    /// `unsafe impl ...` / `unsafe trait ...`.
    ImplOrTrait,
}

impl SiteKind {
    fn describe(self) -> &'static str {
        match self {
            SiteKind::Block => "unsafe block",
            SiteKind::Fn => "unsafe fn",
            SiteKind::ImplOrTrait => "unsafe impl/trait",
        }
    }
}

/// One `unsafe` occurrence in real code.
#[derive(Debug)]
pub struct Site {
    /// 1-based line number.
    pub line: usize,
    /// Site classification.
    pub kind: SiteKind,
    /// Whether an accepted justification is present.
    pub justified: bool,
}

/// Scan source text for unsafe sites and their justifications.
pub fn scan(source: &str) -> Vec<Site> {
    let lines = lex(source);
    let mut sites = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let mut from = 0;
        while let Some(pos) = find_word(code, "unsafe", from) {
            from = pos + "unsafe".len();
            // Classify by the next code token, looking ahead across lines.
            let kind = classify(&lines, i, from);
            // `unsafe fn` after `:`/`(`/`,`/`<`/`&` is a function-pointer
            // *type* (e.g. `destroy: unsafe fn(*mut ())`), not an unsafe
            // operation — a real declaration never follows those tokens.
            if kind == SiteKind::Fn {
                let before = code[..pos].trim_end();
                if before.ends_with([':', '(', ',', '<', '&', '=']) {
                    continue;
                }
            }
            let justified = match kind {
                SiteKind::Fn => {
                    has_safety_comment(&lines, i) || has_safety_doc_section(&lines, i)
                }
                _ => has_safety_comment(&lines, i),
            };
            sites.push(Site {
                line: i + 1,
                kind,
                justified,
            });
        }
    }
    sites
}

/// A source line split into its code part and its comment part.
struct LexedLine {
    /// The line with comments, strings and char literals blanked out.
    code: String,
    /// Concatenated comment text on the line (line, block, and doc).
    comment: String,
    /// Whether the comment is a doc comment (`///` or `//!` or `/** */`).
    is_doc: bool,
}

/// First occurrence of `word` in `code` at or after `from`, with identifier
/// boundaries on both sides.
fn find_word(code: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(rel) = code.get(start..)?.find(word) {
        let pos = start + rel;
        let before_ok = pos == 0
            || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
        let end = pos + word.len();
        let after_ok = end >= bytes.len()
            || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

/// Determine what follows the `unsafe` keyword (skipping whitespace across
/// lines): `fn` ⇒ Fn, `impl`/`trait` ⇒ ImplOrTrait, else a block.
fn classify(lines: &[LexedLine], line_idx: usize, col: usize) -> SiteKind {
    let mut idx = line_idx;
    let mut rest = lines[idx].code[col..].to_string();
    loop {
        let trimmed = rest.trim_start();
        if !trimmed.is_empty() {
            return if trimmed.starts_with("fn")
                || trimmed.starts_with("extern") && trimmed.contains("fn")
            {
                SiteKind::Fn
            } else if trimmed.starts_with("impl") || trimmed.starts_with("trait") {
                SiteKind::ImplOrTrait
            } else {
                SiteKind::Block
            };
        }
        idx += 1;
        match lines.get(idx) {
            Some(l) => rest = l.code.clone(),
            None => return SiteKind::Block,
        }
    }
}

/// A `SAFETY:` comment on the same line or in the window above.
///
/// Pure comment lines do not consume the window, so a multi-line
/// justification block counts in full however long it is; only code and
/// blank lines burn the budget.
fn has_safety_comment(lines: &[LexedLine], line_idx: usize) -> bool {
    if lines[line_idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut budget = SAFETY_WINDOW;
    let mut idx = line_idx;
    while idx > 0 && budget > 0 {
        idx -= 1;
        let l = &lines[idx];
        if l.comment.contains("SAFETY:") {
            return true;
        }
        // A comment-only line extends the window upward for free.
        if !(l.code.trim().is_empty() && !l.comment.is_empty()) {
            budget -= 1;
        }
    }
    false
}

/// A doc block directly above the declaration containing `# Safety`.
///
/// Walks upward through attached doc comments and attributes only.
fn has_safety_doc_section(lines: &[LexedLine], line_idx: usize) -> bool {
    let mut idx = line_idx;
    while idx > 0 {
        idx -= 1;
        let l = &lines[idx];
        let code_trimmed = l.code.trim();
        let is_attr = code_trimmed.starts_with('#');
        let is_attached =
            l.is_doc || is_attr || (code_trimmed.is_empty() && !l.comment.is_empty());
        if !is_attached {
            // Also allow the `pub`/`pub(crate)` qualifier split across lines.
            if code_trimmed.is_empty() {
                continue;
            }
            return false;
        }
        if l.is_doc && l.comment.contains("# Safety") {
            return true;
        }
    }
    false
}

/// Strip comments, strings and char literals, keeping per-line comment text.
fn lex(source: &str) -> Vec<LexedLine> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Normal,
        Block { depth: u32, doc: bool },
        Str,
        RawStr { hashes: u32 },
    }

    let mut out = Vec::new();
    let mut state = State::Normal;
    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut is_doc = false;
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Normal => match c {
                    '/' if chars.get(i + 1) == Some(&'/') => {
                        let text: String = chars[i..].iter().collect();
                        if text.starts_with("///") || text.starts_with("//!") {
                            is_doc = true;
                        }
                        comment.push_str(&text);
                        i = chars.len();
                    }
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        let doc = chars.get(i + 2) == Some(&'*') || chars.get(i + 2) == Some(&'!');
                        state = State::Block { depth: 1, doc };
                        if doc {
                            is_doc = true;
                        }
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' if matches!(chars.get(i + 1), Some('"' | '#'))
                        && raw_string_hashes(&chars[i + 1..]).is_some() =>
                    {
                        let hashes = raw_string_hashes(&chars[i + 1..]).unwrap();
                        state = State::RawStr { hashes };
                        code.push(' ');
                        i += 2 + hashes as usize; // r, hashes, opening quote
                    }
                    'b' if chars.get(i + 1) == Some(&'"') => {
                        state = State::Str;
                        code.push(' ');
                        i += 2;
                    }
                    '\'' => {
                        // Char literal vs lifetime.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to closing quote.
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            code.push(' ');
                            i = (j + 1).min(chars.len());
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push(' ');
                            i += 3;
                        } else {
                            // Lifetime: keep going.
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::Block { depth, doc } => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        if depth == 1 {
                            state = State::Normal;
                        } else {
                            state = State::Block {
                                depth: depth - 1,
                                doc,
                            };
                        }
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block {
                            depth: depth + 1,
                            doc,
                        };
                        i += 2;
                    } else {
                        comment.push(c);
                        if doc {
                            is_doc = true;
                        }
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        state = State::Normal;
                        code.push('"');
                        i += 1;
                    }
                    _ => i += 1,
                },
                State::RawStr { hashes } => {
                    if c == '"' && closes_raw(&chars[i + 1..], hashes) {
                        state = State::Normal;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        if let State::Block { doc, .. } = state {
            // Block comment continues onto the next line.
            if doc {
                is_doc = true;
            }
        }
        out.push(LexedLine {
            code,
            comment,
            is_doc,
        });
    }
    out
}

/// For text after a leading `r`, return `Some(hash_count)` if it opens a raw
/// string (`#*"` prefix).
fn raw_string_hashes(after_r: &[char]) -> Option<u32> {
    let mut hashes = 0u32;
    for &c in after_r {
        match c {
            '#' => hashes += 1,
            '"' => return Some(hashes),
            _ => return None,
        }
    }
    None
}

/// Whether the chars after a `"` close a raw string with `hashes` hashes.
fn closes_raw(after_quote: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| after_quote.get(k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unjustified(source: &str) -> Vec<usize> {
        scan(source)
            .into_iter()
            .filter(|s| !s.justified)
            .map(|s| s.line)
            .collect()
    }

    #[test]
    fn flags_bare_unsafe_block() {
        let src = "fn f() {\n    let x = unsafe { *p };\n}\n";
        assert_eq!(unjustified(src), vec![2]);
    }

    #[test]
    fn accepts_safety_comment_above() {
        let src = "fn f() {\n    // SAFETY: p is valid.\n    let x = unsafe { *p };\n}\n";
        assert!(unjustified(src).is_empty());
    }

    #[test]
    fn accepts_same_line_safety() {
        let src = "let x = unsafe { *p }; // SAFETY: p is valid.\n";
        assert!(unjustified(src).is_empty());
    }

    #[test]
    fn window_is_bounded() {
        let filler = "let a = 1;\n".repeat(SAFETY_WINDOW + 1);
        let src = format!("// SAFETY: too far away.\n{filler}let x = unsafe {{ *p }};\n");
        assert_eq!(unjustified(&src).len(), 1);
    }

    #[test]
    fn ignores_unsafe_in_strings_and_comments() {
        let src = "// this mentions unsafe code\nlet s = \"unsafe\";\nlet r = r#\"unsafe { }\"#;\nlet c = '\"'; let u = \"x\"; // unsafe\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc() {
        let src = "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller must own it.\npub unsafe fn f() {}\n";
        assert!(unjustified(src).is_empty());
        assert_eq!(scan(src)[0].kind, SiteKind::Fn);
    }

    #[test]
    fn unsafe_fn_without_docs_flagged() {
        let src = "pub unsafe fn f() {}\n";
        assert_eq!(unjustified(src), vec![1]);
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        let src = "unsafe impl Send for X {}\n";
        assert_eq!(unjustified(src), vec![1]);
        assert_eq!(scan(src)[0].kind, SiteKind::ImplOrTrait);
        let ok = "// SAFETY: all fields are Send.\nunsafe impl Send for X {}\n";
        assert!(unjustified(ok).is_empty());
    }

    #[test]
    fn doc_section_does_not_justify_blocks() {
        // `# Safety` docs justify the *declaration* of an unsafe fn, not
        // unsafe blocks in its body.
        let src = "/// # Safety\n/// Caller beware.\nfn f() {\n    unsafe { *p }\n}\n";
        // Within the window the doc comment still matches nothing: it lacks
        // `SAFETY:` and doc sections only apply to Fn sites.
        assert_eq!(unjustified(src), vec![4]);
    }

    #[test]
    fn lifetimes_do_not_break_lexer() {
        let src = "fn f<'g>(x: &'g str) -> &'g str { x }\nlet y = unsafe { g() };\n";
        assert_eq!(unjustified(src), vec![2]);
    }

    #[test]
    fn block_comments_strip() {
        let src = "/* unsafe here */ let x = 1;\nlet y = /* SAFETY: fine */ unsafe { g() };\n";
        assert!(unjustified(src).is_empty());
        assert_eq!(scan(src).len(), 1);
    }

    #[test]
    fn long_safety_comment_block_counts() {
        let src = "// SAFETY: a justification that runs on\n// and on and on and on\n// and on and on and on\n// and on and on and on\n// and on and on and on\n// and on and on and on\n// before finally ending.\nlet x = unsafe { g() };\n";
        assert!(unjustified(src).is_empty());
    }

    #[test]
    fn fn_pointer_type_is_not_a_site() {
        let src = "struct D {\n    destroy: unsafe fn(*mut ()),\n}\ntype F = unsafe fn(u32) -> u32;\nfn apply(f: unsafe fn()) {}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn multiline_block_comment_with_unsafe_text() {
        let src = "/*\n * unsafe unsafe unsafe\n */\nlet x = 1;\n";
        assert!(scan(src).is_empty());
    }
}
