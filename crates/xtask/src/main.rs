//! Workspace automation, invoked as `cargo xtask <task>` (see the alias in
//! `.cargo/config.toml`).
//!
//! Tasks:
//!
//! * `lint-unsafe` — walk every Rust source file in the workspace and fail
//!   if an `unsafe` occurrence is not justified: `unsafe` blocks and
//!   `unsafe impl`s need an adjacent `// SAFETY:` comment, `unsafe fn`
//!   declarations need either one or a `# Safety` section in their doc
//!   comment. The scanner is purely lexical (comments and strings are
//!   stripped before matching), so it needs no dependencies and runs in
//!   milliseconds.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod lint_unsafe;

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint-unsafe   require a SAFETY justification at every unsafe site");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint-unsafe") => lint_unsafe::run(&workspace_root()),
        _ => usage(),
    }
}

/// The workspace root: this file lives at `<root>/crates/xtask/src/main.rs`.
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}
