//! Workspace automation, invoked as `cargo xtask <task>` (see the alias in
//! `.cargo/config.toml`).
//!
//! The repository's static-analysis suite — **cots-audit** — lives here as
//! a set of zero-dependency lexical passes (see `docs/correctness.md` for
//! the policy each one enforces and the annotation grammar):
//!
//! * `audit` — run every pass; `--json` writes the machine-readable
//!   report to stdout (CI archives it as `AUDIT.json`), `--fixtures`
//!   self-tests the analyzers against `crates/xtask/fixtures/`.
//! * `lint-unsafe` — every `unsafe` site needs a `// SAFETY:`
//!   justification (or a `# Safety` doc section for `unsafe fn`).
//! * `lint-totality` — in `//! AUDIT: total` modules, no panic-capable
//!   construct without a `// PANIC-OK:` proof.
//! * `lint-locks` — in `//! AUDIT: locks` modules, no blocking I/O or
//!   nested acquisition under a live guard without a `// LOCK-OK:`.
//! * `lint-protocol` — `docs/PROTOCOL.md`'s wire reference must match
//!   the `serve::protocol` enums and `core::report` structs exactly.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod audit;
mod lexer;
mod lint_locks;
mod lint_protocol;
mod lint_totality;
mod lint_unsafe;
mod report;

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  audit [--json] [--fixtures]");
    eprintln!("                 run all passes; --json emits AUDIT.json on stdout,");
    eprintln!("                 --fixtures self-tests against the fixture corpus");
    eprintln!("  lint-unsafe    require a SAFETY justification at every unsafe site");
    eprintln!("  lint-totality  deny panic-capable code in `AUDIT: total` modules");
    eprintln!("  lint-locks     deny blocking/nested work under guards in `AUDIT: locks` modules");
    eprintln!("  lint-protocol  cross-check docs/PROTOCOL.md against the wire types");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint-unsafe") => lint_unsafe::run(&root),
        Some("lint-totality") => {
            let files = audit::collect_rs_files(&root);
            let (findings, scanned) = lint_totality::pass(&root, &files);
            finish("lint-totality", scanned, findings)
        }
        Some("lint-locks") => {
            let files = audit::collect_rs_files(&root);
            let (findings, scanned) = lint_locks::pass(&root, &files);
            finish("lint-locks", scanned, findings)
        }
        Some("lint-protocol") => finish("lint-protocol", 4, lint_protocol::pass(&root)),
        Some("audit") => {
            let json = args.iter().any(|a| a == "--json");
            let fixtures = args.iter().any(|a| a == "--fixtures");
            if fixtures {
                audit::run_fixtures(&root)
            } else {
                audit::run(&root, json)
            }
        }
        _ => usage(),
    }
}

/// Shared tail for the single-pass commands.
fn finish(task: &str, files: usize, findings: Vec<report::Finding>) -> ExitCode {
    for f in &findings {
        eprintln!("error: {}", f.display());
    }
    if findings.is_empty() {
        println!("{task}: OK ({files} file(s) checked)");
        ExitCode::SUCCESS
    } else {
        eprintln!("\n{task}: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: this file lives at `<root>/crates/xtask/src/main.rs`.
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}
