//! The `totality` pass: panic-free decode paths, statically enforced.
//!
//! Modules that promise total decode — every byte sequence yields a value
//! or a typed error, never a panic — opt in with a `//! AUDIT: total`
//! line in their leading doc block. In those files, non-test code may not
//! use panic-capable constructs:
//!
//! * `.unwrap()` / `.expect(..)` (`unwrap_or*` and friends are fine —
//!   identifier boundaries exclude them);
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`,
//!   `assert_eq!`, `assert_ne!` (the `debug_assert*` family is allowed:
//!   it compiles out of release builds, which is what ships);
//! * slice/array indexing and index ranges — `buf[i]`, `&buf[4..]`,
//!   `buf[..n]` — the lexical heuristic: a `[` whose previous
//!   non-space character ends a value expression (alphanumeric, `_`,
//!   `)`, `]`, or `?`). Type positions (`: [u8; 4]`, `&[u8]`),
//!   attributes (`#[..]`), and macro brackets (`vec![..]`) all fail
//!   that test and are ignored.
//!
//! Any construct the author can prove safe is discharged with an
//! adjacent `// PANIC-OK:` comment stating the proof — same window
//! mechanics as `// SAFETY:`. Test code (`#[cfg(test)]` regions) is
//! exempt: tests *should* assert.

use std::path::{Path, PathBuf};

use crate::lexer::{file_marker, find_word, has_marker_near, lex, test_lines, LexedLine};
use crate::report::Finding;

/// The file-level opt-in marker.
pub const MARKER: &str = "AUDIT: total";

/// Macros that abort the thread when reached.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Run the totality pass. Returns findings and the number of files that
/// carried the marker (for the report header).
pub fn pass(root: &Path, files: &[PathBuf]) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut annotated = 0usize;
    for file in files {
        let Ok(source) = std::fs::read_to_string(file) else {
            continue;
        };
        let lines = lex(&source);
        if !file_marker(&lines, MARKER) {
            continue;
        }
        annotated += 1;
        let rel = file.strip_prefix(root).unwrap_or(file).display().to_string();
        findings.extend(scan(&lines, &rel));
    }
    (findings, annotated)
}

/// Scan one annotated file's lexed lines.
fn scan(lines: &[LexedLine], rel: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_test = test_lines(lines);
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let code = &line.code;
        let mut flag = |rule: &'static str, what: &str| {
            if !has_marker_near(lines, i, "PANIC-OK:") {
                findings.push(Finding {
                    pass: "totality",
                    rule,
                    file: rel.to_string(),
                    line: i + 1,
                    message: format!(
                        "{what} in a total-decode module; return an error or \
                         justify with `// PANIC-OK: <proof it cannot fire>`"
                    ),
                });
            }
        };
        for method in ["unwrap", "expect"] {
            let mut from = 0;
            while let Some(pos) = find_word(code, method, from) {
                from = pos + method.len();
                // Only the panicking *method* forms: `.unwrap()` / `.expect(`.
                let is_call = code[from..].trim_start().starts_with('(');
                let is_method = code[..pos].trim_end().ends_with('.');
                if is_call && is_method {
                    let rule = if method == "unwrap" { "unwrap" } else { "expect" };
                    flag(rule, &format!("`.{method}(..)`"));
                }
            }
        }
        for mac in PANIC_MACROS {
            let mut from = 0;
            while let Some(pos) = find_word(code, mac, from) {
                from = pos + mac.len();
                if code[from..].starts_with('!') {
                    flag("panic-macro", &format!("`{mac}!`"));
                }
            }
        }
        for pos in index_sites(code) {
            // One finding per line is enough for indexing — a single
            // PANIC-OK discharges the whole expression anyway.
            flag("index", &format!("slice/array indexing at column {}", pos + 1));
            break;
        }
    }
    findings
}

/// Keywords that can directly precede a `[` that is a type or pattern,
/// not an indexing expression (`&mut [u8]`, `if let [a, b] = ...`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "let", "in", "as", "return", "else", "match", "dyn", "impl", "ref", "move", "box",
    "const", "static", "break", "continue", "where",
];

/// Columns of `[` tokens that look like value indexing.
fn index_sites(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut sites = Vec::new();
    for (pos, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let before = code[..pos].trim_end();
        let prev = before.as_bytes().last().copied();
        let indexes_a_value = matches!(
            prev,
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b')' || c == b']' || c == b'?'
        );
        if indexes_a_value && !ends_with_keyword(before) {
            sites.push(pos);
        }
    }
    sites
}

/// True when `before` ends in one of [`NON_INDEX_KEYWORDS`] as a whole word.
fn ends_with_keyword(before: &str) -> bool {
    let word_start = before
        .rfind(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .map_or(0, |i| i + 1);
    NON_INDEX_KEYWORDS.contains(&&before[word_start..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(body: &str) -> Vec<(usize, &'static str)> {
        let src = format!("//! Module.\n//! AUDIT: total\n\n{body}");
        let lines = lex(&src);
        assert!(file_marker(&lines, MARKER));
        scan(&lines, "x.rs")
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect()
    }

    #[test]
    fn unannotated_files_are_skipped() {
        let lines = lex("fn f(v: Vec<u32>) -> u32 { v[0] }\n");
        assert!(!file_marker(&lines, MARKER));
    }

    #[test]
    fn flags_unwrap_and_expect_calls_only() {
        let f = findings_in(
            "fn f(o: Option<u8>) -> u8 {\n    let a = o.unwrap();\n    let b = o.expect(\"x\");\n    o.unwrap_or(0)\n}\n",
        );
        assert_eq!(f, vec![(5, "unwrap"), (6, "expect")]);
    }

    #[test]
    fn flags_panic_macros_but_not_debug_asserts() {
        let f = findings_in(
            "fn f(x: bool) {\n    debug_assert!(x);\n    assert!(x);\n    if !x { panic!(\"no\") }\n}\n",
        );
        assert_eq!(f, vec![(6, "panic-macro"), (7, "panic-macro")]);
    }

    #[test]
    fn flags_value_indexing_not_types_or_macros() {
        let f = findings_in(
            "fn f(buf: &[u8], arr: [u8; 4]) -> u8 {\n    #[allow(dead_code)]\n    let v = vec![1u8];\n    let x: [u8; 2] = [0, 1];\n    buf[0] + arr[1] + x[..1][0]\n}\n",
        );
        assert_eq!(f, vec![(8, "index")]);
    }

    #[test]
    fn keywords_before_bracket_are_not_indexing() {
        let f = findings_in(
            "fn f(buf: &mut [u8], pair: &[u8]) -> u8 {\n    if let [a, _b] = pair {\n        return *a;\n    }\n    buf[0]\n}\n",
        );
        assert_eq!(f, vec![(8, "index")]);
    }

    #[test]
    fn panic_ok_discharges() {
        let f = findings_in(
            "fn f(buf: &[u8]) -> u8 {\n    // PANIC-OK: caller checked len >= 1.\n    buf[0]\n}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let f = findings_in(
            "fn prod() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        assert_eq!(1, Some(1).unwrap());\n    }\n}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn question_mark_then_index_is_flagged() {
        let f = findings_in("fn f(v: Vec<u8>) -> Option<u8> {\n    Some(g(&v)?[0])\n}\n");
        assert_eq!(f, vec![(5, "index")]);
    }
}
