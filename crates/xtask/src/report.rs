//! Findings and the machine-readable audit report.
//!
//! Every pass returns plain [`Finding`] values; the orchestrator decides
//! whether to render them as human `file:line:` diagnostics or as the
//! `AUDIT.json` document CI archives. The JSON writer is hand-rolled —
//! xtask is deliberately dependency-free — and emits a stable schema:
//!
//! ```json
//! {
//!   "schema": "cots-audit/1",
//!   "passes": [{"pass": "totality", "files": 7, "findings": 0}, ...],
//!   "findings": [{"pass": "...", "rule": "...", "file": "...",
//!                 "line": 42, "message": "..."}],
//!   "total_findings": 0,
//!   "ok": true
//! }
//! ```

/// One diagnostic from one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which pass produced it: `unsafe`, `totality`, `locks`, `protocol`.
    pub pass: &'static str,
    /// Stable machine-readable rule id within the pass.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human explanation, including how to justify or fix.
    pub message: String,
}

impl Finding {
    /// Render as a compiler-style one-liner.
    pub fn display(&self) -> String {
        format!(
            "{}:{}: [{}/{}] {}",
            self.file, self.line, self.pass, self.rule, self.message
        )
    }
}

/// Per-pass counters for the report header.
#[derive(Debug, Clone)]
pub struct PassSummary {
    /// Pass name.
    pub pass: &'static str,
    /// How many files the pass examined (after marker filtering).
    pub files: usize,
    /// How many findings it produced.
    pub findings: usize,
}

/// Serialize the whole report.
pub fn to_json(passes: &[PassSummary], findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"schema\": \"cots-audit/1\",\n  \"passes\": [");
    for (i, p) in passes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": {}, \"files\": {}, \"findings\": {}}}",
            json_str(p.pass),
            p.files,
            p.findings
        ));
    }
    out.push_str("\n  ],\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": {}, \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(f.pass),
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"total_findings\": {},\n  \"ok\": {}\n}}\n",
        findings.len(),
        findings.is_empty()
    ));
    out
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let findings = vec![Finding {
            pass: "totality",
            rule: "unwrap",
            file: "a/b.rs".into(),
            line: 7,
            message: "say \"why\"\nor fix".into(),
        }];
        let passes = vec![PassSummary {
            pass: "totality",
            files: 3,
            findings: 1,
        }];
        let json = to_json(&passes, &findings);
        assert!(json.contains("\"total_findings\": 1"));
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("say \\\"why\\\"\\nor fix"));
        assert!(json.contains("\"files\": 3"));
    }

    #[test]
    fn empty_report_is_ok() {
        let json = to_json(&[], &[]);
        assert!(json.contains("\"ok\": true"));
        assert!(json.contains("\"total_findings\": 0"));
    }
}
