//! The `audit` task: run every pass, emit the report, gate CI.
//!
//! * `cargo xtask audit` — human-readable findings, exit 1 on any.
//! * `cargo xtask audit --json > AUDIT.json` — the machine-readable
//!   report on stdout (diagnostics go to stderr), same exit semantics.
//! * `cargo xtask audit --fixtures` — self-test: run the passes over
//!   `crates/xtask/fixtures/` and require that the findings match the
//!   `EXPECT:` markers in the fixture files exactly (same file, same
//!   line, same pass, same rule). This proves the analyzers still catch
//!   what they claim to catch; it runs in CI next to the real audit.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::report::{to_json, Finding, PassSummary};
use crate::{lint_locks, lint_protocol, lint_totality, lint_unsafe};

/// Directories never scanned for Rust sources.
///
/// `fixtures` holds files with *deliberate* violations for
/// `audit --fixtures`; they must not fail the real audit.
pub const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "docs", "fixtures"];

/// Every `.rs` file under `root`, skipping [`SKIP_DIRS`], sorted.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    walk(root, &mut files, |name| name.ends_with(".rs"));
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>, keep: fn(&str) -> bool) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                walk(&path, out, keep);
            }
        } else if keep(&name) {
            out.push(path);
        }
    }
}

/// Run all passes over the workspace.
pub fn run(root: &Path, json: bool) -> ExitCode {
    let files = collect_rs_files(root);
    let (passes, mut findings) = run_passes(root, &files);
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    if json {
        print!("{}", to_json(&passes, &findings));
    }
    for f in &findings {
        eprintln!("error: {}", f.display());
    }
    if !json {
        for p in &passes {
            println!(
                "audit/{}: {} ({} file(s), {} finding(s))",
                p.pass,
                if p.findings == 0 { "OK" } else { "FAIL" },
                p.files,
                p.findings
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\naudit: {} finding(s). Fix them, or justify with the marker the \
             message names (see docs/correctness.md for the annotation grammar).",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

fn run_passes(root: &Path, files: &[PathBuf]) -> (Vec<PassSummary>, Vec<Finding>) {
    let unsafe_findings = lint_unsafe::pass(root, files);
    let (totality_findings, totality_files) = lint_totality::pass(root, files);
    let (locks_findings, locks_files) = lint_locks::pass(root, files);
    let protocol_findings = lint_protocol::pass(root);

    let passes = vec![
        PassSummary {
            pass: "unsafe",
            files: files.len(),
            findings: unsafe_findings.len(),
        },
        PassSummary {
            pass: "totality",
            files: totality_files,
            findings: totality_findings.len(),
        },
        PassSummary {
            pass: "locks",
            files: locks_files,
            findings: locks_findings.len(),
        },
        PassSummary {
            pass: "protocol",
            files: 4,
            findings: protocol_findings.len(),
        },
    ];
    let mut findings = unsafe_findings;
    findings.extend(totality_findings);
    findings.extend(locks_findings);
    findings.extend(protocol_findings);
    (passes, findings)
}

/// Self-test the analyzers against the fixture corpus.
pub fn run_fixtures(root: &Path) -> ExitCode {
    let fixture_root = root.join("crates/xtask/fixtures");
    if !fixture_root.is_dir() {
        eprintln!("audit --fixtures: missing {}", fixture_root.display());
        return ExitCode::FAILURE;
    }

    // Collect fixture sources directly (the normal walker skips
    // `fixtures/` on purpose).
    let mut rs_files = Vec::new();
    walk_all(&fixture_root, &mut rs_files);
    let rs_only: Vec<PathBuf> = rs_files
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .cloned()
        .collect();

    let mut actual = lint_unsafe::pass(&fixture_root, &rs_only);
    actual.extend(lint_totality::pass(&fixture_root, &rs_only).0);
    actual.extend(lint_locks::pass(&fixture_root, &rs_only).0);
    let proto = lint_protocol::ProtocolPaths {
        protocol_rs: fixture_root.join("protocol/protocol.rs"),
        report_rs: fixture_root.join("protocol/report.rs"),
        protocol_md: fixture_root.join("protocol/PROTOCOL.md"),
        service_md: None,
    };
    actual.extend(lint_protocol::check(&fixture_root, &proto));

    // Expected findings: `EXPECT: <pass> <rule>` markers, line-anchored.
    let mut expected: Vec<(String, usize, String, String)> = Vec::new();
    for file in &rs_files {
        let Ok(src) = fs::read_to_string(file) else {
            continue;
        };
        let rel = file
            .strip_prefix(&fixture_root)
            .unwrap_or(file)
            .display()
            .to_string();
        for (i, line) in src.lines().enumerate() {
            if let Some(rest) = line.split("EXPECT:").nth(1) {
                let mut words = rest.split_whitespace();
                if let (Some(pass), Some(rule)) = (words.next(), words.next()) {
                    let rule = rule.trim_end_matches("-->").to_string();
                    expected.push((rel.clone(), i + 1, pass.to_string(), rule));
                }
            }
        }
    }

    let mut got: Vec<(String, usize, String, String)> = actual
        .iter()
        .map(|f| (f.file.clone(), f.line, f.pass.to_string(), f.rule.to_string()))
        .collect();
    got.sort();
    expected.sort();

    let missing: Vec<_> = expected.iter().filter(|e| !got.contains(e)).collect();
    let surplus: Vec<_> = got.iter().filter(|g| !expected.contains(g)).collect();
    for (file, line, pass, rule) in &missing {
        eprintln!("fixture mismatch: expected {file}:{line} [{pass}/{rule}] — not reported");
    }
    for (file, line, pass, rule) in &surplus {
        eprintln!("fixture mismatch: unexpected {file}:{line} [{pass}/{rule}]");
    }
    if expected.is_empty() {
        eprintln!("audit --fixtures: no EXPECT markers found — fixture corpus is broken");
        return ExitCode::FAILURE;
    }
    if missing.is_empty() && surplus.is_empty() {
        println!(
            "audit --fixtures: OK ({} expected finding(s) all reproduced, no extras)",
            expected.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\naudit --fixtures: {} missing, {} unexpected",
            missing.len(),
            surplus.len()
        );
        ExitCode::FAILURE
    }
}

/// Recursive collection of *all* files (fixture corpus: .rs and .md).
fn walk_all(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_all(&path, out);
        } else {
            out.push(path);
        }
    }
}
