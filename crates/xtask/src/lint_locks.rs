//! The `locks` pass: no blocking I/O and no nested acquisition while a
//! `Mutex`/`RwLock` guard is live.
//!
//! Files opt in with `//! AUDIT: locks` in their leading doc block (the
//! service's hot-path modules: `serve::service`, `serve::persistence`,
//! `serve::shard`). The pass tracks guard liveness lexically:
//!
//! * a guard is **born** at `.lock()`, `.read()`, or `.write()`
//!   (zero-argument forms only — `.read(buf)` is I/O, not `RwLock`);
//!   if the statement binds it (`let g = m.lock();`) it lives until its
//!   enclosing brace scope closes or an explicit `drop(g)`; an unbound
//!   (transient) guard dies at the end of its statement;
//! * while any guard is live, a further acquisition is a `nested-lock`
//!   finding and a blocking call (`sync_all`, `sync_data`, `write_all`,
//!   `flush`, `read_exact`, `read_to_end`, `accept`, `connect`,
//!   `commit`, `sync`, `rename`, `remove_file`, or a `TcpStream::`
//!   call) is a `blocking-under-lock` finding;
//! * condvar `.wait(..)` is *not* flagged — it releases the mutex it is
//!   handed, which is the whole point.
//!
//! Intentional violations (the WAL writer fsyncs under its own mutex by
//! design) are discharged with an adjacent `// LOCK-OK:` comment stating
//! why the hold is safe — same window mechanics as `// SAFETY:`.
//!
//! Limitations, deliberately accepted for a zero-dependency lexer: the
//! binding must start on the same line as the acquisition, and guards
//! returned from helper functions are not tracked. Both patterns are
//! absent from the annotated modules; keep it that way.

use std::path::{Path, PathBuf};

use crate::lexer::{file_marker, find_word, has_marker_near, lex, test_lines, LexedLine};
use crate::report::Finding;

/// The file-level opt-in marker.
pub const MARKER: &str = "AUDIT: locks";

/// Calls that can block on the OS while a guard is held.
const BLOCKING_CALLS: &[&str] = &[
    "sync_all",
    "sync_data",
    "write_all",
    "flush",
    "read_exact",
    "read_to_end",
    "accept",
    "connect",
    "commit",
    "sync",
    "rename",
    "remove_file",
];

/// Run the locks pass. Returns findings and the number of files that
/// carried the marker.
pub fn pass(root: &Path, files: &[PathBuf]) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut annotated = 0usize;
    for file in files {
        let Ok(source) = std::fs::read_to_string(file) else {
            continue;
        };
        let lines = lex(&source);
        if !file_marker(&lines, MARKER) {
            continue;
        }
        annotated += 1;
        let rel = file.strip_prefix(root).unwrap_or(file).display().to_string();
        findings.extend(scan(&lines, &rel));
    }
    (findings, annotated)
}

/// A live guard.
struct Guard {
    /// Binding name; `None` for a transient (statement-scoped) guard.
    name: Option<String>,
    /// Brace depth at birth — death when the scope closes.
    depth: i64,
    /// 1-based birth line, for diagnostics.
    line: usize,
}

/// What happens at one column of one line.
enum Event {
    /// `.lock()` / `.read()` / `.write()`.
    Acquire,
    /// `drop(name)`.
    Release(String),
    /// A call from [`BLOCKING_CALLS`] or a `TcpStream::` call.
    Blocking(String),
}

/// Scan one annotated file's lexed lines.
fn scan(lines: &[LexedLine], rel: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_test = test_lines(lines);
    let mut depth: i64 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let mut events = if in_test[i] { Vec::new() } else { events_on(code) };
        events.sort_by_key(|(col, _)| *col);
        let mut next_event = 0usize;
        for (col, c) in code.char_indices() {
            while next_event < events.len() && events[next_event].0 == col {
                let (_, event) = &events[next_event];
                next_event += 1;
                match event {
                    Event::Acquire => {
                        if let Some(holder) = guards.last() {
                            if !has_marker_near(lines, i, "LOCK-OK:") {
                                findings.push(Finding {
                                    pass: "locks",
                                    rule: "nested-lock",
                                    file: rel.to_string(),
                                    line: i + 1,
                                    message: format!(
                                        "lock acquired while guard {} (line {}) is \
                                         live; narrow the critical section or \
                                         justify with `// LOCK-OK: <why>`",
                                        describe(holder),
                                        holder.line
                                    ),
                                });
                            }
                        }
                        guards.push(Guard {
                            name: binding_name(&code[..col]),
                            depth,
                            line: i + 1,
                        });
                    }
                    Event::Release(name) => {
                        if let Some(pos) =
                            guards.iter().rposition(|g| g.name.as_deref() == Some(name))
                        {
                            guards.remove(pos);
                        }
                    }
                    Event::Blocking(what) => {
                        if let Some(holder) = guards.last() {
                            if !has_marker_near(lines, i, "LOCK-OK:") {
                                findings.push(Finding {
                                    pass: "locks",
                                    rule: "blocking-under-lock",
                                    file: rel.to_string(),
                                    line: i + 1,
                                    message: format!(
                                        "blocking call `{what}` while guard {} \
                                         (line {}) is live; move the I/O out of \
                                         the critical section or justify with \
                                         `// LOCK-OK: <why>`",
                                        describe(holder),
                                        holder.line
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                ';' => guards.retain(|g| !(g.name.is_none() && g.depth == depth)),
                _ => {}
            }
        }
    }
    findings
}

fn describe(g: &Guard) -> String {
    match &g.name {
        Some(n) => format!("`{n}`"),
        None => "<unbound>".to_string(),
    }
}

/// Extract the (column, event) pairs on one stripped code line.
fn events_on(code: &str) -> Vec<(usize, Event)> {
    let mut events = Vec::new();
    // Acquisitions: `.lock()` always; `.read()`/`.write()` only zero-arg.
    for method in ["lock", "read", "write"] {
        let mut from = 0;
        while let Some(pos) = find_word(code, method, from) {
            from = pos + method.len();
            let is_method = code[..pos].ends_with('.');
            let zero_arg = code[from..]
                .strip_prefix('(')
                .map(|rest| rest.trim_start().starts_with(')'))
                .unwrap_or(false);
            if is_method && (zero_arg || (method == "lock" && code[from..].starts_with('('))) {
                events.push((pos, Event::Acquire));
            }
        }
    }
    // Explicit early release.
    let mut from = 0;
    while let Some(pos) = find_word(code, "drop", from) {
        from = pos + "drop".len();
        if let Some(rest) = code[from..].strip_prefix('(') {
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                events.push((pos, Event::Release(name)));
            }
        }
    }
    // Blocking calls.
    for call in BLOCKING_CALLS {
        let mut from = 0;
        while let Some(pos) = find_word(code, call, from) {
            from = pos + call.len();
            if code[from..].starts_with('(') {
                events.push((pos, Event::Blocking(call.to_string())));
            }
        }
    }
    let mut from = 0;
    while let Some(pos) = find_word(code, "TcpStream", from) {
        from = pos + "TcpStream".len();
        if code[from..].starts_with("::") {
            events.push((pos, Event::Blocking("TcpStream::".to_string())));
        }
    }
    events
}

/// The binding name for an acquisition, if its statement opens with
/// `let [mut] <name> =` on the same line. `let _ = ...` is transient (it
/// drops immediately in Rust, so tracking it as live would be wrong).
fn binding_name(code_before: &str) -> Option<String> {
    let stmt_start = code_before
        .rfind([';', '{', '}'])
        .map(|p| p + 1)
        .unwrap_or(0);
    let stmt = &code_before[stmt_start..];
    let let_pos = find_word(stmt, "let", 0)?;
    let rest = stmt[let_pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(body: &str) -> Vec<(usize, &'static str)> {
        let src = format!("//! Module.\n//! AUDIT: locks\n\n{body}");
        let lines = lex(&src);
        assert!(file_marker(&lines, MARKER));
        scan(&lines, "x.rs")
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect()
    }

    #[test]
    fn independent_sections_are_fine() {
        let f = findings_in(
            "fn f(&self) {\n    {\n        let g = self.a.lock();\n        *g += 1;\n    }\n    let h = self.b.lock();\n    drop(h);\n    self.file.sync_all();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn nested_lock_is_flagged() {
        let f = findings_in(
            "fn f(&self) {\n    let g = self.a.lock();\n    let h = self.b.lock();\n}\n",
        );
        assert_eq!(f, vec![(6, "nested-lock")]);
    }

    #[test]
    fn blocking_under_guard_is_flagged() {
        let f = findings_in(
            "fn f(&self) {\n    let g = self.a.lock();\n    self.file.sync_all();\n}\n",
        );
        assert_eq!(f, vec![(6, "blocking-under-lock")]);
    }

    #[test]
    fn transient_guard_chains_flag_their_own_io() {
        // `self.wal.lock().sync()` — the fsync runs with the transient
        // guard live.
        let f = findings_in("fn f(&self) {\n    self.wal.lock().sync();\n}\n");
        assert_eq!(f, vec![(5, "blocking-under-lock")]);
    }

    #[test]
    fn transient_guard_dies_at_statement_end() {
        let f = findings_in(
            "fn f(&self) {\n    self.reg.lock().push(1);\n    self.file.sync_all();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn drop_releases_early() {
        let f = findings_in(
            "fn f(&self) {\n    let g = self.a.lock();\n    drop(g);\n    self.file.sync_all();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scope_exit_releases() {
        let f = findings_in(
            "fn f(&self) {\n    if x {\n        let g = self.a.lock();\n    }\n    self.b.lock();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_ok_discharges() {
        let f = findings_in(
            "fn f(&self) {\n    let g = self.a.lock();\n    // LOCK-OK: group-commit by design.\n    self.file.sync_all();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn rwlock_read_write_zero_arg_are_acquisitions() {
        let f = findings_in(
            "fn f(&self) {\n    let g = self.map.read();\n    let h = self.map.write();\n}\n",
        );
        assert_eq!(f, vec![(6, "nested-lock")]);
        // But buffered I/O forms are not acquisitions:
        let f2 = findings_in("fn f(&self) {\n    self.sock.read(&mut buf);\n}\n");
        assert!(f2.is_empty(), "{f2:?}");
    }

    #[test]
    fn condvar_wait_is_not_flagged() {
        let f = findings_in(
            "fn f(&self) {\n    let mut g = self.gate.lock();\n    g = self.cv.wait(g);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = findings_in(
            "#[cfg(test)]\nmod tests {\n    fn t(&self) {\n        let g = a.lock();\n        let h = b.lock();\n    }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn tcp_connect_under_lock_is_flagged() {
        let f = findings_in(
            "fn f(&self) {\n    let g = self.a.lock();\n    let s = TcpStream::connect(addr);\n}\n",
        );
        // Both the TcpStream:: call and `connect(` fire; one finding each.
        assert!(f.iter().all(|(_, r)| *r == "blocking-under-lock"));
        assert!(!f.is_empty());
    }
}
