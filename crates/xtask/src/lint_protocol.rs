//! The `protocol` pass: the wire-protocol docs cannot drift from the code.
//!
//! `docs/PROTOCOL.md` carries a machine-checked **"Wire protocol
//! reference"** section whose grammar this pass parses:
//!
//! ```markdown
//! ## N. Wire protocol reference (machine-checked)
//! ### Request
//! - `Ingest` — prose...
//! ### ServiceReport
//! - `ingested_keys` — prose...
//! ```
//!
//! Each `### TypeName` group is cross-checked against the corresponding
//! Rust item — enum variants from `crates/serve/src/protocol.rs`
//! (`Request`, `QueryReq`, `Response`), public struct fields from
//! `crates/core/src/report.rs` (`ServiceReport`, `ShardReport`,
//! `RecoveryReport`, `PersistReport`) — in both directions: an
//! undocumented variant/field is `doc-missing`, a documented name the
//! code no longer has is `doc-stale`. As a weaker prose check, every
//! request/query op name must also appear somewhere in
//! `docs/service.md` (`service-doc`).
//!
//! The section also carries a **`### Version compatibility`** table
//! mapping protocol versions to the request ops they introduced:
//!
//! ```markdown
//! ### Version compatibility
//!
//! | version | status | ops |
//! |---|---|---|
//! | 1 | unsupported | `Ingest`, `Query`, ... |
//! | 2 | current | `Hello`, `SnapshotPage`, ... |
//! ```
//!
//! It is cross-checked against `pub const PROTO_VERSION` in both
//! directions: the single `current` row must carry the code's version
//! number (`version-table`), every `Request` variant must be attributed
//! to some version row (`version-missing`, anchored at the variant),
//! and every op a row lists must still exist in the code
//! (`version-stale`, anchored at the row).

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{find_word, lex, LexedLine};
use crate::report::Finding;

/// Enums in `serve::protocol` whose variants are wire op names.
const ENUMS: &[&str] = &["Request", "QueryReq", "Response"];

/// Structs in `core::report` whose public fields are STATS report keys.
const STRUCTS: &[&str] = &[
    "ServiceReport",
    "ShardReport",
    "RecoveryReport",
    "PersistReport",
    "MemberReport",
    "ClusterReport",
    "ReplReport",
];

/// The heading that opens the machine-checked section.
const SECTION: &str = "Wire protocol reference";

/// Which files one protocol check reads (parameterized for fixtures).
pub struct ProtocolPaths {
    /// The enum source (`serve::protocol`).
    pub protocol_rs: PathBuf,
    /// The report-struct source (`core::report`).
    pub report_rs: PathBuf,
    /// The markdown carrying the wire reference section.
    pub protocol_md: PathBuf,
    /// Optional prose doc that must mention every request op.
    pub service_md: Option<PathBuf>,
}

impl ProtocolPaths {
    /// The real workspace layout.
    pub fn workspace(root: &Path) -> Self {
        ProtocolPaths {
            protocol_rs: root.join("crates/serve/src/protocol.rs"),
            report_rs: root.join("crates/core/src/report.rs"),
            protocol_md: root.join("docs/PROTOCOL.md"),
            service_md: Some(root.join("docs/service.md")),
        }
    }
}

/// Run the protocol pass against the workspace layout.
pub fn pass(root: &Path) -> Vec<Finding> {
    check(root, &ProtocolPaths::workspace(root))
}

/// Run the protocol pass against explicit paths.
pub fn check(root: &Path, paths: &ProtocolPaths) -> Vec<Finding> {
    let mut findings = Vec::new();
    let rel = |p: &Path| p.strip_prefix(root).unwrap_or(p).display().to_string();

    let Some(protocol_src) = read(&paths.protocol_rs, &mut findings, root) else {
        return findings;
    };
    let Some(report_src) = read(&paths.report_rs, &mut findings, root) else {
        return findings;
    };
    let Some(md_src) = read(&paths.protocol_md, &mut findings, root) else {
        return findings;
    };

    let protocol_lines = lex(&protocol_src);
    let report_lines = lex(&report_src);

    // Gather what the code declares: (type, name, line, source-file).
    let mut code: Vec<(String, String, usize, String)> = Vec::new();
    for (src_lines, kinds, file, is_enum) in [
        (&protocol_lines, ENUMS, rel(&paths.protocol_rs), true),
        (&report_lines, STRUCTS, rel(&paths.report_rs), false),
    ] {
        for ty in kinds {
            match item_members(src_lines, ty, is_enum) {
                Some(members) => {
                    for (name, line) in members {
                        code.push((ty.to_string(), name, line, file.clone()));
                    }
                }
                None => findings.push(Finding {
                    pass: "protocol",
                    rule: "doc-stale",
                    file: file.clone(),
                    line: 0,
                    message: format!(
                        "expected `{}` `{ty}` not found — update the protocol \
                         pass target list in crates/xtask/src/lint_protocol.rs",
                        if is_enum { "enum" } else { "struct" }
                    ),
                }),
            }
        }
    }

    // Gather what the doc declares: (type, name, md line).
    let md_file = rel(&paths.protocol_md);
    let wire_doc = parse_wire_reference(&md_src);
    let (doc, documented_types) = (&wire_doc.entries, &wire_doc.types);
    if documented_types.is_empty() {
        findings.push(Finding {
            pass: "protocol",
            rule: "doc-missing",
            file: md_file,
            line: 0,
            message: format!(
                "no `## ... {SECTION}` section found; add the machine-checked \
                 wire reference (see docs/correctness.md)"
            ),
        });
        return findings;
    }

    // Code → doc: every variant/field must be documented.
    for (ty, name, line, file) in &code {
        if !doc.iter().any(|(t, n, _)| t == ty && n == name) {
            findings.push(Finding {
                pass: "protocol",
                rule: "doc-missing",
                file: file.clone(),
                line: *line,
                message: format!(
                    "`{ty}::{name}` is not documented under `### {ty}` in the \
                     {SECTION} section of {md_file}"
                ),
            });
        }
    }

    // Doc → code: every documented name must still exist.
    for (ty, name, md_line) in doc {
        let known_type = ENUMS.contains(&ty.as_str()) || STRUCTS.contains(&ty.as_str());
        if !known_type {
            findings.push(Finding {
                pass: "protocol",
                rule: "doc-stale",
                file: md_file.clone(),
                line: *md_line,
                message: format!(
                    "documented group `### {ty}` matches no checked enum/struct"
                ),
            });
            continue;
        }
        if !code.iter().any(|(t, n, _, _)| t == ty && n == name) {
            findings.push(Finding {
                pass: "protocol",
                rule: "doc-stale",
                file: md_file.clone(),
                line: *md_line,
                message: format!("documented `{ty}::{name}` no longer exists in the code"),
            });
        }
    }

    // Version compatibility: PROTO_VERSION and the version table cannot
    // drift from each other or from the Request op set.
    let proto_file = rel(&paths.protocol_rs);
    match (&wire_doc.version_table, proto_version(&protocol_lines)) {
        (None, _) => findings.push(Finding {
            pass: "protocol",
            rule: "version-table",
            file: md_file.clone(),
            line: 0,
            message: format!(
                "no `### {VERSION_HEADING}` table in the {SECTION} section; \
                 add one mapping protocol versions to the ops they introduced"
            ),
        }),
        (Some(_), None) => findings.push(Finding {
            pass: "protocol",
            rule: "version-table",
            file: proto_file.clone(),
            line: 0,
            message: format!(
                "a `### {VERSION_HEADING}` table is documented but the code \
                 declares no `pub const PROTO_VERSION`"
            ),
        }),
        (Some(table), Some((version, version_line))) => {
            let current: Vec<&VersionRow> =
                table.rows.iter().filter(|r| r.status == "current").collect();
            match current.as_slice() {
                [row] if row.version != version => findings.push(Finding {
                    pass: "protocol",
                    rule: "version-table",
                    file: md_file.clone(),
                    line: row.line,
                    message: format!(
                        "the `current` row declares version {} but the code's \
                         PROTO_VERSION is {version}",
                        row.version
                    ),
                }),
                [_] => {}
                _ => findings.push(Finding {
                    pass: "protocol",
                    rule: "version-table",
                    file: md_file.clone(),
                    line: table.line,
                    message: format!(
                        "the `### {VERSION_HEADING}` table must have exactly one \
                         `current` row (found {}); code PROTO_VERSION is {version} \
                         (declared at line {version_line})",
                        current.len()
                    ),
                }),
            }
            // Code → table: every request op belongs to some version.
            for (ty, name, line, file) in &code {
                if ty != "Request" {
                    continue;
                }
                if !table.rows.iter().any(|r| r.ops.iter().any(|op| op == name)) {
                    findings.push(Finding {
                        pass: "protocol",
                        rule: "version-missing",
                        file: file.clone(),
                        line: *line,
                        message: format!(
                            "`Request::{name}` appears in no row of the \
                             `### {VERSION_HEADING}` table in {md_file}"
                        ),
                    });
                }
            }
            // Table → code: every listed op must still be a request op.
            for row in &table.rows {
                for op in &row.ops {
                    if !code.iter().any(|(t, n, _, _)| t == "Request" && n == op) {
                        findings.push(Finding {
                            pass: "protocol",
                            rule: "version-stale",
                            file: md_file.clone(),
                            line: row.line,
                            message: format!(
                                "version {} attributes op `{op}`, which is not a \
                                 `Request` variant",
                                row.version
                            ),
                        });
                    }
                }
            }
        }
    }

    // Prose containment: every request/query op appears in service.md.
    if let Some(service_md) = &paths.service_md {
        if let Some(service_src) = read(service_md, &mut findings, root) {
            for (ty, name, line, file) in &code {
                let is_op = ty == "Request" || ty == "QueryReq";
                if is_op && !service_src.contains(name) {
                    findings.push(Finding {
                        pass: "protocol",
                        rule: "service-doc",
                        file: file.clone(),
                        line: *line,
                        message: format!(
                            "op `{ty}::{name}` is never mentioned in {}",
                            rel(service_md)
                        ),
                    });
                }
            }
        }
    }

    findings
}

fn read(path: &Path, findings: &mut Vec<Finding>, root: &Path) -> Option<String> {
    match fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            findings.push(Finding {
                pass: "protocol",
                rule: "doc-missing",
                file: path.strip_prefix(root).unwrap_or(path).display().to_string(),
                line: 0,
                message: format!("cannot read: {e}"),
            });
            None
        }
    }
}

/// Variants of `pub enum <name>` / public fields of `pub struct <name>`,
/// with their 1-based lines. `None` if the item is missing.
fn item_members(lines: &[LexedLine], name: &str, is_enum: bool) -> Option<Vec<(String, usize)>> {
    let keyword = if is_enum { "enum" } else { "struct" };
    let decl = lines.iter().position(|l| {
        find_word(&l.code, keyword, 0).is_some() && find_word(&l.code, name, 0).is_some()
    })?;
    let mut members = Vec::new();
    let mut depth: i64 = 0;
    let mut opened = false;
    for (j, line) in lines.iter().enumerate().skip(decl) {
        let depth_at_start = depth;
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth_at_start == 1 {
            if let Some(member) = member_on(&line.code, is_enum) {
                members.push((member, j + 1));
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    Some(members)
}

/// The member an item-body line declares, if any.
fn member_on(code: &str, is_enum: bool) -> Option<String> {
    let trimmed = code.trim();
    if is_enum {
        // A variant line starts with an uppercase identifier.
        let first = trimmed.chars().next()?;
        if !first.is_ascii_uppercase() {
            return None;
        }
        let name: String = trimmed
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        (!name.is_empty()).then_some(name)
    } else {
        // A public field line: `pub <name>: <type>,`.
        let rest = trimmed.strip_prefix("pub ")?;
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        (!name.is_empty() && rest[name.len()..].trim_start().starts_with(':')).then_some(name)
    }
}

/// One row of the `### Version compatibility` table.
struct VersionRow {
    /// The literal version cell (digits expected).
    version: String,
    /// The status cell, e.g. `current`, `unsupported`, `frozen`.
    status: String,
    /// Op names the row attributes to this version (backticks stripped).
    ops: Vec<String>,
    /// 1-based markdown line of the row.
    line: usize,
}

/// The parsed `### Version compatibility` subsection.
struct VersionTable {
    /// 1-based markdown line of the heading.
    line: usize,
    /// Data rows (header and separator rows excluded).
    rows: Vec<VersionRow>,
}

/// Everything the wire reference section of the markdown declares.
struct WireDoc {
    /// `(type, name, line)` triples from the `### TypeName` groups.
    entries: Vec<(String, String, usize)>,
    /// The `### TypeName` group headings seen, in order.
    types: Vec<String>,
    /// The version compatibility table, if present.
    version_table: Option<VersionTable>,
}

/// The subsection heading that opens the version table.
const VERSION_HEADING: &str = "Version compatibility";

/// Parse the wire reference section: type groups plus the version table.
fn parse_wire_reference(md: &str) -> WireDoc {
    let mut doc = WireDoc {
        entries: Vec::new(),
        types: Vec::new(),
        version_table: None,
    };
    let mut in_section = false;
    let mut group: Option<String> = None;
    let mut in_version_table = false;
    for (i, line) in md.lines().enumerate() {
        if line.starts_with("## ") {
            in_section = line.contains(SECTION);
            group = None;
            in_version_table = false;
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some(heading) = line.strip_prefix("### ") {
            group = None;
            in_version_table = heading.trim().starts_with(VERSION_HEADING);
            if in_version_table {
                doc.version_table = Some(VersionTable {
                    line: i + 1,
                    rows: Vec::new(),
                });
                continue;
            }
            let ty: String = heading
                .trim()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !ty.is_empty() {
                doc.types.push(ty.clone());
                group = Some(ty);
            }
            continue;
        }
        if in_version_table {
            if let (Some(table), Some(row)) = (&mut doc.version_table, version_row(line, i + 1)) {
                table.rows.push(row);
            }
            continue;
        }
        if let (Some(ty), Some(rest)) = (&group, line.trim_start().strip_prefix("- `")) {
            if let Some(end) = rest.find('`') {
                doc.entries.push((ty.clone(), rest[..end].to_string(), i + 1));
            }
        }
    }
    doc
}

/// Parse one version-table data row; `None` for non-table, header, and
/// separator lines.
fn version_row(line: &str, line_no: usize) -> Option<VersionRow> {
    let trimmed = line.trim_start();
    if !trimmed.starts_with('|') {
        return None;
    }
    let cells: Vec<&str> = trimmed.split('|').map(str::trim).collect();
    // `| a | b | c |` splits into ["", a, b, c, ""] (tail cells ignored).
    if cells.len() < 5 {
        return None;
    }
    let version = cells[1].to_string();
    if version.is_empty()
        || version == "version"
        || version.chars().all(|c| c == '-' || c == ':')
    {
        return None;
    }
    let ops = cells[3]
        .split(',')
        .map(|op| op.trim().trim_matches('`').to_string())
        .filter(|op| !op.is_empty())
        .collect();
    Some(VersionRow {
        version,
        status: cells[2].to_string(),
        ops,
        line: line_no,
    })
}

/// The value of `pub const PROTO_VERSION` with its 1-based line.
fn proto_version(lines: &[LexedLine]) -> Option<(String, usize)> {
    for (i, line) in lines.iter().enumerate() {
        if find_word(&line.code, "PROTO_VERSION", 0).is_none()
            || find_word(&line.code, "const", 0).is_none()
        {
            continue;
        }
        let rest = line.code.split('=').nth(1)?;
        let digits: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '_')
            .collect();
        if !digits.is_empty() {
            return Some((digits.replace('_', ""), i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const CODE: &str = "pub enum Request {\n    Ingest(IngestReq),\n    Stats,\n}\n";

    #[test]
    fn enum_variants_are_extracted() {
        let lines = lex(CODE);
        let members = item_members(&lines, "Request", true).unwrap();
        let names: Vec<&str> = members.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Ingest", "Stats"]);
    }

    #[test]
    fn struct_fields_are_extracted() {
        let src = "pub struct ServiceReport {\n    /// Doc.\n    pub ingested_keys: u64,\n    pub shards: Vec<ShardReport>,\n    hidden: u8,\n}\n";
        let lines = lex(src);
        let members = item_members(&lines, "ServiceReport", false).unwrap();
        let names: Vec<&str> = members.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["ingested_keys", "shards"]);
    }

    #[test]
    fn wire_reference_parses_groups_and_entries() {
        let md = "# Title\n\n## 1. Other\n- `NotParsed`\n\n## 2. Wire protocol reference (machine-checked)\n\n### Request\n\n- `Ingest` — enqueue keys.\n- `Stats` — report.\n\n### ServiceReport\n\n- `ingested_keys` — total.\n\n## 3. After\n- `AlsoNotParsed`\n";
        let doc = parse_wire_reference(md);
        assert_eq!(doc.types, vec!["Request", "ServiceReport"]);
        let names: Vec<(&str, &str)> = doc
            .entries
            .iter()
            .map(|(t, n, _)| (t.as_str(), n.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("Request", "Ingest"),
                ("Request", "Stats"),
                ("ServiceReport", "ingested_keys")
            ]
        );
        assert!(doc.version_table.is_none());
    }

    #[test]
    fn version_table_rows_are_parsed_and_do_not_leak_into_groups() {
        let md = "## 1. Wire protocol reference (machine-checked)\n\n### Request\n\n- `Ingest` — enqueue keys.\n\n### Version compatibility\n\n| version | status | ops |\n|---|---|---|\n| 1 | unsupported | `Ingest`, `Stats` |\n| 2 | current | `Hello` |\n";
        let doc = parse_wire_reference(md);
        assert_eq!(doc.types, vec!["Request"], "the table is not a type group");
        let table = doc.version_table.expect("table parsed");
        assert_eq!(table.rows.len(), 2, "header and separator are skipped");
        assert_eq!(table.rows[0].version, "1");
        assert_eq!(table.rows[0].status, "unsupported");
        assert_eq!(table.rows[0].ops, vec!["Ingest", "Stats"]);
        assert_eq!(table.rows[1].version, "2");
        assert_eq!(table.rows[1].status, "current");
        assert_eq!(table.rows[1].ops, vec!["Hello"]);
    }

    #[test]
    fn proto_version_const_is_extracted() {
        let src = "/// Doc.\npub const MIN_PROTO_VERSION: u32 = 1;\n/// Doc.\npub const PROTO_VERSION: u32 = 2;\n";
        let lines = lex(src);
        let (version, line) = proto_version(&lines).unwrap();
        assert_eq!(version, "2");
        assert_eq!(line, 4, "MIN_PROTO_VERSION must not match by substring");
    }

    #[test]
    fn nested_enum_payload_braces_do_not_leak_variants() {
        let src = "pub enum Response {\n    Answer {\n        entries: Vec<Entry>,\n        total: u64,\n    },\n    Error(String),\n}\n";
        let lines = lex(src);
        let members = item_members(&lines, "Response", true).unwrap();
        let names: Vec<&str> = members.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Answer", "Error"]);
    }
}
