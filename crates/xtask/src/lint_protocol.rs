//! The `protocol` pass: the wire-protocol docs cannot drift from the code.
//!
//! `docs/PROTOCOL.md` carries a machine-checked **"Wire protocol
//! reference"** section whose grammar this pass parses:
//!
//! ```markdown
//! ## N. Wire protocol reference (machine-checked)
//! ### Request
//! - `Ingest` — prose...
//! ### ServiceReport
//! - `ingested_keys` — prose...
//! ```
//!
//! Each `### TypeName` group is cross-checked against the corresponding
//! Rust item — enum variants from `crates/serve/src/protocol.rs`
//! (`Request`, `QueryReq`, `Response`), public struct fields from
//! `crates/core/src/report.rs` (`ServiceReport`, `ShardReport`,
//! `RecoveryReport`, `PersistReport`) — in both directions: an
//! undocumented variant/field is `doc-missing`, a documented name the
//! code no longer has is `doc-stale`. As a weaker prose check, every
//! request/query op name must also appear somewhere in
//! `docs/service.md` (`service-doc`).

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{find_word, lex, LexedLine};
use crate::report::Finding;

/// Enums in `serve::protocol` whose variants are wire op names.
const ENUMS: &[&str] = &["Request", "QueryReq", "Response"];

/// Structs in `core::report` whose public fields are STATS report keys.
const STRUCTS: &[&str] = &["ServiceReport", "ShardReport", "RecoveryReport", "PersistReport"];

/// The heading that opens the machine-checked section.
const SECTION: &str = "Wire protocol reference";

/// Which files one protocol check reads (parameterized for fixtures).
pub struct ProtocolPaths {
    /// The enum source (`serve::protocol`).
    pub protocol_rs: PathBuf,
    /// The report-struct source (`core::report`).
    pub report_rs: PathBuf,
    /// The markdown carrying the wire reference section.
    pub protocol_md: PathBuf,
    /// Optional prose doc that must mention every request op.
    pub service_md: Option<PathBuf>,
}

impl ProtocolPaths {
    /// The real workspace layout.
    pub fn workspace(root: &Path) -> Self {
        ProtocolPaths {
            protocol_rs: root.join("crates/serve/src/protocol.rs"),
            report_rs: root.join("crates/core/src/report.rs"),
            protocol_md: root.join("docs/PROTOCOL.md"),
            service_md: Some(root.join("docs/service.md")),
        }
    }
}

/// Run the protocol pass against the workspace layout.
pub fn pass(root: &Path) -> Vec<Finding> {
    check(root, &ProtocolPaths::workspace(root))
}

/// Run the protocol pass against explicit paths.
pub fn check(root: &Path, paths: &ProtocolPaths) -> Vec<Finding> {
    let mut findings = Vec::new();
    let rel = |p: &Path| p.strip_prefix(root).unwrap_or(p).display().to_string();

    let Some(protocol_src) = read(&paths.protocol_rs, &mut findings, root) else {
        return findings;
    };
    let Some(report_src) = read(&paths.report_rs, &mut findings, root) else {
        return findings;
    };
    let Some(md_src) = read(&paths.protocol_md, &mut findings, root) else {
        return findings;
    };

    let protocol_lines = lex(&protocol_src);
    let report_lines = lex(&report_src);

    // Gather what the code declares: (type, name, line, source-file).
    let mut code: Vec<(String, String, usize, String)> = Vec::new();
    for (src_lines, kinds, file, is_enum) in [
        (&protocol_lines, ENUMS, rel(&paths.protocol_rs), true),
        (&report_lines, STRUCTS, rel(&paths.report_rs), false),
    ] {
        for ty in kinds {
            match item_members(src_lines, ty, is_enum) {
                Some(members) => {
                    for (name, line) in members {
                        code.push((ty.to_string(), name, line, file.clone()));
                    }
                }
                None => findings.push(Finding {
                    pass: "protocol",
                    rule: "doc-stale",
                    file: file.clone(),
                    line: 0,
                    message: format!(
                        "expected `{}` `{ty}` not found — update the protocol \
                         pass target list in crates/xtask/src/lint_protocol.rs",
                        if is_enum { "enum" } else { "struct" }
                    ),
                }),
            }
        }
    }

    // Gather what the doc declares: (type, name, md line).
    let md_file = rel(&paths.protocol_md);
    let (doc, documented_types) = parse_wire_reference(&md_src);
    if documented_types.is_empty() {
        findings.push(Finding {
            pass: "protocol",
            rule: "doc-missing",
            file: md_file,
            line: 0,
            message: format!(
                "no `## ... {SECTION}` section found; add the machine-checked \
                 wire reference (see docs/correctness.md)"
            ),
        });
        return findings;
    }

    // Code → doc: every variant/field must be documented.
    for (ty, name, line, file) in &code {
        if !doc.iter().any(|(t, n, _)| t == ty && n == name) {
            findings.push(Finding {
                pass: "protocol",
                rule: "doc-missing",
                file: file.clone(),
                line: *line,
                message: format!(
                    "`{ty}::{name}` is not documented under `### {ty}` in the \
                     {SECTION} section of {md_file}"
                ),
            });
        }
    }

    // Doc → code: every documented name must still exist.
    for (ty, name, md_line) in &doc {
        let known_type = ENUMS.contains(&ty.as_str()) || STRUCTS.contains(&ty.as_str());
        if !known_type {
            findings.push(Finding {
                pass: "protocol",
                rule: "doc-stale",
                file: md_file.clone(),
                line: *md_line,
                message: format!(
                    "documented group `### {ty}` matches no checked enum/struct"
                ),
            });
            continue;
        }
        if !code.iter().any(|(t, n, _, _)| t == ty && n == name) {
            findings.push(Finding {
                pass: "protocol",
                rule: "doc-stale",
                file: md_file.clone(),
                line: *md_line,
                message: format!("documented `{ty}::{name}` no longer exists in the code"),
            });
        }
    }

    // Prose containment: every request/query op appears in service.md.
    if let Some(service_md) = &paths.service_md {
        if let Some(service_src) = read(service_md, &mut findings, root) {
            for (ty, name, line, file) in &code {
                let is_op = ty == "Request" || ty == "QueryReq";
                if is_op && !service_src.contains(name) {
                    findings.push(Finding {
                        pass: "protocol",
                        rule: "service-doc",
                        file: file.clone(),
                        line: *line,
                        message: format!(
                            "op `{ty}::{name}` is never mentioned in {}",
                            rel(service_md)
                        ),
                    });
                }
            }
        }
    }

    findings
}

fn read(path: &Path, findings: &mut Vec<Finding>, root: &Path) -> Option<String> {
    match fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            findings.push(Finding {
                pass: "protocol",
                rule: "doc-missing",
                file: path.strip_prefix(root).unwrap_or(path).display().to_string(),
                line: 0,
                message: format!("cannot read: {e}"),
            });
            None
        }
    }
}

/// Variants of `pub enum <name>` / public fields of `pub struct <name>`,
/// with their 1-based lines. `None` if the item is missing.
fn item_members(lines: &[LexedLine], name: &str, is_enum: bool) -> Option<Vec<(String, usize)>> {
    let keyword = if is_enum { "enum" } else { "struct" };
    let decl = lines.iter().position(|l| {
        find_word(&l.code, keyword, 0).is_some() && find_word(&l.code, name, 0).is_some()
    })?;
    let mut members = Vec::new();
    let mut depth: i64 = 0;
    let mut opened = false;
    for (j, line) in lines.iter().enumerate().skip(decl) {
        let depth_at_start = depth;
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth_at_start == 1 {
            if let Some(member) = member_on(&line.code, is_enum) {
                members.push((member, j + 1));
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    Some(members)
}

/// The member an item-body line declares, if any.
fn member_on(code: &str, is_enum: bool) -> Option<String> {
    let trimmed = code.trim();
    if is_enum {
        // A variant line starts with an uppercase identifier.
        let first = trimmed.chars().next()?;
        if !first.is_ascii_uppercase() {
            return None;
        }
        let name: String = trimmed
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        (!name.is_empty()).then_some(name)
    } else {
        // A public field line: `pub <name>: <type>,`.
        let rest = trimmed.strip_prefix("pub ")?;
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        (!name.is_empty() && rest[name.len()..].trim_start().starts_with(':')).then_some(name)
    }
}

/// Parse the wire reference section: `(type, name, line)` triples plus the
/// set of `###` group headings seen.
fn parse_wire_reference(md: &str) -> (Vec<(String, String, usize)>, Vec<String>) {
    let mut entries = Vec::new();
    let mut types = Vec::new();
    let mut in_section = false;
    let mut group: Option<String> = None;
    for (i, line) in md.lines().enumerate() {
        if line.starts_with("## ") {
            in_section = line.contains(SECTION);
            group = None;
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some(heading) = line.strip_prefix("### ") {
            let ty: String = heading
                .trim()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !ty.is_empty() {
                types.push(ty.clone());
                group = Some(ty);
            }
            continue;
        }
        if let (Some(ty), Some(rest)) = (&group, line.trim_start().strip_prefix("- `")) {
            if let Some(end) = rest.find('`') {
                entries.push((ty.clone(), rest[..end].to_string(), i + 1));
            }
        }
    }
    (entries, types)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CODE: &str = "pub enum Request {\n    Ingest(IngestReq),\n    Stats,\n}\n";

    #[test]
    fn enum_variants_are_extracted() {
        let lines = lex(CODE);
        let members = item_members(&lines, "Request", true).unwrap();
        let names: Vec<&str> = members.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Ingest", "Stats"]);
    }

    #[test]
    fn struct_fields_are_extracted() {
        let src = "pub struct ServiceReport {\n    /// Doc.\n    pub ingested_keys: u64,\n    pub shards: Vec<ShardReport>,\n    hidden: u8,\n}\n";
        let lines = lex(src);
        let members = item_members(&lines, "ServiceReport", false).unwrap();
        let names: Vec<&str> = members.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["ingested_keys", "shards"]);
    }

    #[test]
    fn wire_reference_parses_groups_and_entries() {
        let md = "# Title\n\n## 1. Other\n- `NotParsed`\n\n## 2. Wire protocol reference (machine-checked)\n\n### Request\n\n- `Ingest` — enqueue keys.\n- `Stats` — report.\n\n### ServiceReport\n\n- `ingested_keys` — total.\n\n## 3. After\n- `AlsoNotParsed`\n";
        let (entries, types) = parse_wire_reference(md);
        assert_eq!(types, vec!["Request", "ServiceReport"]);
        let names: Vec<(&str, &str)> = entries
            .iter()
            .map(|(t, n, _)| (t.as_str(), n.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("Request", "Ingest"),
                ("Request", "Stats"),
                ("ServiceReport", "ingested_keys")
            ]
        );
    }

    #[test]
    fn nested_enum_payload_braces_do_not_leak_variants() {
        let src = "pub enum Response {\n    Answer {\n        entries: Vec<Entry>,\n        total: u64,\n    },\n    Error(String),\n}\n";
        let lines = lex(src);
        let members = item_members(&lines, "Response", true).unwrap();
        let names: Vec<&str> = members.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Answer", "Error"]);
    }
}
