//! Fixture: panic-capable constructs in a total-decode module. Each
//! `EXPECT` marker names the finding the analyzer must produce on that
//! exact line — and nothing else in this file may be flagged.
//!
//! AUDIT: total

/// Unjustified panic-capable constructs, one per rule.
pub fn bad(v: &[u8], o: Option<u8>) -> u8 {
    let a = o.unwrap(); //~ EXPECT: totality unwrap
    let b = o.expect("present"); //~ EXPECT: totality expect
    if v.is_empty() {
        panic!("empty"); //~ EXPECT: totality panic-macro
    }
    a + b + v[0] //~ EXPECT: totality index
}

/// Justified: the adjacent proof discharges the finding.
pub fn justified(v: &[u8]) -> u8 {
    // PANIC-OK: fixture — the caller guarantees v is non-empty.
    v[0]
}

/// Total code in an annotated module is clean.
pub fn total(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    /// Test code is exempt even in annotated modules.
    #[test]
    fn tests_may_panic() {
        assert_eq!(super::total(&[7]).unwrap(), 7);
    }
}
