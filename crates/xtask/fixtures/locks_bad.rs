//! Fixture: lock-discipline violations. Each `EXPECT` marker names the
//! finding the analyzer must produce on that exact line — and nothing
//! else in this file may be flagged.
//!
//! AUDIT: locks

/// Nested acquisition while a guard is live.
pub fn nested(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let g = a.lock();
    let h = b.lock(); //~ EXPECT: locks nested-lock
    *g + *h
}

/// Blocking I/O while a named guard is live.
pub fn blocking(m: &Mutex<File>) {
    let f = m.lock();
    f.sync_all(); //~ EXPECT: locks blocking-under-lock
}

/// A transient guard in a call chain still covers the blocking call.
pub fn transient(m: &Mutex<File>) {
    m.lock().sync_all(); //~ EXPECT: locks blocking-under-lock
}

/// RwLock read guards count as live locks too.
pub fn read_guard(l: &RwLock<u32>, m: &Mutex<u32>) -> u32 {
    let g = l.read();
    let h = m.lock(); //~ EXPECT: locks nested-lock
    *g + *h
}

/// Dropping the guard before the I/O is clean.
pub fn sequenced(a: &Mutex<u32>, f: &File) {
    let g = a.lock();
    drop(g);
    let _ = f.sync_all();
}

/// A guard confined to an inner scope is dead outside it.
pub fn scoped(a: &Mutex<u32>, f: &File) {
    {
        let _g = a.lock();
    }
    let _ = f.sync_all();
}

/// Justified: the adjacent proof discharges the finding.
pub fn justified(m: &Mutex<File>) {
    let f = m.lock();
    // LOCK-OK: fixture — the hold is bounded and single-purpose.
    f.sync_all();
}
