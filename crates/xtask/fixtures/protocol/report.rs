//! Fixture: report structs with one undocumented field.

/// Service-level counters.
pub struct ServiceReport {
    /// Documented in the fixture doc.
    pub queries: u64,
    /// Absent from the fixture doc.
    pub hidden_metric: u64, //~ EXPECT: protocol doc-missing
    /// Private fields are not part of the wire surface.
    internal: u64,
}

/// Per-shard counters.
pub struct ShardReport {
    /// Documented in the fixture doc.
    pub shard: usize,
}

/// Recovery accounting.
pub struct RecoveryReport {
    /// Documented in the fixture doc.
    pub base_items: u64,
}

/// Durability counters.
pub struct PersistReport {
    /// Documented in the fixture doc.
    pub checkpoints: u64,
}

/// Per-member cluster counters.
pub struct MemberReport {
    /// Documented in the fixture doc.
    pub member: usize,
}

/// Cluster-wide counters.
pub struct ClusterReport {
    /// Documented in the fixture doc.
    pub staleness: u64,
}

/// Replication counters.
pub struct ReplReport {
    /// Documented in the fixture doc.
    pub acked_seq: u64,
    /// Absent from the fixture doc.
    pub ghost_tail: u64, //~ EXPECT: protocol doc-missing
}
