//! Fixture: wire enums with one undocumented variant.

/// Requests.
pub enum Request {
    /// Documented in the fixture doc.
    Ingest,
    /// Documented in the fixture doc.
    Stats,
    /// Absent from the fixture doc.
    Ghost, //~ EXPECT: protocol doc-missing
}

/// Queries.
pub enum QueryReq {
    /// Documented in the fixture doc.
    Point,
}

/// Responses.
pub enum Response {
    /// Documented in the fixture doc.
    Answer,
    /// Documented in the fixture doc.
    Error,
}
