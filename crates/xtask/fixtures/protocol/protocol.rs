//! Fixture: wire enums with one undocumented variant, plus a versioned
//! protocol whose compatibility table has drifted.

/// The version the fixture code speaks (the fixture doc's `current`
/// row deliberately disagrees).
pub const PROTO_VERSION: u32 = 2;

/// Requests.
pub enum Request {
    /// Documented in the fixture doc.
    Ingest,
    /// Documented in the fixture doc.
    Stats,
    /// Absent from the fixture doc.
    Ghost, //~ EXPECT: protocol doc-missing
    /// Documented, but attributed to no version row.
    Probe, //~ EXPECT: protocol version-missing
}

/// Queries.
pub enum QueryReq {
    /// Documented in the fixture doc.
    Point,
}

/// Responses.
pub enum Response {
    /// Documented in the fixture doc.
    Answer,
    /// Documented in the fixture doc.
    Error,
}
