//! Fixture: unjustified unsafe sites. Each `EXPECT` marker names the
//! finding the analyzer must produce on that exact line — and nothing
//! else in this file may be flagged.

/// No SAFETY comment anywhere near.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p } //~ EXPECT: unsafe unsafe-block
}

/// An unsafe fn whose docs never state its contract.
pub unsafe fn raw(p: *const u8) -> u8 { //~ EXPECT: unsafe unsafe-fn
    *p
}

/// Justified block.
pub fn peek_ok(p: *const u8) -> u8 {
    // SAFETY: fixture — p is valid by the caller's contract.
    unsafe { *p }
}

/// Read one byte.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn raw_ok(p: *const u8) -> u8 {
    *p
}
