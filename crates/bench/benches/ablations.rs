//! Ablation microbenchmarks for the design choices called out in
//! DESIGN.md: epoch-pin batching, the neighbour scan, adaptive scheduling,
//! serial vs hierarchical merge, the request queue, the delegation hash
//! table, and the zipf samplers.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::merge::merge_snapshots;
use cots_core::report::WorkTally;
use cots_core::{ConcurrentCounter, CotsConfig, FrequencyCounter, QueryableSummary, SummaryConfig};
use cots_datagen::{AliasTable, StreamSpec, Zipf};
use cots_naive::MergeStrategy;
use cots_sequential::SpaceSaving;

const N: usize = 200_000;

fn stream(alpha: f64) -> Vec<u64> {
    StreamSpec::zipf(N, 10_000, alpha, 42).generate()
}

/// Epoch-pin batching: delegate() per element vs delegate_batch().
fn ablate_batch(c: &mut Criterion) {
    let data = stream(2.0);
    let mut g = c.benchmark_group("ablate_batch");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for &batch in &[1usize, 64, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let e = CotsEngine::<u64>::new(CotsConfig::for_capacity(1000).unwrap()).unwrap();
                for chunk in data.chunks(batch) {
                    e.delegate_batch(chunk);
                }
                e.finalize();
                e.processed()
            });
        });
    }
    g.finish();
}

/// Neighbour scan (§5.2.3) on/off under 4 threads.
fn ablate_neighbor_scan(c: &mut Criterion) {
    let data = stream(2.5);
    let mut g = c.benchmark_group("ablate_neighbor_scan");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for &scan in &[true, false] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if scan { "scan" } else { "no-scan" }),
            &scan,
            |b, &scan| {
                b.iter(|| {
                    let mut e =
                        CotsEngine::<u64>::new(CotsConfig::for_capacity(1000).unwrap()).unwrap();
                    e.set_scan_neighbors(scan);
                    let e = Arc::new(e);
                    cots::run(
                        &e,
                        &data,
                        RuntimeOptions {
                            threads: 4,
                            batch: 2048,
                            adaptive: false,
                        },
                    )
                    .unwrap()
                    .elements
                });
            },
        );
    }
    g.finish();
}

/// Adaptive σ/ρ scheduling on/off under 16 threads.
fn ablate_adaptive(c: &mut Criterion) {
    let data = stream(2.5);
    let mut g = c.benchmark_group("ablate_adaptive");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for &adaptive in &[false, true] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if adaptive { "adaptive" } else { "fixed" }),
            &adaptive,
            |b, &adaptive| {
                b.iter(|| {
                    let config = if adaptive {
                        CotsConfig::for_capacity(1000)
                            .unwrap()
                            .with_adaptive(256, 32)
                    } else {
                        CotsConfig::for_capacity(1000).unwrap()
                    };
                    let e = Arc::new(CotsEngine::<u64>::new(config).unwrap());
                    cots::run(
                        &e,
                        &data,
                        RuntimeOptions {
                            threads: 16,
                            batch: 1024,
                            adaptive,
                        },
                    )
                    .unwrap()
                    .elements
                });
            },
        );
    }
    g.finish();
}

/// Serial vs hierarchical merge of 8 local summaries.
fn ablate_merge(c: &mut Criterion) {
    let data = stream(2.0);
    let mut g = c.benchmark_group("ablate_merge");
    g.sample_size(10);
    for (name, strategy) in [
        ("serial", MergeStrategy::Serial),
        ("hierarchical", MergeStrategy::Hierarchical),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let engine = cots_naive::IndependentSpaceSaving {
                    config: SummaryConfig::with_capacity(1000).unwrap(),
                    strategy,
                    merge_every: Some(20_000),
                };
                engine.run(&data, 8, false).unwrap().merges
            });
        });
    }
    // The merge primitive itself, over 8 pre-built snapshots.
    let snapshots: Vec<_> = (0..8u64)
        .map(|seed| {
            let mut ss = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(1000).unwrap());
            ss.process_slice(&StreamSpec::zipf(50_000, 5_000, 2.0, seed).generate());
            ss.snapshot()
        })
        .collect();
    g.bench_function("merge_snapshots_8x1000", |b| {
        b.iter(|| merge_snapshots(&snapshots, 1000).len());
    });
    g.finish();
}

/// Request-queue choice: lock-free SegQueue vs a mutexed VecDeque.
fn ablate_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_queue");
    g.throughput(Throughput::Elements(100_000));
    g.sample_size(10);
    g.bench_function("segqueue", |b| {
        b.iter(|| {
            let q = crossbeam::queue::SegQueue::new();
            for i in 0..100_000u64 {
                q.push(i);
            }
            let mut sum = 0u64;
            while let Some(v) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        });
    });
    g.bench_function("mutex_vecdeque", |b| {
        b.iter(|| {
            let q = Mutex::new(VecDeque::new());
            for i in 0..100_000u64 {
                q.lock().push_back(i);
            }
            let mut sum = 0u64;
            while let Some(v) = q.lock().pop_front() {
                sum = sum.wrapping_add(v);
            }
            sum
        });
    });
    g.finish();
}

/// Delegation hash table vs a mutexed std HashMap (single-thread probe
/// cost; the concurrency benefits are covered by the figure experiments).
fn ablate_hash(c: &mut Criterion) {
    let data = stream(1.5);
    let mut g = c.benchmark_group("ablate_hash");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("cots_table", |b| {
        b.iter(|| {
            let table = cots::hashtable::HashTable::<u64>::new(14, Arc::new(WorkTally::new()));
            let guard = crossbeam::epoch::pin();
            let mut hits = 0u64;
            for &k in &data {
                let n = table.lookup_or_insert(k, &guard);
                // SAFETY: returned under the live `guard` above; nothing is
                // reclaimed while that pin is held.
                hits = hits.wrapping_add(unsafe { n.deref() }.key);
            }
            hits
        });
    });
    g.bench_function("mutex_hashmap", |b| {
        b.iter(|| {
            let table: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::with_capacity(1 << 14));
            let mut hits = 0u64;
            for &k in &data {
                let mut t = table.lock();
                let v = t.entry(k).or_insert(k);
                hits = hits.wrapping_add(*v);
            }
            hits
        });
    });
    g.finish();
}

/// Zipf sampler: exact inverse-CDF vs alias method.
fn zipf_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf_gen");
    g.throughput(Throughput::Elements(100_000));
    g.sample_size(10);
    let n = 100_000;
    let alpha = 2.0;
    g.bench_function("exact_cdf", |b| {
        let z = Zipf::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            acc
        });
    });
    g.bench_function("alias", |b| {
        let a = AliasTable::zipf(n, alpha);
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(a.sample_rank(&mut rng));
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    ablate_batch,
    ablate_neighbor_scan,
    ablate_adaptive,
    ablate_merge,
    ablate_queue,
    ablate_hash,
    zipf_gen
);
criterion_main!(benches);
