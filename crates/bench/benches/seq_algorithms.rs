//! Per-element cost of the sequential algorithms (the Cormode &
//! Hadjieleftheriou-style comparison the paper's related work cites):
//! counter-based Space Saving / Lossy Counting / Misra-Gries versus the
//! sketch-based Count-Min / Count Sketch, at low and high skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cots_core::{FrequencyCounter, SummaryConfig};
use cots_datagen::StreamSpec;
use cots_sequential::{CountMinSketch, CountSketch, LossyCounting, MisraGries, SpaceSaving};

const N: usize = 200_000;

fn bench_seq(c: &mut Criterion) {
    let mut g = c.benchmark_group("seq_algorithms");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for alpha in [1.5f64, 3.0] {
        let stream = StreamSpec::zipf(N, 10_000, alpha, 42).generate();
        let cfg = SummaryConfig::with_capacity(1000).unwrap();
        g.bench_with_input(BenchmarkId::new("space_saving", alpha), &stream, |b, s| {
            b.iter(|| {
                let mut e = SpaceSaving::<u64>::new(cfg);
                e.process_slice(s);
                e.processed()
            });
        });
        g.bench_with_input(
            BenchmarkId::new("lossy_counting", alpha),
            &stream,
            |b, s| {
                b.iter(|| {
                    let mut e = LossyCounting::<u64>::new(cfg);
                    e.process_slice(s);
                    e.processed()
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("misra_gries", alpha), &stream, |b, s| {
            b.iter(|| {
                let mut e = MisraGries::<u64>::new(cfg);
                e.process_slice(s);
                e.processed()
            });
        });
        g.bench_with_input(BenchmarkId::new("count_min", alpha), &stream, |b, s| {
            b.iter(|| {
                let mut e = CountMinSketch::<u64>::new(0.001, 0.01, cfg).unwrap();
                e.process_slice(s);
                e.processed()
            });
        });
        g.bench_with_input(BenchmarkId::new("count_sketch", alpha), &stream, |b, s| {
            b.iter(|| {
                let mut e = CountSketch::<u64>::new(2048, 5, cfg).unwrap();
                e.process_slice(s);
                e.processed()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_seq);
criterion_main!(benches);
