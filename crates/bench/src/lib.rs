//! # cots-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! CoTS paper's evaluation. One binary per experiment (see `src/bin/`),
//! each printing the same rows/series the paper reports and writing CSV and
//! JSON under `target/repro/`.
//!
//! ## Scaling
//!
//! The paper ran streams of 1M–100M elements on a dedicated quad-core; this
//! harness defaults to laptop/container-friendly sizes and scales with the
//! `REPRO_SCALE` environment variable (a multiplier on stream lengths) and
//! `REPRO_REPEATS` (median-of-`k` wall-clock repeats; work counters are
//! deterministic per run and reported from the median run).
//!
//! ## Reading the numbers
//!
//! Wall-clock on a shared single-vCPU container is noisy and cannot show
//! true parallel speedup; every experiment therefore also reports the
//! hardware-independent *work counters* (combining factor, summary
//! operations per element, lock contentions, merge volume) that carry the
//! paper's qualitative claims. See `DESIGN.md` §4 and `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod engines;
pub mod harness;

pub use harness::Scale;
