//! Uniform engine runners used by every figure binary.

use std::sync::Arc;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::{CotsConfig, FrequencyCounter, QueryableSummary, RunStats, SummaryConfig};
use cots_naive::independent::{IndependentSpaceSaving, MergeStrategy};
use cots_naive::runner::{run_concurrent, run_concurrent_batched};
use cots_naive::{LockKind, SharedSpaceSaving};
use cots_profiling::PhaseTimes;
use cots_sequential::SpaceSaving;

use crate::harness::CAPACITY;

/// Sequential Space Saving over the stream; the baseline of Table 2 and
/// the 1-thread reference elsewhere.
pub fn run_sequential(stream: &[u64]) -> RunStats {
    let mut engine = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(CAPACITY).unwrap());
    let start = std::time::Instant::now();
    engine.process_slice(stream);
    let elapsed = start.elapsed();
    // Consume the snapshot so the work cannot be optimized away and the
    // result is sanity-checked.
    let sum: u64 = engine.snapshot().entries().iter().map(|e| e.count).sum();
    assert_eq!(sum, stream.len() as u64);
    RunStats {
        engine: "sequential".into(),
        threads: 1,
        elements: stream.len() as u64,
        elapsed,
        work: Default::default(),
    }
}

/// The shared locked design (§4.2) with the chosen lock flavour.
pub fn run_shared(
    stream: &[u64],
    threads: usize,
    kind: LockKind,
    profile: bool,
) -> (RunStats, Vec<PhaseTimes>) {
    let engine =
        SharedSpaceSaving::<u64>::new(SummaryConfig::with_capacity(CAPACITY).unwrap(), kind)
            .unwrap();
    let out = run_concurrent(&engine, stream, threads, profile).unwrap();
    let sum: u64 = engine.snapshot().entries().iter().map(|e| e.count).sum();
    assert_eq!(sum, stream.len() as u64, "shared engine lost counts");
    (out.stats, out.phase_times)
}

/// The independent shared-nothing design (§4.1).
pub fn run_independent(
    stream: &[u64],
    threads: usize,
    strategy: MergeStrategy,
    merge_every: Option<u64>,
    profile: bool,
) -> (RunStats, Vec<PhaseTimes>) {
    let engine = IndependentSpaceSaving {
        config: SummaryConfig::with_capacity(CAPACITY).unwrap(),
        strategy,
        merge_every,
    };
    let out = engine.run(stream, threads, profile).unwrap();
    assert_eq!(out.snapshot.total(), stream.len() as u64);
    (out.stats, out.phase_times)
}

/// The shared locked design driven through `ingest_batch` — the
/// batch-for-batch counterpart of [`run_shared`], used wherever CoTS's
/// batched ingest is on the other side of the comparison.
pub fn run_shared_batched(
    stream: &[u64],
    threads: usize,
    kind: LockKind,
    batch: usize,
) -> RunStats {
    let engine =
        SharedSpaceSaving::<u64>::new(SummaryConfig::with_capacity(CAPACITY).unwrap(), kind)
            .unwrap();
    let stats = run_concurrent_batched(&engine, stream, threads, batch).unwrap();
    let sum: u64 = engine.snapshot().entries().iter().map(|e| e.count).sum();
    assert_eq!(sum, stream.len() as u64, "shared engine lost counts");
    stats
}

/// The CoTS framework with explicit control over the combining front-end
/// and counter budget (perf-gate ablations). Returns the run stats and the
/// engine itself so callers can compare finalize-time estimates.
pub fn run_cots_frontend(
    stream: &[u64],
    threads: usize,
    capacity: usize,
    combiner: bool,
    batch: usize,
) -> (RunStats, Arc<CotsEngine<u64>>) {
    let mut cfg = CotsConfig::for_capacity(capacity).unwrap();
    if !combiner {
        cfg = cfg.without_combiner();
    }
    let engine = Arc::new(CotsEngine::<u64>::new(cfg).unwrap());
    let stats = cots::run(
        &engine,
        stream,
        RuntimeOptions {
            threads,
            batch,
            adaptive: false,
        },
    )
    .unwrap();
    let sum: u64 = engine.snapshot().entries().iter().map(|e| e.count).sum();
    assert_eq!(sum, stream.len() as u64, "cots engine lost counts");
    (stats, engine)
}

/// The CoTS framework (§5).
pub fn run_cots(stream: &[u64], threads: usize) -> RunStats {
    let engine =
        Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(CAPACITY).unwrap()).unwrap());
    let stats = cots::run(
        &engine,
        stream,
        RuntimeOptions {
            threads,
            batch: 2048,
            adaptive: false,
        },
    )
    .unwrap();
    let sum: u64 = engine.snapshot().entries().iter().map(|e| e.count).sum();
    assert_eq!(sum, stream.len() as u64, "cots engine lost counts");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::paper_stream;

    #[test]
    fn all_engines_agree_on_totals() {
        let stream = paper_stream(20_000, 2.0, 3);
        let seq = run_sequential(&stream);
        assert_eq!(seq.elements, 20_000);
        let (sh, _) = run_shared(&stream, 2, LockKind::Mutex, false);
        assert_eq!(sh.elements, 20_000);
        let (ind, _) = run_independent(&stream, 2, MergeStrategy::Serial, Some(5_000), false);
        assert_eq!(ind.elements, 20_000);
        let cots = run_cots(&stream, 2);
        assert_eq!(cots.elements, 20_000);
        let shb = run_shared_batched(&stream, 2, LockKind::Mutex, 512);
        assert_eq!(shb.elements, 20_000);
        let (on, e_on) = run_cots_frontend(&stream, 2, CAPACITY, true, 512);
        let (off, e_off) = run_cots_frontend(&stream, 2, CAPACITY, false, 512);
        assert_eq!(on.elements, 20_000);
        assert_eq!(off.elements, 20_000);
        assert!(on.work.combiner_flushes > 0);
        assert_eq!(off.work.combiner_flushes, 0);
        drop((e_on, e_off));
    }
}
