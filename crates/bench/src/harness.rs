//! Shared harness utilities: scaling, repeat/median logic, output files.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use cots_core::json::ToJson;
use cots_core::RunStats;
use cots_datagen::StreamSpec;

/// Experiment scaling knobs, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier applied to every stream length.
    pub factor: f64,
    /// Wall-clock repeats per configuration (median is reported).
    pub repeats: usize,
}

impl Scale {
    /// Read `REPRO_SCALE` (default 1.0) and `REPRO_REPEATS` (default 3).
    pub fn from_env() -> Self {
        let factor = std::env::var("REPRO_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0f64)
            .max(0.001);
        let repeats = std::env::var("REPRO_REPEATS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3usize)
            .max(1);
        Self { factor, repeats }
    }

    /// Scale a paper stream length.
    pub fn n(&self, base: usize) -> usize {
        ((base as f64 * self.factor) as usize).max(1_000)
    }
}

/// The standard workload of the paper's evaluation (§6): zipfian stream,
/// alphabet 1/20th of the stream length (the paper uses 5M over 100M).
pub fn paper_stream(n: usize, alpha: f64, seed: u64) -> Vec<u64> {
    StreamSpec::zipf(n, (n / 20).max(100), alpha, seed).generate()
}

/// Counter budget used across experiments: the paper does not state ε;
/// 1 000 counters (ε = 10⁻³) keeps the structure interesting (constant
/// eviction churn for every α used).
pub const CAPACITY: usize = 1_000;

/// The paper's query/merge period for the independent design.
pub const MERGE_EVERY: u64 = 50_000;

/// Run `f` `repeats` times and return the run with the median wall-clock.
pub fn median_run(repeats: usize, mut f: impl FnMut() -> RunStats) -> RunStats {
    let mut runs: Vec<RunStats> = (0..repeats.max(1)).map(|_| f()).collect();
    runs.sort_by_key(|r| r.elapsed);
    runs.swap_remove(runs.len() / 2)
}

/// Output directory for CSV/JSON artifacts.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/repro");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Write rows as CSV under `target/repro/<name>.csv`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    let path = out_dir().join(format!("{name}.csv"));
    if let Err(e) = fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// Write a serializable report under `target/repro/<name>.json`.
pub fn write_json<T: ToJson>(name: &str, value: &T) {
    let path = out_dir().join(format!("{name}.json"));
    let s = cots_core::json::to_string_pretty(value);
    if let Err(e) = fs::write(&path, s) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// Format a duration as fractional seconds, the paper's unit.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cots_core::WorkCounters;

    #[test]
    fn scale_floors() {
        let s = Scale {
            factor: 0.000001,
            repeats: 1,
        };
        assert_eq!(s.n(5_000_000), 1_000);
    }

    #[test]
    fn median_selects_middle() {
        let mut times = [30u64, 10, 20].into_iter();
        let r = median_run(3, || RunStats {
            engine: "x".into(),
            threads: 1,
            elements: 1,
            elapsed: Duration::from_millis(times.next().unwrap()),
            work: WorkCounters::default(),
        });
        assert_eq!(r.elapsed, Duration::from_millis(20));
    }

    #[test]
    fn paper_stream_respects_length() {
        let s = paper_stream(10_000, 2.0, 7);
        assert_eq!(s.len(), 10_000);
    }
}
