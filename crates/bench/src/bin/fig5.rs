//! Figure 5: time breakdown of the **Shared Structure** design — Hash Opns
//! / Structure Opns / Min-Max Locks / Bucket Locks / Rest — for threads
//! 1–32 and zipfian α ∈ {2.0, 2.5, 3.0}.
//!
//! Paper shape: with more threads and more skew, the Hash Opns share grows
//! (threads blocked on the element-level lock of the hot element); for
//! lower skew the Structure Opns share dominates instead.

use cots_bench::engines::run_shared;
use cots_bench::harness::{paper_stream, write_csv, write_json, Scale};
use cots_naive::LockKind;
use cots_profiling::{render_breakdown_table, Breakdown};

fn main() {
    let scale = Scale::from_env();
    let n = scale.n(5_000_000);
    let threads = [1usize, 2, 4, 8, 16, 32];
    let alphas = [2.0f64, 2.5, 3.0];
    println!("Figure 5: Shared Structure breakdown");
    println!("stream = {n} elements\n");

    let mut rows = Vec::new();
    let mut reports: Vec<(f64, Vec<Breakdown>)> = Vec::new();
    for alpha in alphas {
        let stream = paper_stream(n, alpha, 42);
        let mut breakdowns = Vec::new();
        for &t in &threads {
            let (_, phase_times) = run_shared(&stream, t, LockKind::Mutex, true);
            let b = Breakdown::aggregate(t, &phase_times);
            rows.push(format!("{alpha},{}", b.csv_row()));
            breakdowns.push(b);
        }
        println!("alpha = {alpha}");
        println!("{}", render_breakdown_table(&breakdowns));
        reports.push((alpha, breakdowns));
    }
    write_csv("fig5", &format!("alpha,{}", Breakdown::csv_header()), &rows);
    write_json("fig5_breakdowns", &reports);
}
