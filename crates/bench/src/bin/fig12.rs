//! Figure 12: execution-time surface of **CoTS** over input size (1M–16M)
//! × threads, for α ∈ {2.0, 2.5, 3.0}.
//!
//! Paper shape: time grows linearly with the input length, and the
//! thread-scaling profile is the same at every size — scalability is
//! independent of stream length.

use cots_bench::engines::run_cots;
use cots_bench::harness::{median_run, paper_stream, write_csv, Scale};

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = [1, 2, 4, 8, 16]
        .into_iter()
        .map(|m| scale.n(m * 1_000_000))
        .collect();
    let threads = [4usize, 8, 16, 32, 64];
    let alphas = [2.0f64, 2.5, 3.0];
    println!("Figure 12: CoTS, time vs input size x threads");
    println!("sizes = {sizes:?}\n");
    let mut rows = Vec::new();
    for alpha in alphas {
        println!("alpha = {alpha}");
        print!("{:>12}", "n \\ threads");
        for &t in &threads {
            print!("{t:>10}");
        }
        println!();
        for &n in &sizes {
            let stream = paper_stream(n, alpha, 42);
            print!("{n:>12}");
            for &t in &threads {
                let stats = median_run(scale.repeats, || run_cots(&stream, t));
                print!("{:>10.3}", stats.elapsed.as_secs_f64());
                rows.push(format!(
                    "{alpha},{n},{t},{:.6},{:.3}",
                    stats.elapsed.as_secs_f64(),
                    stats.work.combining_factor()
                ));
            }
            println!();
        }
        println!();
    }
    write_csv("fig12", "alpha,n,threads,seconds,combining_factor", &rows);
}
