//! Master runner: executes every figure/table binary's experiment in
//! sequence (in-process), honouring `REPRO_SCALE` / `REPRO_REPEATS`.
//!
//! ```text
//! REPRO_SCALE=0.1 REPRO_REPEATS=3 cargo run --release -p cots-bench --bin repro
//! ```

use std::process::Command;

fn main() {
    let figures = [
        "fig3a",
        "fig3b",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig11",
        "fig12",
        "table2",
        "throughput",
        "hybrid",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for fig in figures {
        println!("\n================ {fig} ================\n");
        let status = Command::new(dir.join(fig))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        if !status.success() {
            eprintln!("{fig} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments complete; artifacts under target/repro/.");
}
