//! `repl-bench` — replication cost and failover benchmark for
//! `cots-repl`.
//!
//! Measures what a replica pair costs and what it buys: ingest
//! throughput through a primary that is simultaneously shipping its
//! WAL to a live standby, versus an identical unreplicated server at
//! the same fsync policy; and the failover recovery time from "primary
//! gone" to the *first correct answer* out of the promoted standby.
//! Writes `BENCH_repl.json` at the repo root.
//!
//! ```text
//! repl-bench [--items N] [--batch B] [--alphabet A] [--alpha Z] [--seed S]
//!            [--capacity C] [--connections K] [--shards S] [--queue-batches Q]
//!            [--fsync always|grouped|off] [--repeats R]
//!            [--parity-floor 0.7] [--rto-secs 2.0]
//! ```
//!
//! Three gates, all fatal:
//! * **parity** — pair ingest ≥ `--parity-floor` (default 0.7×) of the
//!   unreplicated baseline. Shipping rides the already-committed WAL,
//!   so its cost is one tailer read plus one socket write per batch —
//!   it must not halve the primary.
//! * **RTO** — after the primary is gone, `REPL_PROMOTE` to first
//!   *correct* answer (all shipped mass applied, staleness 0, answers
//!   inside the envelope) within `--rto-secs` (default 2 s).
//! * **accuracy** — the promoted standby's answers sit inside
//!   `count ≥ true ≥ count − error` against exact ground truth over
//!   the acked stream, and every sufficiently heavy exact hitter is
//!   monitored.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cots_core::json::{Json, ToJson};
use cots_core::Threshold;
use cots_datagen::{ExactCounter, StreamSpec};
use cots_persist::FsyncPolicy;
use cots_repl::{spawn as spawn_shipper, ShipperConfig};
use cots_serve::loadgen::{self, LoadConfig};
use cots_serve::persistence::PersistOptions;
use cots_serve::protocol::QueryReq;
use cots_serve::{Client, LoadReport, Request, Response, Server, ServiceConfig};

struct BenchArgs {
    items: u64,
    batch: usize,
    alphabet: usize,
    alpha: f64,
    seed: u64,
    capacity: usize,
    connections: usize,
    shards: usize,
    queue_batches: usize,
    fsync: FsyncPolicy,
    repeats: usize,
    parity_floor: f64,
    rto_secs: f64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            items: 800_000,
            batch: 4_096,
            alphabet: 50_000,
            alpha: 1.5,
            seed: 42,
            capacity: 1_000,
            connections: 4,
            shards: 1,
            queue_batches: 2,
            fsync: FsyncPolicy::Always,
            repeats: 3,
            parity_floor: 0.7,
            rto_secs: 2.0,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: repl-bench [--items N] [--batch B] [--alphabet A] [--alpha Z] [--seed S] \
         [--capacity C] [--connections K] [--shards S] [--queue-batches Q] \
         [--fsync always|grouped|off] [--repeats R] [--parity-floor F] [--rto-secs S]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        usage();
    })
}

fn bench_args() -> BenchArgs {
    let mut a = BenchArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--items" => a.items = parse("--items", args.next()),
            "--batch" => a.batch = parse("--batch", args.next()),
            "--alphabet" => a.alphabet = parse("--alphabet", args.next()),
            "--alpha" => a.alpha = parse("--alpha", args.next()),
            "--seed" => a.seed = parse("--seed", args.next()),
            "--capacity" => a.capacity = parse("--capacity", args.next()),
            "--connections" => a.connections = parse("--connections", args.next()),
            "--shards" => a.shards = parse("--shards", args.next()),
            "--queue-batches" => a.queue_batches = parse("--queue-batches", args.next()),
            "--fsync" => a.fsync = parse("--fsync", args.next()),
            "--repeats" => a.repeats = parse("--repeats", args.next()),
            "--parity-floor" => a.parity_floor = parse("--parity-floor", args.next()),
            "--rto-secs" => a.rto_secs = parse("--rto-secs", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    if a.items == 0 || a.batch == 0 || a.capacity == 0 || a.connections == 0 || a.repeats == 0 {
        eprintln!("--items, --batch, --capacity, --connections and --repeats must be positive");
        usage();
    }
    a
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf()
}

fn bind_node(a: &BenchArgs, dir: PathBuf, standby: bool, peer: Option<String>) -> Result<Server, String> {
    let mut persist = PersistOptions::new(dir);
    persist.fsync = a.fsync;
    // Keep checkpoints out of the measured window.
    persist.checkpoint_every = Duration::from_secs(120);
    Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            shards: a.shards,
            capacity: a.capacity,
            refresh: Duration::from_millis(5),
            queue_batches: a.queue_batches,
            persist: Some(persist),
            standby,
            repl_peer: peer,
            ..Default::default()
        },
    )
    .map_err(|e| format!("bind node: {e}"))
}

struct Node {
    addr: String,
    service: Arc<cots_serve::Service>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
    dir: PathBuf,
}

fn start_node(a: &BenchArgs, tag: &str, standby: bool, peer: Option<String>) -> Result<Node, String> {
    let dir = std::env::temp_dir()
        .join(format!("cots-repl-bench-{}", std::process::id()))
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let server = bind_node(a, dir.clone(), standby, peer)?;
    let addr = server.local_addr().to_string();
    let service = server.service().clone();
    Ok(Node {
        addr,
        service,
        thread: std::thread::spawn(move || server.run()),
        dir,
    })
}

fn stop_node(node: Node) -> Result<(), String> {
    Client::connect(&node.addr)
        .map_err(cots_core::CotsError::from)
        .and_then(|mut c| c.shutdown())
        .map_err(|e| format!("node shutdown: {e}"))?;
    match node.thread.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(format!("node: {e}")),
        Err(_) => return Err("node thread panicked".into()),
    }
    let _ = std::fs::remove_dir_all(&node.dir);
    Ok(())
}

fn drive(a: &BenchArgs, addr: &str, check: bool) -> Result<LoadReport, String> {
    loadgen::run(&LoadConfig {
        addr: addr.to_string(),
        items: a.items,
        alphabet: a.alphabet,
        alpha: a.alpha,
        seed: a.seed,
        resume_from: 0,
        batch: a.batch,
        connections: a.connections,
        qps: 0,
        phi: 0.01,
        check,
        wire: cots_serve::WireMode::Auto,
    })
    .map_err(|e| format!("load: {e}"))
}

/// The unreplicated baseline: one durable server, no shipping.
fn direct_pass(a: &BenchArgs, rep: usize, check: bool) -> Result<LoadReport, String> {
    let node = start_node(a, &format!("direct-{rep}"), false, None)?;
    let result = drive(a, &node.addr, check);
    let stopped = stop_node(node);
    let report = result?;
    stopped?;
    Ok(report)
}

/// Failover measurement: primary is gone, `REPL_PROMOTE` fires, and
/// the clock runs until the promoted standby's answer is *correct* —
/// all `expected` items applied, staleness 0.
fn measure_rto(standby_addr: &str, expected: u64, deadline: Duration) -> Result<f64, String> {
    let mut client = Client::connect(standby_addr).map_err(|e| format!("connect standby: {e}"))?;
    let t0 = Instant::now();
    match client
        .call(&Request::ReplPromote)
        .map_err(|e| format!("promote: {e}"))?
    {
        Response::ReplAck { .. } => {}
        other => return Err(format!("promote refused: {other:?}")),
    }
    loop {
        let (_, total, stamp) = client
            .query(QueryReq::TopK { k: 1 })
            .map_err(|e| format!("standby query: {e}"))?;
        if total == expected && stamp.staleness == 0 {
            return Ok(t0.elapsed().as_secs_f64());
        }
        if t0.elapsed() > deadline {
            return Err(format!(
                "promoted standby never served a correct answer: total {total}/{expected}, \
                 staleness {}",
                stamp.staleness
            ));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Envelope + coverage check of the promoted standby against exact
/// ground truth over the acked stream.
fn check_accuracy(a: &BenchArgs, standby_addr: &str) -> Result<(), String> {
    let stream = StreamSpec::zipf(a.items as usize, a.alphabet, a.alpha, a.seed).generate();
    let exact = ExactCounter::from_stream(&stream);
    let mut client = Client::connect(standby_addr).map_err(|e| format!("connect standby: {e}"))?;
    let (entries, total, _) = client
        .query(QueryReq::TopK { k: 50 })
        .map_err(|e| format!("standby query: {e}"))?;
    if total != a.items {
        return Err(format!("standby total {total} != streamed {}", a.items));
    }
    for e in &entries {
        let truth = exact.count(&e.item);
        if !(e.count >= truth && truth >= e.count - e.error) {
            return Err(format!(
                "envelope violated for {}: count={} error={} truth={truth}",
                e.item, e.count, e.error
            ));
        }
    }
    // Every exact hitter above 1% of the mass must be monitored and
    // inside the envelope (the summary holds `capacity` counters; a
    // 1%-heavy key cannot have been evicted).
    let hitters = exact.frequent(Threshold::Fraction(0.01));
    if hitters.is_empty() {
        return Err("no exact hitter crossed 1% — accuracy check checked nothing".into());
    }
    for (key, truth) in hitters {
        let (point, _, _) = client
            .query(QueryReq::Point { key })
            .map_err(|e| format!("standby point: {e}"))?;
        let Some(e) = point.first() else {
            return Err(format!("heavy key {key} (exact {truth}) is not monitored"));
        };
        if !(e.count >= truth && truth >= e.count - e.error) {
            return Err(format!(
                "envelope violated for heavy key {key}: count={} error={} truth={truth}",
                e.count, e.error
            ));
        }
    }
    Ok(())
}

struct PairOutcome {
    report: LoadReport,
    rto_secs: Option<f64>,
    accuracy_ok: Option<bool>,
}

/// One pair pass: standby + primary + live WAL shipper, one measured
/// load run; on the failover repeat the primary is then torn down and
/// the promotion clock runs.
fn pair_pass(a: &BenchArgs, rep: usize, failover: bool) -> Result<PairOutcome, String> {
    let standby = start_node(a, &format!("pair-{rep}-standby"), true, None)?;
    let primary = start_node(
        a,
        &format!("pair-{rep}-primary"),
        false,
        Some(standby.addr.clone()),
    )?;
    let mut cfg = ShipperConfig::new(standby.addr.clone());
    cfg.poll_interval = Duration::from_millis(2);
    let shipper =
        spawn_shipper(primary.service.clone(), cfg).map_err(|e| format!("shipper: {e}"))?;

    let result = drive(a, &primary.addr, failover);

    // Let the shipper drain so the standby holds the full stream; the
    // drain window is honest replication lag, but the RTO measured
    // below starts at "primary gone", not "stream sent".
    let drained = (|| -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let stats = primary.service.stats();
            if stats
                .repl
                .as_ref()
                .is_some_and(|r| r.connected && r.unacked_batches == 0)
                && stats.applied_keys() == a.items
            {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(format!("shipper never drained: {:?}", stats.repl));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    })();

    shipper.stop();
    let report = result?;
    drained?;

    if !failover {
        stop_node(primary)?;
        stop_node(standby)?;
        return Ok(PairOutcome {
            report,
            rto_secs: None,
            accuracy_ok: None,
        });
    }

    // Failover: the primary goes away first, then the standby is
    // promoted and must serve a correct, accurate answer.
    stop_node(primary)?;
    let rto = measure_rto(
        &standby.addr,
        a.items,
        Duration::from_secs_f64(a.rto_secs.max(1.0) * 10.0),
    )?;
    let accuracy = check_accuracy(a, &standby.addr);
    stop_node(standby)?;
    let accuracy_ok = match accuracy {
        Ok(()) => true,
        Err(e) => {
            eprintln!("repl-bench: accuracy check failed: {e}");
            false
        }
    };
    Ok(PairOutcome {
        report,
        rto_secs: Some(rto),
        accuracy_ok: Some(accuracy_ok),
    })
}

fn main() {
    let a = bench_args();
    println!(
        "repl-bench: items={} batch={} alphabet={} alpha={} capacity={} connections={} \
         fsync={:?} repeats={}",
        a.items, a.batch, a.alphabet, a.alpha, a.capacity, a.connections, a.fsync, a.repeats
    );

    println!("unreplicated baseline:");
    let mut direct_best: Option<LoadReport> = None;
    let mut checks_passed = true;
    for rep in 0..a.repeats {
        let check = rep + 1 == a.repeats;
        let mut report = match direct_pass(&a, rep, check) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("repl-bench: baseline failed: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "  direct repeat {}/{}: {:.3} M items/s ({:.2}s)",
            rep + 1,
            a.repeats,
            report.meps,
            report.elapsed_secs
        );
        if let Some(c) = report.check.take() {
            checks_passed &= c.passed;
        }
        if direct_best.as_ref().map_or(true, |b| report.meps > b.meps) {
            direct_best = Some(report);
        }
    }
    let direct = direct_best.expect("repeats >= 1");

    println!("replicated pair (primary shipping to a live standby):");
    let mut pair_best: Option<LoadReport> = None;
    let mut rto_secs = None;
    let mut accuracy_ok = None;
    for rep in 0..a.repeats {
        let failover = rep + 1 == a.repeats;
        let outcome = match pair_pass(&a, rep, failover) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("repl-bench: pair pass failed: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "  pair repeat {}/{}: {:.3} M items/s ({:.2}s){}",
            rep + 1,
            a.repeats,
            outcome.report.meps,
            outcome.report.elapsed_secs,
            outcome
                .rto_secs
                .map_or(String::new(), |r| format!(", failover RTO {:.3}s", r))
        );
        let mut report = outcome.report;
        if let Some(c) = report.check.take() {
            checks_passed &= c.passed;
        }
        if pair_best.as_ref().map_or(true, |b| report.meps > b.meps) {
            pair_best = Some(report);
        }
        rto_secs = rto_secs.or(outcome.rto_secs);
        accuracy_ok = accuracy_ok.or(outcome.accuracy_ok);
    }
    let pair = pair_best.expect("repeats >= 1");
    let rto = rto_secs.expect("failover repeat ran");
    let accuracy = accuracy_ok.expect("failover repeat ran");

    let parity_ratio = if direct.meps > 0.0 {
        pair.meps / direct.meps
    } else {
        0.0
    };
    let parity_ok = parity_ratio >= a.parity_floor;
    let rto_ok = rto <= a.rto_secs;
    let passed = parity_ok && rto_ok && accuracy && checks_passed;

    let fsync_name = match a.fsync {
        FsyncPolicy::Always => "always",
        FsyncPolicy::Grouped => "grouped",
        FsyncPolicy::Off => "off",
    };
    let report = Json::obj(vec![
        ("items", a.items.to_json()),
        ("batch", a.batch.to_json()),
        ("alphabet", a.alphabet.to_json()),
        ("alpha", a.alpha.to_json()),
        ("seed", a.seed.to_json()),
        ("capacity", a.capacity.to_json()),
        ("connections", a.connections.to_json()),
        ("shards", a.shards.to_json()),
        ("queue_batches", a.queue_batches.to_json()),
        ("fsync", fsync_name.to_json()),
        ("repeats", a.repeats.to_json()),
        ("direct", direct.to_json()),
        ("pair", pair.to_json()),
        (
            "gate",
            Json::obj(vec![
                ("parity_ratio", parity_ratio.to_json()),
                ("parity_floor", a.parity_floor.to_json()),
                ("rto_secs", rto.to_json()),
                ("rto_bound_secs", a.rto_secs.to_json()),
                ("accuracy_ok", accuracy.to_json()),
                ("checks_passed", checks_passed.to_json()),
                ("passed", passed.to_json()),
            ]),
        ),
    ]);
    let out_path = repo_root().join("BENCH_repl.json");
    if let Err(e) = std::fs::write(&out_path, report.pretty()) {
        eprintln!("repl-bench: cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());
    println!(
        "direct {:.3} M items/s | pair {:.3} | parity {parity_ratio:.3} (floor {}) {} | \
         RTO {rto:.3}s (bound {}s) {} | accuracy {} => {}",
        direct.meps,
        pair.meps,
        a.parity_floor,
        if parity_ok { "OK" } else { "FAIL" },
        a.rto_secs,
        if rto_ok { "OK" } else { "FAIL" },
        if accuracy { "PASS" } else { "FAIL" },
        if passed { "PASS" } else { "FAIL" }
    );
    if !passed {
        eprintln!("repl-bench: gate failed");
        std::process::exit(1);
    }
}
