//! Table 2: best-case absolute execution times (seconds) of the engines
//! that share a Stream Summary — the naive Shared design and CoTS — versus
//! a lock-free sequential implementation. Stream of 16M elements,
//! α ∈ {2.0, 2.5, 3.0}.
//!
//! Paper numbers (quad-core): Sequential ≈ 0.44–0.52 s; Shared ≈ 12–13 s;
//! CoTS ≈ 0.66 (α=2.0), 0.23 (α=2.5), 0.11 (α=3.0) — i.e. CoTS beats
//! Shared by two orders of magnitude everywhere and beats Sequential by
//! 2–4× at α ≥ 2.5. The "best case" is taken over thread counts, as in the
//! paper.

use cots_bench::engines::{run_cots, run_sequential, run_shared};
use cots_bench::harness::{median_run, paper_stream, write_csv, Scale};
use cots_naive::LockKind;
use std::time::Duration;

fn main() {
    let scale = Scale::from_env();
    let n = scale.n(16_000_000);
    let alphas = [2.0f64, 2.5, 3.0];
    let shared_threads = [1usize, 2, 4, 8];
    let cots_threads = [4usize, 8, 16, 32, 64];
    println!("Table 2: best-case execution time (seconds), {n} elements\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>18} {:>14}",
        "alpha", "Sequential", "Shared", "CoTS", "CoTS vs Shared", "CoTS vs Seq"
    );

    let mut rows = Vec::new();
    for alpha in alphas {
        let stream = paper_stream(n, alpha, 42);
        let seq = median_run(scale.repeats, || run_sequential(&stream));
        let best_shared: Duration = shared_threads
            .iter()
            .map(|&t| {
                median_run(scale.repeats, || {
                    run_shared(&stream, t, LockKind::Mutex, false).0
                })
                .elapsed
            })
            .min()
            .unwrap();
        let best_cots: Duration = cots_threads
            .iter()
            .map(|&t| median_run(scale.repeats, || run_cots(&stream, t)).elapsed)
            .min()
            .unwrap();
        let vs_shared = best_shared.as_secs_f64() / best_cots.as_secs_f64();
        let vs_seq = seq.elapsed.as_secs_f64() / best_cots.as_secs_f64();
        println!(
            "{:>8.1} {:>12.4} {:>12.4} {:>12.4} {:>17.1}x {:>13.2}x",
            alpha,
            seq.elapsed.as_secs_f64(),
            best_shared.as_secs_f64(),
            best_cots.as_secs_f64(),
            vs_shared,
            vs_seq
        );
        rows.push(format!(
            "{alpha},{:.6},{:.6},{:.6},{vs_shared:.3},{vs_seq:.3}",
            seq.elapsed.as_secs_f64(),
            best_shared.as_secs_f64(),
            best_cots.as_secs_f64()
        ));
    }
    write_csv(
        "table2",
        "alpha,sequential_s,best_shared_s,best_cots_s,cots_vs_shared,cots_vs_sequential",
        &rows,
    );
}
