//! `recovery-bench` — durability-path benchmark for `cots-persist`.
//!
//! Measures the three costs a persistent `cots-serve` deployment pays and
//! the one guarantee it buys, then writes `BENCH_recovery.json` at the
//! repo root:
//!
//! 1. **Checkpoint codec** — write and load latency of a full-capacity
//!    checkpoint (atomic rename + CRC framing included).
//! 2. **WAL append throughput** — group-committed batch logging under
//!    each [`FsyncPolicy`] (`off`, `grouped`, `always`), in M items/s.
//! 3. **Recovery time vs WAL length** — scan + engine-replay wall clock
//!    as the un-checkpointed tail grows.
//! 4. **Correctness gate** — a checkpoint of the first half of a Zipf
//!    stream merged with a WAL replay of the second half must sit inside
//!    the Space-Saving envelope of exact truth over the *whole* stream,
//!    with full recall of the truly frequent set. Exit is non-zero on
//!    any violation.
//!
//! ```text
//! recovery-bench [--items N] [--alphabet A] [--capacity C] [--seed S]
//!                [--batch B] [--repeats R]
//! ```
//!
//! `RECOVERY_BENCH_ITEMS` overrides the default stream length (used by
//! the CI smoke job to keep runtime bounded).

use std::path::{Path, PathBuf};
use std::time::Instant;

use cots::CotsEngine;
use cots_core::json::{Json, ToJson};
use cots_core::merge::merge_snapshots;
use cots_core::{CotsConfig, QueryableSummary, Snapshot, SummaryConfig, Threshold};
use cots_datagen::{ExactCounter, StreamSpec};
use cots_persist::{
    load_checkpoint, recover, write_checkpoint, Checkpoint, FsyncPolicy, WalWriter,
    DEFAULT_SEGMENT_BYTES,
};
use cots_sequential::SpaceSaving;

struct BenchArgs {
    items: usize,
    alphabet: usize,
    capacity: usize,
    seed: u64,
    batch: usize,
    repeats: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            items: 2_000_000,
            alphabet: 50_000,
            capacity: 1_000,
            seed: 42,
            batch: 8_192,
            repeats: 3,
        }
    }
}

const ALPHA: f64 = 1.5;
const PHI: f64 = 0.01;

fn usage() -> ! {
    eprintln!(
        "usage: recovery-bench [--items N] [--alphabet A] [--capacity C] \
         [--seed S] [--batch B] [--repeats R]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        usage();
    })
}

fn bench_args() -> BenchArgs {
    let mut a = BenchArgs::default();
    if let Some(items) = std::env::var("RECOVERY_BENCH_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        a.items = items;
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--items" => a.items = parse("--items", args.next()),
            "--alphabet" => a.alphabet = parse("--alphabet", args.next()),
            "--capacity" => a.capacity = parse("--capacity", args.next()),
            "--seed" => a.seed = parse("--seed", args.next()),
            "--batch" => a.batch = parse("--batch", args.next()),
            "--repeats" => a.repeats = parse("--repeats", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    if a.items == 0 || a.capacity == 0 || a.batch == 0 || a.repeats == 0 {
        eprintln!("--items, --capacity, --batch and --repeats must be positive");
        usage();
    }
    a
}

/// The repo root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf()
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cots-recovery-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench work dir");
    dir
}

/// Sequential Space-Saving summary of `stream` at `capacity`.
fn summarize(stream: &[u64], capacity: usize) -> Snapshot<u64> {
    let mut ss = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(capacity).unwrap());
    ss.process_slice(stream);
    use cots_core::FrequencyCounter;
    QueryableSummary::snapshot(&ss)
}

/// Write `stream` into a fresh WAL under `dir`, batches sequenced from
/// `first_seq`. Returns `(batches, secs, bytes, syncs)`.
fn fill_wal(
    dir: &Path,
    stream: &[u64],
    first_seq: u64,
    batch: usize,
    policy: FsyncPolicy,
) -> (u64, f64, u64, u64) {
    let mut writer = WalWriter::open(dir, first_seq, policy, DEFAULT_SEGMENT_BYTES).unwrap();
    let mut seq = first_seq;
    let mut bytes = 0u64;
    let mut syncs = 0u64;
    let start = Instant::now();
    for chunk in stream.chunks(batch) {
        writer.append(seq, chunk);
        seq += 1;
        let stats = writer.commit().unwrap();
        bytes += stats.bytes;
        syncs += u64::from(stats.synced);
    }
    writer.sync().unwrap();
    (seq - first_seq, start.elapsed().as_secs_f64(), bytes, syncs)
}

/// Recover `dir` and replay the WAL tail into a fresh engine; returns
/// `(recovered_items, scan_secs, replay_secs, base)`.
fn recover_and_replay(
    dir: &Path,
    capacity: usize,
) -> (u64, f64, f64, Option<Checkpoint>, Snapshot<u64>) {
    let scan_start = Instant::now();
    let rec = recover(dir).unwrap();
    let scan_secs = scan_start.elapsed().as_secs_f64();
    let replay_start = Instant::now();
    let engine = CotsEngine::<u64>::new(CotsConfig::for_capacity(capacity).unwrap()).unwrap();
    for b in &rec.batches {
        engine.delegate_batch(&b.keys);
    }
    engine.finalize();
    let live = QueryableSummary::snapshot(&engine);
    let replay_secs = replay_start.elapsed().as_secs_f64();
    (rec.report.recovered_items, scan_secs, replay_secs, rec.base, live)
}

fn main() {
    let a = bench_args();
    println!(
        "recovery-bench: items={} alphabet={} capacity={} seed={} batch={} repeats={}",
        a.items, a.alphabet, a.capacity, a.seed, a.batch, a.repeats
    );
    let stream = StreamSpec::zipf(a.items, a.alphabet, ALPHA, a.seed).generate();

    // ---- 1. Checkpoint codec: write/load latency at full capacity. ----
    let full_summary = summarize(&stream, a.capacity);
    let nbatches = stream.len().div_ceil(a.batch) as u64;
    let ckpt = Checkpoint::from_snapshot(nbatches, 1, a.capacity, &full_summary);
    let dir = work_dir("ckpt");
    let mut ckpt_bytes = 0u64;
    let mut write_secs = f64::INFINITY;
    let mut load_secs = f64::INFINITY;
    for _ in 0..a.repeats {
        let start = Instant::now();
        let (path, bytes) = write_checkpoint(&dir, &ckpt).unwrap();
        write_secs = write_secs.min(start.elapsed().as_secs_f64());
        ckpt_bytes = bytes;
        let start = Instant::now();
        let loaded = load_checkpoint(&path).unwrap();
        load_secs = load_secs.min(start.elapsed().as_secs_f64());
        assert_eq!(loaded, ckpt, "checkpoint round trip must be lossless");
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "checkpoint: {} entries, {ckpt_bytes} bytes, write {:.3} ms, load {:.3} ms",
        ckpt.entries.len(),
        write_secs * 1e3,
        load_secs * 1e3
    );

    // ---- 2. WAL append throughput per fsync policy. ----
    let mut wal_rows = Vec::new();
    for policy in [FsyncPolicy::Off, FsyncPolicy::Grouped, FsyncPolicy::Always] {
        let mut best_secs = f64::INFINITY;
        let mut bytes = 0u64;
        let mut syncs = 0u64;
        for _ in 0..a.repeats {
            let dir = work_dir("wal");
            let (_, secs, b, s) = fill_wal(&dir, &stream, 0, a.batch, policy);
            best_secs = best_secs.min(secs);
            bytes = b;
            syncs = s;
            let _ = std::fs::remove_dir_all(&dir);
        }
        let meps = a.items as f64 / best_secs.max(1e-9) / 1e6;
        println!("wal append [{policy}]: {meps:.2} M items/s ({bytes} bytes, {syncs} syncs)");
        wal_rows.push(Json::obj(vec![
            ("policy", policy.to_string().to_json()),
            ("secs", best_secs.to_json()),
            ("meps", meps.to_json()),
            ("bytes", bytes.to_json()),
            ("syncs", syncs.to_json()),
        ]));
    }

    // ---- 3. Recovery time vs WAL length. ----
    let mut recovery_rows = Vec::new();
    for pct in [25usize, 50, 100] {
        let take = a.items * pct / 100;
        let dir = work_dir("recovery");
        fill_wal(&dir, &stream[..take], 0, a.batch, FsyncPolicy::Off);
        let (recovered, scan_secs, replay_secs, base, _) = recover_and_replay(&dir, a.capacity);
        assert!(base.is_none(), "no checkpoint was written for this row");
        assert_eq!(recovered, take as u64, "WAL-only recovery is lossless");
        let total = scan_secs + replay_secs;
        let meps = take as f64 / total.max(1e-9) / 1e6;
        println!(
            "recovery at {pct:>3}% wal ({take} items): scan {:.3} ms + replay {:.3} ms = {:.2} M items/s",
            scan_secs * 1e3,
            replay_secs * 1e3,
            meps
        );
        recovery_rows.push(Json::obj(vec![
            ("wal_fraction", (pct as f64 / 100.0).to_json()),
            ("items", take.to_json()),
            ("scan_secs", scan_secs.to_json()),
            ("replay_secs", replay_secs.to_json()),
            ("meps", meps.to_json()),
        ]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- 4. Correctness gate: checkpoint ∪ WAL vs exact truth. ----
    let half = a.items / 2;
    let half_batches = half.div_ceil(a.batch) as u64;
    let dir = work_dir("gate");
    let base_ckpt = Checkpoint::from_snapshot(half_batches, 1, a.capacity, &summarize(&stream[..half], a.capacity));
    write_checkpoint(&dir, &base_ckpt).unwrap();
    fill_wal(&dir, &stream[half..], half_batches, a.batch, FsyncPolicy::Off);
    let (recovered, _, _, base, live) = recover_and_replay(&dir, a.capacity);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(recovered, a.items as u64, "clean directory recovers everything");
    let merged = merge_snapshots(&[base.expect("checkpoint present").snapshot(), live], a.capacity);

    let truth = ExactCounter::from_stream(&stream);
    let threshold = Threshold::Fraction(PHI).resolve(a.items as u64);
    let truly: Vec<(u64, u64)> = truth.frequent(Threshold::Count(threshold));
    let reported = merged.frequent(Threshold::Count(threshold));
    let missed = truly
        .iter()
        .filter(|(k, _)| !reported.iter().any(|e| e.item == *k))
        .count();
    let bound_violations = merged
        .entries()
        .iter()
        .filter(|e| {
            let t = truth.count(&e.item);
            !(e.count >= t && e.count - e.error <= t)
        })
        .count();
    let passed = missed == 0 && bound_violations == 0 && merged.total() == a.items as u64;
    println!(
        "correctness: threshold={threshold} truly_frequent={} reported={} missed={missed} \
         bound_violations={bound_violations} => {}",
        truly.len(),
        reported.len(),
        if passed { "PASS" } else { "FAIL" }
    );

    let report = Json::obj(vec![
        (
            "config",
            Json::obj(vec![
                ("items", a.items.to_json()),
                ("alphabet", a.alphabet.to_json()),
                ("alpha", ALPHA.to_json()),
                ("capacity", a.capacity.to_json()),
                ("seed", a.seed.to_json()),
                ("batch", a.batch.to_json()),
                ("repeats", a.repeats.to_json()),
            ]),
        ),
        (
            "checkpoint",
            Json::obj(vec![
                ("entries", ckpt.entries.len().to_json()),
                ("bytes", ckpt_bytes.to_json()),
                ("write_secs", write_secs.to_json()),
                ("load_secs", load_secs.to_json()),
            ]),
        ),
        ("wal_append", Json::Arr(wal_rows)),
        ("recovery", Json::Arr(recovery_rows)),
        (
            "correctness",
            Json::obj(vec![
                ("threshold", threshold.to_json()),
                ("truly_frequent", truly.len().to_json()),
                ("reported", reported.len().to_json()),
                ("missed", missed.to_json()),
                ("bound_violations", bound_violations.to_json()),
                ("passed", passed.to_json()),
            ]),
        ),
    ]);
    let out_path = repo_root().join("BENCH_recovery.json");
    if let Err(e) = std::fs::write(&out_path, report.pretty()) {
        eprintln!("recovery-bench: cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());
    if !passed {
        eprintln!("recovery-bench: recovered answers violated the Space Saving guarantee");
        std::process::exit(1);
    }
}
