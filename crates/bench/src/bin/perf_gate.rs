//! `perf-gate` — the machine-readable ingest benchmark and regression gate.
//!
//! Runs the ingest microbenchmarks (sequential, shared-batched, CoTS with
//! the combining front-end on/off) across α ∈ {1.5, 2.5} and thread
//! counts, and writes `BENCH_ingest.json` at the **repo root** with both
//! advisory wall-clock throughput and the deterministic work counters
//! (combining factor, boundary crossings per element, lock contentions).
//!
//! ## Gating policy
//!
//! Wall-clock on a shared CI runner is weather, so it is *reported, never
//! gated*. The gate keys on work counters:
//!
//! 1. **front-end effectiveness** — with the front-end on (Zipf α ≥ 1.5,
//!    ≥ 4 threads) boundary crossings per element must drop vs. off;
//! 2. **exactness** — on a no-eviction configuration (alphabet ≤ counter
//!    budget) finalize-time totals and every per-element estimate must
//!    match the front-end-off run exactly;
//! 3. **regression vs. baseline** — if a previous `BENCH_ingest.json`
//!    exists at the repo root (the committed baseline CI checks out), any
//!    single-thread CoTS configuration whose crossings/element rose more
//!    than 10% fails. Single-thread counters are bit-deterministic for a
//!    fixed stream; multi-thread counters vary with interleaving and are
//!    covered by the paired check (1) instead.
//!
//! Exit status 0 iff every check passes.
//!
//! ## Scaling and reproducibility
//!
//! `PERF_GATE_SCALE` multiplies the stream length (default 1.0 →
//! 400 000 elements — small enough for a CI smoke job, large enough that
//! the counters stabilize; the committed baseline uses the same default,
//! so CI compares apples to apples). `REPRO_REPEATS` controls wall-clock
//! repeats (default 3).
//!
//! The stream seed and the CoTS thread counts are configurable so CI and
//! local runs reproduce byte-for-byte:
//!
//! ```text
//! perf-gate [--seed S] [--threads T1,T2,...]
//! ```
//!
//! with `PERF_GATE_SEED` / `PERF_GATE_THREADS` as env-var equivalents
//! (CLI wins over env, env over the defaults 42 and 1,4). The baseline
//! comparison only fires when the baseline file was recorded with the
//! same seed *and* stream length; anything else is not comparable and is
//! ignored.

use std::path::{Path, PathBuf};
use std::time::Duration;

use cots_bench::engines::{run_cots_frontend, run_sequential, run_shared_batched};
use cots_bench::harness::CAPACITY;
use cots_core::json::{Json, ToJson};
use cots_core::{ConcurrentCounter, RunStats, WorkCounters};
use cots_datagen::StreamSpec;
use cots_naive::LockKind;
use cots_profiling::ThroughputSummary;

/// Relative crossings/element increase vs. baseline that fails the gate.
/// Multi-thread interleaving makes the counter nondeterministic within a
/// few percent; 10% separates weather from regression.
const TOLERANCE: f64 = 0.10;
/// Absolute slack added on top of the relative tolerance so near-zero
/// counters (e.g. 0.011 crossings/element at high skew, where a handful of
/// extra crossings is a double-digit relative move) are not gated on pure
/// interleaving noise.
const ABS_SLACK: f64 = 0.005;
const BATCH: usize = 2048;
const DEFAULT_SEED: u64 = 42;
const DEFAULT_THREADS: &[usize] = &[1, 4];

/// Runtime knobs: CLI flags win over env vars, env vars over defaults.
struct GateArgs {
    seed: u64,
    threads: Vec<usize>,
}

fn usage() -> ! {
    eprintln!("usage: perf-gate [--seed S] [--threads T1,T2,...]");
    eprintln!("env: PERF_GATE_SEED, PERF_GATE_THREADS, PERF_GATE_SCALE, REPRO_REPEATS");
    std::process::exit(2);
}

/// Parse a comma-separated thread list: positive, deduped, ascending.
fn parse_threads(raw: &str) -> Option<Vec<usize>> {
    let mut out = raw
        .split(',')
        .map(|s| s.trim().parse::<usize>().ok().filter(|&t| t > 0))
        .collect::<Option<Vec<_>>>()?;
    out.sort_unstable();
    out.dedup();
    (!out.is_empty()).then_some(out)
}

fn gate_args() -> GateArgs {
    let mut seed = std::env::var("PERF_GATE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let mut threads = std::env::var("PERF_GATE_THREADS")
        .ok()
        .and_then(|v| parse_threads(&v))
        .unwrap_or_else(|| DEFAULT_THREADS.to_vec());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer value");
                    usage();
                })
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| parse_threads(&v))
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a comma-separated list of positive integers");
                        usage();
                    })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    GateArgs { seed, threads }
}

struct GateCheck {
    name: String,
    pass: bool,
    detail: String,
}

struct RunRecord {
    engine: &'static str,
    frontend: Option<bool>,
    alpha: f64,
    threads: usize,
    elements: u64,
    wall: ThroughputSummary,
    work: WorkCounters,
}

impl RunRecord {
    /// Stable identity used to match runs against the baseline file.
    fn key(&self) -> String {
        format!(
            "{}:{}:a{}:t{}",
            self.engine,
            match self.frontend {
                Some(true) => "on",
                Some(false) => "off",
                None => "-",
            },
            self.alpha,
            self.threads
        )
    }

    fn crossings_per_element(&self) -> f64 {
        self.work.crossings_per_element()
    }
}

impl ToJson for RunRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("key", self.key().to_json()),
            ("engine", self.engine.to_json()),
            (
                "frontend",
                match self.frontend {
                    Some(b) => b.to_json(),
                    None => Json::Null,
                },
            ),
            ("alpha", self.alpha.to_json()),
            ("threads", self.threads.to_json()),
            ("elements", self.elements.to_json()),
            ("wall", self.wall.to_json()),
            (
                "throughput_meps",
                self.wall.meps(self.elements).to_json(),
            ),
            (
                "crossings_per_element",
                self.crossings_per_element().to_json(),
            ),
            (
                "combining_factor",
                self.work.combining_factor().to_json(),
            ),
            ("work", self.work.to_json()),
        ])
    }
}

impl ToJson for GateCheck {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("pass", self.pass.to_json()),
            ("detail", self.detail.to_json()),
        ])
    }
}

/// The repo root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf()
}

fn repeats() -> usize {
    std::env::var("REPRO_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize)
        .max(1)
}

fn stream_len() -> usize {
    let scale: f64 = std::env::var("PERF_GATE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0f64)
        .max(0.01);
    ((400_000f64 * scale) as usize).max(10_000)
}

/// Repeat a run, returning the last run's stats (the counters of a full,
/// representative run) plus the wall-clock summary over all repeats.
fn repeat(reps: usize, mut f: impl FnMut() -> RunStats) -> (RunStats, ThroughputSummary) {
    let mut walls: Vec<Duration> = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let s = f();
        walls.push(s.elapsed);
        last = Some(s);
    }
    let stats = last.expect("reps >= 1");
    let wall = ThroughputSummary::from_durations(&walls).expect("reps >= 1");
    (stats, wall)
}

/// Load `{key -> crossings_per_element}` from a previous BENCH_ingest.json.
///
/// Crossings/element depends on the stream itself — both its length
/// (longer streams amortize first-occurrence crossings differently) and
/// its seed — so a baseline recorded at a different `n` or seed is not
/// comparable and is ignored.
fn load_baseline(path: &Path, n: usize, seed: u64) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let v: Json = cots_core::json::from_str(&text).ok()?;
    if v.get("n")?.as_f64()? as usize != n {
        return None;
    }
    if v.get("seed")?.as_u64()? != seed {
        return None;
    }
    let runs = v.get("runs")?.as_arr()?;
    let mut out = Vec::new();
    for r in runs {
        let key = r.get("key")?.as_str()?.to_string();
        let cpe = r.get("crossings_per_element")?.as_f64()?;
        out.push((key, cpe));
    }
    Some(out)
}

fn main() {
    let GateArgs { seed, threads } = gate_args();
    let n = stream_len();
    let reps = repeats();
    let alphabet = (n / 20).max(100);
    let shared_threads = *threads.iter().max().expect("thread list is non-empty");
    let out_path = repo_root().join("BENCH_ingest.json");
    let baseline = load_baseline(&out_path, n, seed);
    println!(
        "perf-gate: n={n} alphabet={alphabet} capacity={CAPACITY} repeats={reps} seed={seed} \
         threads={threads:?} baseline={}",
        if baseline.is_some() { "loaded" } else { "none" }
    );

    let mut records: Vec<RunRecord> = Vec::new();
    let mut checks: Vec<GateCheck> = Vec::new();

    for alpha in [1.5f64, 2.5] {
        let stream = StreamSpec::zipf(n, alphabet, alpha, seed).generate();

        // Baselines: sequential, shared-batched at the top thread count.
        let (seq, seq_wall) = repeat(reps, || run_sequential(&stream));
        records.push(RunRecord {
            engine: "sequential",
            frontend: None,
            alpha,
            threads: 1,
            elements: seq.elements,
            wall: seq_wall,
            work: seq.work,
        });
        let (sh, sh_wall) = repeat(reps, || {
            run_shared_batched(&stream, shared_threads, LockKind::Mutex, BATCH)
        });
        records.push(RunRecord {
            engine: "shared",
            frontend: None,
            alpha,
            threads: shared_threads,
            elements: sh.elements,
            wall: sh_wall,
            work: sh.work,
        });

        // CoTS, front-end on vs off, across thread counts.
        for &threads in &threads {
            let mut cpe = [0.0f64; 2];
            for (slot, frontend) in [(0usize, true), (1, false)] {
                let (stats, wall) = repeat(reps, || {
                    run_cots_frontend(&stream, threads, CAPACITY, frontend, BATCH).0
                });
                cpe[slot] = stats.work.crossings_per_element();
                records.push(RunRecord {
                    engine: "cots",
                    frontend: Some(frontend),
                    alpha,
                    threads,
                    elements: stats.elements,
                    wall,
                    work: stats.work,
                });
            }
            if threads >= 4 {
                let (on, off) = (cpe[0], cpe[1]);
                checks.push(GateCheck {
                    name: format!("frontend-reduces-crossings:a{alpha}:t{threads}"),
                    pass: on < off,
                    detail: format!("crossings/element on={on:.4} off={off:.4}"),
                });
            }
        }
    }

    // Exactness: no-eviction configuration (alphabet == budget), 4 threads.
    // Counts are exact in this regime regardless of interleaving, so the
    // front-end must reproduce the off run's estimates bit for bit.
    {
        let stream = StreamSpec::zipf(n, CAPACITY, 1.5, seed).generate();
        let (on_stats, e_on) = run_cots_frontend(&stream, 4, CAPACITY, true, BATCH);
        let (off_stats, e_off) = run_cots_frontend(&stream, 4, CAPACITY, false, BATCH);
        let mut mismatches = 0usize;
        for k in 0..CAPACITY as u64 {
            if e_on.estimate_point(&k) != e_off.estimate_point(&k) {
                mismatches += 1;
            }
        }
        let totals_match = on_stats.elements == off_stats.elements
            && e_on.processed() == e_off.processed();
        checks.push(GateCheck {
            name: "frontend-exact-when-nothing-evicts".into(),
            pass: totals_match && mismatches == 0,
            detail: format!(
                "totals {}={} mismatched estimates: {mismatches}",
                e_on.processed(),
                e_off.processed()
            ),
        });
    }

    // Regression vs. the committed baseline. Only single-thread CoTS runs
    // are gated: their counters are bit-deterministic for a fixed stream and
    // batch size, so any movement is a real code change. Multi-thread
    // counters swing with interleaving (±40% observed for the same binary)
    // and are covered instead by the *paired* on-vs-off check above, which
    // compares two runs of the same process and is immune to machine
    // weather.
    if let Some(base) = &baseline {
        for rec in records
            .iter()
            .filter(|r| r.engine == "cots" && r.threads == 1)
        {
            let key = rec.key();
            let Some((_, base_cpe)) = base.iter().find(|(k, _)| *k == key) else {
                continue;
            };
            let now = rec.crossings_per_element();
            let allowed = base_cpe * (1.0 + TOLERANCE) + ABS_SLACK;
            checks.push(GateCheck {
                name: format!("no-crossings-regression:{key}"),
                pass: now <= allowed,
                detail: format!(
                    "crossings/element {now:.4} vs baseline {base_cpe:.4} (allowed {allowed:.4})"
                ),
            });
        }
    }

    let all_pass = checks.iter().all(|c| c.pass);
    let report = Json::obj(vec![
        ("n", n.to_json()),
        ("alphabet", alphabet.to_json()),
        ("capacity", CAPACITY.to_json()),
        ("repeats", reps.to_json()),
        ("seed", seed.to_json()),
        ("threads", Json::Arr(threads.iter().map(ToJson::to_json).collect())),
        ("batch", BATCH.to_json()),
        (
            "note",
            "wall-clock is advisory (shared runners); the gate keys on deterministic work counters"
                .to_json(),
        ),
        ("runs", Json::Arr(records.iter().map(ToJson::to_json).collect())),
        (
            "gate",
            Json::obj(vec![
                ("pass", all_pass.to_json()),
                ("tolerance", TOLERANCE.to_json()),
                ("checks", Json::Arr(checks.iter().map(ToJson::to_json).collect())),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, report.pretty()) {
        eprintln!("error: could not write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());

    for c in &checks {
        println!("[{}] {} — {}", if c.pass { "PASS" } else { "FAIL" }, c.name, c.detail);
    }
    if !all_pass {
        eprintln!("perf-gate: work-counter regression detected");
        std::process::exit(1);
    }
    println!("perf-gate: all {} checks passed", checks.len());
}
