//! Figure 11: scalability of the **CoTS** framework with increasing thread
//! count (4–256, baseline = 4 threads), 1M-element stream, zipfian
//! α ∈ {1.5, 2.0, 2.5, 3.0}.
//!
//! Paper shape: near-linear (occasionally super-linear) speedup for skewed
//! data, driven by two-level delegation — bulk increments grow with
//! oversubscription; α = 1.5 flattens around 8–16 threads, limited by the
//! summary structure. The *combining factor* column is the
//! hardware-independent signature of that mechanism.

use cots_bench::engines::run_cots;
use cots_bench::harness::{median_run, paper_stream, write_csv, write_json, Scale};
use cots_core::RunStats;

fn main() {
    let scale = Scale::from_env();
    let n = scale.n(1_000_000);
    let threads = [4usize, 8, 16, 32, 64, 128, 256];
    let alphas = [1.5f64, 2.0, 2.5, 3.0];
    println!("Figure 11: CoTS speedup vs threads (baseline 4 threads)");
    println!("stream = {n} elements\n");
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>12} {:>14}",
        "alpha", "threads", "time (s)", "speedup", "combining", "ops/element"
    );

    let mut rows = Vec::new();
    let mut all: Vec<RunStats> = Vec::new();
    for alpha in alphas {
        let stream = paper_stream(n, alpha, 42);
        let mut baseline = None;
        for &t in &threads {
            let stats = median_run(scale.repeats, || run_cots(&stream, t));
            let base = baseline.get_or_insert_with(|| stats.clone());
            let speedup = stats.speedup_vs(base);
            println!(
                "{:>8.1} {:>8} {:>12.4} {:>10.2} {:>12.1} {:>14.4}",
                alpha,
                t,
                stats.elapsed.as_secs_f64(),
                speedup,
                stats.work.combining_factor(),
                stats.work.summary_ops_per_element()
            );
            rows.push(format!(
                "{alpha},{t},{:.6},{speedup:.4},{:.3},{:.6}",
                stats.elapsed.as_secs_f64(),
                stats.work.combining_factor(),
                stats.work.summary_ops_per_element()
            ));
            all.push(stats);
        }
        println!();
    }
    write_csv(
        "fig11",
        "alpha,threads,seconds,speedup_vs_4,combining_factor,summary_ops_per_element",
        &rows,
    );
    write_json("fig11_runs", &all);
}
