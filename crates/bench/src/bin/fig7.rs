//! Figure 7: execution-time surface of the **Shared Structure** design
//! over input size (1M–16M) × threads (1–32), α ∈ {2.0, 2.5, 3.0}.
//!
//! Paper shape: time grows linearly with input length; no improvement from
//! threads at any size.

use cots_bench::engines::run_shared;
use cots_bench::harness::{median_run, paper_stream, write_csv, Scale};
use cots_naive::LockKind;

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = [1, 2, 4, 8, 16]
        .into_iter()
        .map(|m| scale.n(m * 1_000_000))
        .collect();
    let threads = [1usize, 2, 4, 8, 16, 32];
    let alphas = [2.0f64, 2.5, 3.0];
    println!("Figure 7: Shared Structure, time vs input size x threads");
    println!("sizes = {sizes:?}\n");
    let mut rows = Vec::new();
    for alpha in alphas {
        println!("alpha = {alpha}");
        print!("{:>12}", "n \\ threads");
        for &t in &threads {
            print!("{t:>10}");
        }
        println!();
        for &n in &sizes {
            let stream = paper_stream(n, alpha, 42);
            print!("{n:>12}");
            for &t in &threads {
                let stats = median_run(scale.repeats, || {
                    run_shared(&stream, t, LockKind::Mutex, false).0
                });
                print!("{:>10.3}", stats.elapsed.as_secs_f64());
                rows.push(format!(
                    "{alpha},{n},{t},{:.6},{}",
                    stats.elapsed.as_secs_f64(),
                    stats.work.lock_contentions
                ));
            }
            println!();
        }
        println!();
    }
    write_csv("fig7", "alpha,n,threads,seconds,lock_contentions", &rows);
}
