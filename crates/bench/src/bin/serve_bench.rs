//! `serve-bench` — end-to-end wire-path benchmark for `cots-serve`.
//!
//! Measures ingest throughput over real loopback TCP twice — once with no
//! queries in flight and once with a steady query rate — and writes
//! `BENCH_serve.json` at the repo root. The paper's claim under test is
//! that queries ride a published snapshot and therefore never block
//! ingestion: the queried run should stay within ~10% of the quiet run.
//!
//! ```text
//! serve-bench [--items N] [--shards S] [--qps Q] [--seed SEED]
//!             [--alphabet A] [--capacity C] [--connections K]
//!             [--repeats R] [--strict]
//! ```
//!
//! Each pass starts a fresh in-process server on an ephemeral loopback
//! port, replays the same deterministic Zipf(1.5) stream through
//! `cots-load`'s engine, waits for full application (staleness 0), and
//! verifies answers against exact ground truth. With `--repeats R > 1`
//! the best wall-clock of R runs is kept per mode, which filters scheduler
//! noise out of the interference ratio. Exit status is non-zero if any
//! answer violates the Space Saving guarantee, or — with `--strict` —
//! if the queried run falls more than 10% below the quiet run.

use std::path::{Path, PathBuf};
use std::time::Duration;

use cots_core::json::{Json, ToJson};
use cots_serve::loadgen::{self, LoadConfig};
use cots_serve::{Client, LoadReport, Server, ServiceConfig};

/// Queried-run throughput must reach this fraction of the quiet run.
const INTERFERENCE_FLOOR: f64 = 0.90;

struct BenchArgs {
    items: u64,
    shards: usize,
    qps: u64,
    seed: u64,
    alphabet: usize,
    capacity: usize,
    connections: usize,
    repeats: usize,
    strict: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            items: 10_000_000,
            shards: 4,
            qps: 8,
            seed: 42,
            alphabet: 100_000,
            capacity: 1_000,
            connections: 2,
            repeats: 1,
            strict: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: serve-bench [--items N] [--shards S] [--qps Q] [--seed SEED] \
         [--alphabet A] [--capacity C] [--connections K] [--repeats R] [--strict]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        usage();
    })
}

fn bench_args() -> BenchArgs {
    let mut a = BenchArgs::default();
    if let Some(items) = std::env::var("SERVE_BENCH_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        a.items = items;
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--items" => a.items = parse("--items", args.next()),
            "--shards" => a.shards = parse("--shards", args.next()),
            "--qps" => a.qps = parse("--qps", args.next()),
            "--seed" => a.seed = parse("--seed", args.next()),
            "--alphabet" => a.alphabet = parse("--alphabet", args.next()),
            "--capacity" => a.capacity = parse("--capacity", args.next()),
            "--connections" => a.connections = parse("--connections", args.next()),
            "--repeats" => a.repeats = parse("--repeats", args.next()),
            "--strict" => a.strict = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    if a.items == 0 || a.shards == 0 || a.capacity == 0 || a.connections == 0 || a.repeats == 0 {
        eprintln!("--items, --shards, --capacity, --connections and --repeats must be positive");
        usage();
    }
    a
}

/// The repo root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf()
}

/// One full server lifecycle: bind, replay the stream, drain, shut down.
fn run_pass(a: &BenchArgs, qps: u64, check: bool) -> Result<LoadReport, String> {
    let server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            shards: a.shards,
            capacity: a.capacity,
            refresh: Duration::from_millis(20),
            ..Default::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let result = loadgen::run(&LoadConfig {
        addr: addr.clone(),
        items: a.items,
        alphabet: a.alphabet,
        alpha: 1.5,
        seed: a.seed,
        batch: 8_192,
        connections: a.connections,
        qps,
        phi: 0.01,
        check,
        resume_from: 0,
    });

    let stop = Client::connect(&addr)
        .map_err(cots_core::CotsError::from)
        .and_then(|mut c| c.shutdown());
    let joined = server_thread.join();
    let report = result.map_err(|e| format!("load: {e}"))?;
    stop.map_err(|e| format!("shutdown: {e}"))?;
    match joined {
        Ok(Ok(())) => Ok(report),
        Ok(Err(e)) => Err(format!("server: {e}")),
        Err(_) => Err("server thread panicked".into()),
    }
}

/// Best-of-`repeats` by throughput: scheduler noise only ever slows a run
/// down, so the fastest repeat is the cleanest estimate of each mode.
fn best_of(a: &BenchArgs, qps: u64, check: bool) -> Result<LoadReport, String> {
    let mut best: Option<LoadReport> = None;
    let mut checked = None;
    for rep in 0..a.repeats {
        // Only the last repeat pays for the exact-truth check.
        let mut report = run_pass(a, qps, check && rep + 1 == a.repeats)?;
        println!(
            "  qps={qps} repeat {}/{}: {:.2} M items/s ({:.2}s, {} retries, {} queries)",
            rep + 1,
            a.repeats,
            report.meps,
            report.elapsed_secs,
            report.overload_retries,
            report.queries_issued
        );
        if let Some(c) = report.check.take() {
            checked = Some(c);
        }
        if best.as_ref().map_or(true, |b| report.meps > b.meps) {
            best = Some(report);
        }
    }
    let mut best = best.ok_or_else(|| String::from("repeats >= 1"))?;
    best.check = checked;
    Ok(best)
}

fn main() {
    let a = bench_args();
    println!(
        "serve-bench: items={} shards={} qps={} seed={} alphabet={} capacity={} connections={}",
        a.items, a.shards, a.qps, a.seed, a.alphabet, a.capacity, a.connections
    );

    println!("quiet pass (no queries):");
    let quiet = match best_of(&a, 0, false) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-bench: quiet pass failed: {e}");
            std::process::exit(1);
        }
    };
    println!("queried pass ({} QPS, checked against exact truth):", a.qps);
    let queried = match best_of(&a, a.qps, true) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-bench: queried pass failed: {e}");
            std::process::exit(1);
        }
    };

    let check_passed = queried.check.as_ref().is_some_and(|c| c.passed);
    let ratio = if quiet.meps > 0.0 {
        queried.meps / quiet.meps
    } else {
        0.0
    };
    let within = ratio >= INTERFERENCE_FLOOR;

    let report = Json::obj(vec![
        ("items", a.items.to_json()),
        ("alphabet", a.alphabet.to_json()),
        ("alpha", 1.5f64.to_json()),
        ("seed", a.seed.to_json()),
        ("shards", a.shards.to_json()),
        ("capacity", a.capacity.to_json()),
        ("connections", a.connections.to_json()),
        ("qps", a.qps.to_json()),
        ("repeats", a.repeats.to_json()),
        ("quiet", quiet.to_json()),
        ("queried", queried.to_json()),
        (
            "interference",
            Json::obj(vec![
                ("quiet_meps", quiet.meps.to_json()),
                ("queried_meps", queried.meps.to_json()),
                ("ratio", ratio.to_json()),
                ("floor", INTERFERENCE_FLOOR.to_json()),
                ("within_floor", within.to_json()),
            ]),
        ),
        ("check_passed", check_passed.to_json()),
    ]);
    let out_path = repo_root().join("BENCH_serve.json");
    if let Err(e) = std::fs::write(&out_path, report.pretty()) {
        eprintln!("serve-bench: cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());
    println!(
        "quiet {:.2} M items/s, queried {:.2} M items/s, ratio {:.3} (floor {INTERFERENCE_FLOOR}) => {}",
        quiet.meps,
        queried.meps,
        ratio,
        if within { "OK" } else { "BELOW FLOOR" }
    );
    if let Some(check) = &queried.check {
        println!(
            "check: threshold={} truly_frequent={} reported={} missed={} bound_violations={} => {}",
            check.threshold,
            check.truly_frequent,
            check.reported,
            check.missed,
            check.bound_violations,
            if check.passed { "PASS" } else { "FAIL" }
        );
    }
    if !check_passed {
        eprintln!("serve-bench: served answers violated the Space Saving guarantee");
        std::process::exit(1);
    }
    if a.strict && !within {
        eprintln!("serve-bench: query interference exceeded the strict floor");
        std::process::exit(1);
    }
}
