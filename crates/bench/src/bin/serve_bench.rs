//! `serve-bench` — end-to-end wire-path benchmark for `cots-serve`.
//!
//! Measures ingest throughput over real loopback TCP twice — once with no
//! queries in flight and once with a steady query rate — and writes
//! `BENCH_serve.json` at the repo root. The paper's claim under test is
//! that queries ride a published snapshot and therefore never block
//! ingestion: the queried run should stay within ~10% of the quiet run.
//!
//! ```text
//! serve-bench [--items N] [--shards S] [--qps Q] [--seed SEED]
//!             [--alphabet A] [--alpha Z] [--capacity C] [--connections K]
//!             [--io-model reactor|threads] [--repeats R]
//!             [--connection-sweep] [--scaling-sweep] [--wire-sweep]
//!             [--sweep-items N] [--strict]
//! ```
//!
//! Each pass starts a fresh in-process server on an ephemeral loopback
//! port, replays the same deterministic Zipf stream through `cots-load`'s
//! engine, waits for full application (staleness 0), and verifies answers
//! against exact ground truth. With `--repeats R > 1` the best wall-clock
//! of R runs is kept per mode, which filters scheduler noise out of the
//! interference ratio. Exit status is non-zero if any answer violates the
//! Space Saving guarantee, or — with `--strict` — if the queried run
//! falls more than 10% below the quiet run.
//!
//! `--connection-sweep` additionally measures ingest throughput at
//! C ∈ {2, 64, 512, 4096} simultaneously open connections (simulated by
//! a small pool of multiplexing client workers) under the reactor — and
//! under the thread-per-connection model up to C = 512 — and writes a
//! `connections` section into `BENCH_serve.json`. The sweep gates:
//! reactor throughput must reach 0.9× the threaded model at C = 2, and
//! the reactor must sustain C = 512 with a clean accuracy check (the
//! threaded model is allowed to fail there; C = 4096 is recorded but
//! not gating, so fd-limited CI runners cannot flake the gate).
//!
//! `--scaling-sweep` measures quiet ingest throughput over the full
//! shard-count × skew matrix S ∈ {1, 2, 4, 8} × θ ∈ {1.1, 1.5, 2.0} —
//! the paper's scalability experiment on the served path. Results land
//! in a `scaling` section of `BENCH_serve.json` (and the table in
//! `EXPERIMENTS.md` is regenerated from them). The sweep gates only on
//! every cell completing with all items applied; speedup ratios are
//! recorded, not gated, because CI cores vary.
//!
//! `--wire-sweep` runs the same quiet ingest load at 64 connections
//! under both the JSON and the negotiated BIN1 wire encodings and
//! writes a `wire` section into `BENCH_serve.json`. The gate requires
//! binary ingest throughput to beat JSON by ≥ 1.15× with the
//! exact-truth accuracy check passing under both encodings.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cots_core::json::{Json, ToJson};
use cots_core::Threshold;
use cots_datagen::{ExactCounter, StreamSpec};
use cots_serve::loadgen::{self, LoadConfig};
use cots_serve::protocol::QueryReq;
use cots_serve::{Client, IoConfig, IoModel, LoadReport, Server, ServiceConfig, WireMode};

/// Queried-run throughput must reach this fraction of the quiet run.
/// Recalibrated from 0.90 when the BIN1 fast path roughly doubled
/// quiet-pass ingest: a query still costs the same absolute snapshot
/// work on the server, so against a 2× faster baseline the same 8 QPS
/// shows up as a proportionally larger (but structurally unchanged)
/// dip. The floor still catches queries blocking ingest outright.
const INTERFERENCE_FLOOR: f64 = 0.80;

/// Reactor throughput must reach this fraction of the threaded model at
/// the sweep's C = 2 baseline.
const PARITY_FLOOR: f64 = 0.90;

/// Connection counts the sweep visits.
const SWEEP_POINTS: [usize; 4] = [2, 64, 512, 4096];

/// The threaded model is only attempted up to this many connections
/// (beyond it, thread-per-connection is the failure mode under test).
const THREADED_CEILING: usize = 512;

/// The sweep gate requires the reactor to sustain this many connections.
const SUSTAIN_FLOOR: usize = 512;

/// BIN1 ingest throughput must beat the JSON encoding by this factor at
/// the wire sweep's connection count.
const WIRE_FLOOR: f64 = 1.15;

/// Simultaneous ingest connections the wire sweep drives.
const WIRE_CONNECTIONS: usize = 64;

/// Zipf skew parameters the scaling sweep visits (θ in the paper).
const SCALING_ALPHAS: [f64; 3] = [1.1, 1.5, 2.0];

/// Shard counts the scaling sweep visits (worker threads in the paper's
/// thread-scaling experiment).
const SCALING_SHARDS: [usize; 4] = [1, 2, 4, 8];

#[derive(Clone)]
struct BenchArgs {
    items: u64,
    shards: usize,
    qps: u64,
    seed: u64,
    alphabet: usize,
    alpha: f64,
    capacity: usize,
    connections: usize,
    io_model: IoModel,
    repeats: usize,
    connection_sweep: bool,
    scaling_sweep: bool,
    wire_sweep: bool,
    sweep_items: u64,
    strict: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            items: 10_000_000,
            shards: 4,
            qps: 8,
            seed: 42,
            alphabet: 100_000,
            alpha: 1.5,
            capacity: 1_000,
            connections: 2,
            io_model: IoModel::default_for_platform(),
            repeats: 1,
            connection_sweep: false,
            scaling_sweep: false,
            wire_sweep: false,
            sweep_items: 0, // 0 = auto: min(items, 2M)
            strict: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: serve-bench [--items N] [--shards S] [--qps Q] [--seed SEED] \
         [--alphabet A] [--alpha Z] [--capacity C] [--connections K] \
         [--io-model reactor|threads] [--repeats R] [--connection-sweep] \
         [--scaling-sweep] [--wire-sweep] [--sweep-items N] [--strict]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        usage();
    })
}

fn bench_args() -> BenchArgs {
    let mut a = BenchArgs::default();
    if let Some(items) = std::env::var("SERVE_BENCH_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        a.items = items;
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--items" => a.items = parse("--items", args.next()),
            "--shards" => a.shards = parse("--shards", args.next()),
            "--qps" => a.qps = parse("--qps", args.next()),
            "--seed" => a.seed = parse("--seed", args.next()),
            "--alphabet" => a.alphabet = parse("--alphabet", args.next()),
            "--alpha" => a.alpha = parse("--alpha", args.next()),
            "--capacity" => a.capacity = parse("--capacity", args.next()),
            "--connections" => a.connections = parse("--connections", args.next()),
            "--io-model" => a.io_model = parse("--io-model", args.next()),
            "--repeats" => a.repeats = parse("--repeats", args.next()),
            "--connection-sweep" => a.connection_sweep = true,
            "--scaling-sweep" => a.scaling_sweep = true,
            "--wire-sweep" => a.wire_sweep = true,
            "--sweep-items" => a.sweep_items = parse("--sweep-items", args.next()),
            "--strict" => a.strict = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    if a.items == 0 || a.shards == 0 || a.capacity == 0 || a.connections == 0 || a.repeats == 0 {
        eprintln!("--items, --shards, --capacity, --connections and --repeats must be positive");
        usage();
    }
    a
}

/// The repo root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf()
}

/// Bind a fresh server with this bench's service config and I/O model.
fn bind_server(a: &BenchArgs, model: IoModel) -> Result<Server, String> {
    Server::bind_with(
        "127.0.0.1:0",
        ServiceConfig {
            shards: a.shards,
            capacity: a.capacity,
            refresh: Duration::from_millis(20),
            ..Default::default()
        },
        IoConfig {
            model,
            ..IoConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))
}

/// One full server lifecycle: bind, replay the stream, drain, shut down.
fn run_pass(a: &BenchArgs, qps: u64, check: bool, wire: WireMode) -> Result<LoadReport, String> {
    let server = bind_server(a, a.io_model)?;
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let result = loadgen::run(&LoadConfig {
        addr: addr.clone(),
        items: a.items,
        alphabet: a.alphabet,
        alpha: a.alpha,
        seed: a.seed,
        batch: 8_192,
        connections: a.connections,
        qps,
        phi: 0.01,
        check,
        resume_from: 0,
        wire,
    });

    let stop = Client::connect(&addr)
        .map_err(cots_core::CotsError::from)
        .and_then(|mut c| c.shutdown());
    let joined = server_thread.join();
    let report = result.map_err(|e| format!("load: {e}"))?;
    stop.map_err(|e| format!("shutdown: {e}"))?;
    match joined {
        Ok(Ok(())) => Ok(report),
        Ok(Err(e)) => Err(format!("server: {e}")),
        Err(_) => Err("server thread panicked".into()),
    }
}

/// Best-of-`repeats` by throughput: scheduler noise only ever slows a run
/// down, so the fastest repeat is the cleanest estimate of each mode.
fn best_of(a: &BenchArgs, qps: u64, check: bool, wire: WireMode) -> Result<LoadReport, String> {
    let mut best: Option<LoadReport> = None;
    let mut checked = None;
    for rep in 0..a.repeats {
        // Only the last repeat pays for the exact-truth check.
        let mut report = run_pass(a, qps, check && rep + 1 == a.repeats, wire)?;
        println!(
            "  qps={qps} repeat {}/{}: {:.2} M items/s ({:.2}s, {} retries, {} queries)",
            rep + 1,
            a.repeats,
            report.meps,
            report.elapsed_secs,
            report.overload_retries,
            report.queries_issued
        );
        if let Some(c) = report.check.take() {
            checked = Some(c);
        }
        if best.as_ref().map_or(true, |b| report.meps > b.meps) {
            best = Some(report);
        }
    }
    let mut best = best.ok_or_else(|| String::from("repeats >= 1"))?;
    best.check = checked;
    Ok(best)
}

/// What one (connection count, io model) sweep pass measured.
struct SweepOutcome {
    meps: f64,
    elapsed_secs: f64,
    overload_retries: u64,
    check_passed: bool,
}

impl SweepOutcome {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("meps", self.meps.to_json()),
            ("elapsed_secs", self.elapsed_secs.to_json()),
            ("overload_retries", self.overload_retries.to_json()),
            ("check_passed", self.check_passed.to_json()),
        ])
    }
}

/// One sweep point: open `c` connections simultaneously, deal the
/// stream's batches round-robin across them through a small pool of
/// multiplexing workers, wait for quiescence, and check accuracy.
///
/// All `c` sockets are connected before the clock starts and stay open
/// until every batch is acked, so the server really holds `c` live
/// connections for the whole measured window; a worker pool of
/// `min(c, 8)` threads keeps the *client* side from needing thousands of
/// threads (that ceiling is exactly what the server under test must not
/// have).
fn sweep_pass(a: &BenchArgs, model: IoModel, c: usize, items: u64) -> Result<SweepOutcome, String> {
    let server = bind_server(a, model)?;
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let result = sweep_drive(a, &addr, c, items);

    let stop = Client::connect(&addr)
        .map_err(cots_core::CotsError::from)
        .and_then(|mut cl| cl.shutdown());
    let joined = server_thread.join();
    let outcome = result?;
    stop.map_err(|e| format!("shutdown: {e}"))?;
    match joined {
        Ok(Ok(())) => Ok(outcome),
        Ok(Err(e)) => Err(format!("server: {e}")),
        Err(_) => Err("server thread panicked".into()),
    }
}

/// The client side of one sweep pass (server lifecycle handled by the
/// caller so a failed drive still shuts the server down).
fn sweep_drive(a: &BenchArgs, addr: &str, c: usize, items: u64) -> Result<SweepOutcome, String> {
    let stream = StreamSpec::zipf(items as usize, a.alphabet, a.alpha, a.seed).generate();
    // Size batches so every connection sends at least ~2 frames.
    let batch = (items as usize / (c * 2)).clamp(64, 8_192);
    let batches: Vec<&[u64]> = stream.chunks(batch).collect();

    // Open every connection before the clock starts, pacing the storm so
    // it never outruns the listener's (small, fixed) accept backlog —
    // an overflowed backlog means dropped SYNs and seconds-long
    // retransmit stalls that have nothing to do with the server model.
    let mut clients = Vec::with_capacity(c);
    for j in 0..c {
        if j > 0 && j % 64 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        clients.push(Client::connect(addr).map_err(|e| format!("connect {j} of {c}: {e}"))?);
    }
    let workers = c.min(8);
    let mut per_worker: Vec<Vec<(usize, Client)>> = (0..workers).map(|_| Vec::new()).collect();
    for (j, cl) in clients.into_iter().enumerate() {
        per_worker[j % workers].push((j, cl));
    }

    let retries = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| -> Result<(), String> {
        let mut handles = Vec::new();
        for own in per_worker {
            let batches = &batches;
            let retries = &retries;
            handles.push(s.spawn(move || -> Result<(), String> {
                let mut own = own;
                // Connection j sends batches j, j+c, j+2c, … — every
                // connection stays active until the stream runs out.
                for round in 0.. {
                    let mut any = false;
                    for (j, cl) in own.iter_mut() {
                        let Some(b) = batches.get(*j + round * c) else {
                            continue;
                        };
                        any = true;
                        let r = cl.ingest(b).map_err(|e| format!("connection {j}: {e}"))?;
                        retries.fetch_add(r, Ordering::Relaxed);
                    }
                    if !any {
                        break;
                    }
                }
                Ok(())
            }));
        }
        let mut first_err = None;
        for h in handles {
            if let Err(e) = h.join().expect("sweep worker panicked") {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;

    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    loadgen::await_quiescence(&mut client, items).map_err(|e| format!("quiesce: {e}"))?;
    let elapsed_secs = started.elapsed().as_secs_f64();

    // Accuracy under load: full recall of the truly frequent set and the
    // Space Saving envelope for every reported entry.
    let truth = ExactCounter::from_stream(&stream);
    let phi = 0.01;
    let threshold = Threshold::Fraction(phi).resolve(items);
    let truly = truth.frequent(Threshold::Count(threshold));
    let (entries, total, stamp) = client
        .query(QueryReq::Frequent { phi })
        .map_err(|e| format!("query: {e}"))?;
    let missed = truly
        .iter()
        .filter(|(k, _)| !entries.iter().any(|e| e.item == *k))
        .count();
    let bound_violations = entries
        .iter()
        .filter(|e| {
            let t = truth.count(&e.item);
            !(e.count >= t && e.count - e.error <= t)
        })
        .count();
    let check_passed =
        total == items && stamp.staleness == 0 && missed == 0 && bound_violations == 0;

    Ok(SweepOutcome {
        meps: items as f64 / elapsed_secs.max(1e-9) / 1e6,
        elapsed_secs,
        overload_retries: retries.into_inner(),
        check_passed,
    })
}

/// Best-of-`repeats` sweep pass, mirroring [`best_of`]: the fastest
/// repeat estimates throughput, but the accuracy check must pass on
/// *every* repeat.
fn sweep_best_of(
    a: &BenchArgs,
    model: IoModel,
    c: usize,
    items: u64,
) -> Result<SweepOutcome, String> {
    let mut best: Option<SweepOutcome> = None;
    let mut all_checks = true;
    for _ in 0..a.repeats {
        let o = sweep_pass(a, model, c, items)?;
        all_checks &= o.check_passed;
        if best.as_ref().map_or(true, |b| o.meps > b.meps) {
            best = Some(o);
        }
    }
    let mut best = best.ok_or_else(|| String::from("repeats >= 1"))?;
    best.check_passed = all_checks;
    Ok(best)
}

/// Run the full sweep and build the `connections` JSON section plus the
/// gate verdict. Returns `(section, gate_passed)`.
fn connection_sweep(a: &BenchArgs) -> (Json, bool) {
    let items = if a.sweep_items > 0 {
        a.sweep_items
    } else {
        a.items.min(2_000_000)
    };
    let mut points = Vec::new();
    let mut parity_ratio: Option<f64> = None;
    let mut sustained = false;
    let mut gate_passed = true;

    for c in SWEEP_POINTS {
        println!("connection sweep: C={c} ({items} items, best of {})", a.repeats);
        let reactor = sweep_best_of(a, IoModel::Reactor, c, items);
        match &reactor {
            Ok(o) => println!(
                "  reactor:  {:.2} M items/s ({:.2}s, {} retries, check {})",
                o.meps,
                o.elapsed_secs,
                o.overload_retries,
                if o.check_passed { "PASS" } else { "FAIL" }
            ),
            Err(e) => println!("  reactor:  FAILED: {e}"),
        }
        let threaded = if c <= THREADED_CEILING {
            let t = sweep_best_of(a, IoModel::Threads, c, items);
            match &t {
                Ok(o) => println!(
                    "  threaded: {:.2} M items/s ({:.2}s, {} retries, check {})",
                    o.meps,
                    o.elapsed_secs,
                    o.overload_retries,
                    if o.check_passed { "PASS" } else { "FAIL" }
                ),
                Err(e) => println!("  threaded: FAILED (allowed beyond C=2): {e}"),
            }
            Some(t)
        } else {
            println!("  threaded: skipped (thread-per-connection ceiling is the failure under test)");
            None
        };

        if c == 2 {
            if let (Ok(r), Some(Ok(t))) = (&reactor, &threaded) {
                if t.meps > 0.0 {
                    parity_ratio = Some(r.meps / t.meps);
                }
            }
        }
        if c == SUSTAIN_FLOOR {
            sustained = reactor.as_ref().map(|o| o.check_passed).unwrap_or(false);
        }
        // The gate covers every reactor point up to the sustain floor.
        if c <= SUSTAIN_FLOOR && !reactor.as_ref().map(|o| o.check_passed).unwrap_or(false) {
            gate_passed = false;
        }

        points.push(Json::obj(vec![
            ("connections", c.to_json()),
            (
                "reactor",
                match &reactor {
                    Ok(o) => o.to_json(),
                    Err(e) => Json::obj(vec![("error", e.to_json())]),
                },
            ),
            (
                "threaded",
                match &threaded {
                    Some(Ok(o)) => o.to_json(),
                    Some(Err(e)) => Json::obj(vec![("error", e.to_json())]),
                    None => Json::Null,
                },
            ),
        ]));
    }

    let parity_ok = parity_ratio.map(|r| r >= PARITY_FLOOR).unwrap_or(false);
    if !parity_ok || !sustained {
        gate_passed = false;
    }
    println!(
        "sweep gate: parity {} (ratio {}, floor {PARITY_FLOOR}), sustained C={SUSTAIN_FLOOR} {} => {}",
        if parity_ok { "OK" } else { "FAIL" },
        parity_ratio
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "n/a".into()),
        if sustained { "OK" } else { "FAIL" },
        if gate_passed { "PASS" } else { "FAIL" }
    );

    let section = Json::obj(vec![
        ("sweep_items", items.to_json()),
        ("points", Json::Arr(points)),
        (
            "gate",
            Json::obj(vec![
                ("parity_ratio", parity_ratio.to_json()),
                ("parity_floor", PARITY_FLOOR.to_json()),
                ("sustain_connections", SUSTAIN_FLOOR.to_json()),
                ("sustained", sustained.to_json()),
                ("passed", gate_passed.to_json()),
            ]),
        ),
    ]);
    (section, gate_passed)
}

/// Run the shards × skew scaling matrix and build the `scaling` JSON
/// section plus the gate verdict. Returns `(section, gate_passed)`.
///
/// Each cell is a quiet (no queries) best-of-`repeats` pass at that
/// shard count and Zipf θ; the gate only requires every cell to
/// complete, because absolute speedups depend on the runner's cores.
fn scaling_sweep(a: &BenchArgs) -> (Json, bool) {
    let items = if a.sweep_items > 0 {
        a.sweep_items
    } else {
        a.items.min(2_000_000)
    };
    let mut points = Vec::new();
    let mut gate_passed = true;

    for &alpha in &SCALING_ALPHAS {
        let mut base_meps: Option<f64> = None;
        for &shards in &SCALING_SHARDS {
            let cell = BenchArgs {
                items,
                shards,
                alpha,
                ..a.clone()
            };
            println!(
                "scaling sweep: theta={alpha} shards={shards} ({items} items, best of {})",
                a.repeats
            );
            let outcome = best_of(&cell, 0, false, WireMode::Auto);
            let (meps, elapsed, speedup) = match &outcome {
                Ok(r) => {
                    if shards == 1 {
                        base_meps = Some(r.meps);
                    }
                    let speedup = base_meps.filter(|&b| b > 0.0).map(|b| r.meps / b);
                    println!(
                        "  {:.2} M items/s ({:.2}s{})",
                        r.meps,
                        r.elapsed_secs,
                        speedup
                            .map(|s| format!(", {s:.2}x vs 1 shard"))
                            .unwrap_or_default()
                    );
                    (Some(r.meps), Some(r.elapsed_secs), speedup)
                }
                Err(e) => {
                    println!("  FAILED: {e}");
                    gate_passed = false;
                    (None, None, None)
                }
            };
            points.push(Json::obj(vec![
                ("alpha", alpha.to_json()),
                ("shards", shards.to_json()),
                ("meps", meps.to_json()),
                ("elapsed_secs", elapsed.to_json()),
                ("speedup_vs_one_shard", speedup.to_json()),
            ]));
        }
    }

    println!(
        "scaling gate: all cells completed => {}",
        if gate_passed { "PASS" } else { "FAIL" }
    );
    let section = Json::obj(vec![
        ("sweep_items", items.to_json()),
        ("alphas", Json::Arr(SCALING_ALPHAS.iter().map(|a| a.to_json()).collect())),
        ("shards", Json::Arr(SCALING_SHARDS.iter().map(|s| s.to_json()).collect())),
        ("points", Json::Arr(points)),
        ("gate", Json::obj(vec![("passed", gate_passed.to_json())])),
    ]);
    (section, gate_passed)
}

/// Run the same quiet ingest load at [`WIRE_CONNECTIONS`] connections
/// under both wire encodings and build the `wire` JSON section plus the
/// gate verdict. Returns `(section, gate_passed)`.
///
/// The gate requires the BIN1 run to beat the JSON run by
/// [`WIRE_FLOOR`]× on throughput *and* both runs to pass the
/// exact-truth accuracy check — a faster encoding that corrupts counts
/// would be worse than no encoding at all.
fn wire_sweep(a: &BenchArgs) -> (Json, bool) {
    let items = if a.sweep_items > 0 {
        a.sweep_items
    } else {
        a.items.min(2_000_000)
    };
    let cell = BenchArgs {
        items,
        connections: WIRE_CONNECTIONS,
        ..a.clone()
    };
    println!("wire sweep: C={WIRE_CONNECTIONS} ({items} items, best of {})", a.repeats);

    let mut gate_passed = true;
    let run = |wire: WireMode, label: &str| -> Option<LoadReport> {
        match best_of(&cell, 0, true, wire) {
            Ok(r) => {
                let codec = r
                    .wire
                    .as_ref()
                    .map(|w| {
                        format!(
                            ", encode p50={}ns, decode p50={}ns",
                            w.encode_p50_ns, w.decode_p50_ns
                        )
                    })
                    .unwrap_or_default();
                println!(
                    "  {label}: {:.2} M items/s ({:.2}s, {} retries{codec}, check {})",
                    r.meps,
                    r.elapsed_secs,
                    r.overload_retries,
                    if r.check.as_ref().is_some_and(|c| c.passed) {
                        "PASS"
                    } else {
                        "FAIL"
                    }
                );
                Some(r)
            }
            Err(e) => {
                println!("  {label}: FAILED: {e}");
                None
            }
        }
    };
    let json = run(WireMode::Json, "json  ");
    let binary = run(WireMode::Binary, "binary");

    let accuracy_passed = [&json, &binary]
        .iter()
        .all(|r| r.as_ref().is_some_and(|r| r.check.as_ref().is_some_and(|c| c.passed)));
    let ratio = match (&json, &binary) {
        (Some(j), Some(b)) if j.meps > 0.0 => Some(b.meps / j.meps),
        _ => None,
    };
    let ratio_ok = ratio.is_some_and(|r| r >= WIRE_FLOOR);
    if !ratio_ok || !accuracy_passed {
        gate_passed = false;
    }
    println!(
        "wire gate: ratio {} (floor {WIRE_FLOOR}), accuracy {} => {}",
        ratio.map(|r| format!("{r:.3}")).unwrap_or_else(|| "n/a".into()),
        if accuracy_passed { "OK" } else { "FAIL" },
        if gate_passed { "PASS" } else { "FAIL" }
    );

    let mode_json = |r: &Option<LoadReport>| match r {
        Some(r) => r.to_json(),
        None => Json::Null,
    };
    let section = Json::obj(vec![
        ("sweep_items", items.to_json()),
        ("connections", WIRE_CONNECTIONS.to_json()),
        ("json", mode_json(&json)),
        ("binary", mode_json(&binary)),
        (
            "gate",
            Json::obj(vec![
                ("ratio", ratio.to_json()),
                ("floor", WIRE_FLOOR.to_json()),
                ("accuracy_passed", accuracy_passed.to_json()),
                ("passed", gate_passed.to_json()),
            ]),
        ),
    ]);
    (section, gate_passed)
}

fn main() {
    let a = bench_args();
    println!(
        "serve-bench: items={} shards={} qps={} seed={} alphabet={} alpha={} capacity={} \
         connections={} io-model={}",
        a.items, a.shards, a.qps, a.seed, a.alphabet, a.alpha, a.capacity, a.connections, a.io_model
    );

    println!("quiet pass (no queries):");
    let quiet = match best_of(&a, 0, false, WireMode::Auto) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-bench: quiet pass failed: {e}");
            std::process::exit(1);
        }
    };
    println!("queried pass ({} QPS, checked against exact truth):", a.qps);
    let queried = match best_of(&a, a.qps, true, WireMode::Auto) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-bench: queried pass failed: {e}");
            std::process::exit(1);
        }
    };

    let check_passed = queried.check.as_ref().is_some_and(|c| c.passed);
    let ratio = if quiet.meps > 0.0 {
        queried.meps / quiet.meps
    } else {
        0.0
    };
    let within = ratio >= INTERFERENCE_FLOOR;

    let (sweep_section, sweep_gate_passed) = if a.connection_sweep {
        let (section, passed) = connection_sweep(&a);
        (Some(section), passed)
    } else {
        (None, true)
    };
    let (scaling_section, scaling_gate_passed) = if a.scaling_sweep {
        let (section, passed) = scaling_sweep(&a);
        (Some(section), passed)
    } else {
        (None, true)
    };
    let (wire_section, wire_gate_passed) = if a.wire_sweep {
        let (section, passed) = wire_sweep(&a);
        (Some(section), passed)
    } else {
        (None, true)
    };

    let report = Json::obj(vec![
        ("items", a.items.to_json()),
        ("alphabet", a.alphabet.to_json()),
        ("alpha", a.alpha.to_json()),
        ("seed", a.seed.to_json()),
        ("shards", a.shards.to_json()),
        ("capacity", a.capacity.to_json()),
        ("load_connections", a.connections.to_json()),
        ("io_model", a.io_model.to_string().to_json()),
        ("qps", a.qps.to_json()),
        ("repeats", a.repeats.to_json()),
        ("quiet", quiet.to_json()),
        ("queried", queried.to_json()),
        (
            "interference",
            Json::obj(vec![
                ("quiet_meps", quiet.meps.to_json()),
                ("queried_meps", queried.meps.to_json()),
                ("ratio", ratio.to_json()),
                ("floor", INTERFERENCE_FLOOR.to_json()),
                ("within_floor", within.to_json()),
            ]),
        ),
        ("connections", sweep_section.to_json()),
        ("scaling", scaling_section.to_json()),
        ("wire", wire_section.to_json()),
        ("check_passed", check_passed.to_json()),
    ]);
    let out_path = repo_root().join("BENCH_serve.json");
    if let Err(e) = std::fs::write(&out_path, report.pretty()) {
        eprintln!("serve-bench: cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());
    println!(
        "quiet {:.2} M items/s, queried {:.2} M items/s, ratio {:.3} (floor {INTERFERENCE_FLOOR}) => {}",
        quiet.meps,
        queried.meps,
        ratio,
        if within { "OK" } else { "BELOW FLOOR" }
    );
    if let Some(check) = &queried.check {
        println!(
            "check: threshold={} truly_frequent={} reported={} missed={} bound_violations={} => {}",
            check.threshold,
            check.truly_frequent,
            check.reported,
            check.missed,
            check.bound_violations,
            if check.passed { "PASS" } else { "FAIL" }
        );
    }
    if !check_passed {
        eprintln!("serve-bench: served answers violated the Space Saving guarantee");
        std::process::exit(1);
    }
    if a.strict && !within {
        eprintln!("serve-bench: query interference exceeded the strict floor");
        std::process::exit(1);
    }
    if !sweep_gate_passed {
        eprintln!("serve-bench: connection sweep gate failed");
        std::process::exit(1);
    }
    if !scaling_gate_passed {
        eprintln!("serve-bench: scaling sweep gate failed");
        std::process::exit(1);
    }
    if !wire_gate_passed {
        eprintln!("serve-bench: wire sweep gate failed");
        std::process::exit(1);
    }
}
