//! Figure 4: time breakdown of the **Independent Structures** design —
//! percentage of time in *Counting* versus *Merge* — for threads 1–32 and
//! zipfian α ∈ {2.0, 2.5, 3.0}, query/merge every 50 000 elements.
//!
//! Paper shape: counting scales down with threads while the merge share
//! grows steeply, dominating at high thread counts.

use cots_bench::engines::run_independent;
use cots_bench::harness::{paper_stream, write_csv, write_json, Scale, MERGE_EVERY};
use cots_naive::MergeStrategy;
use cots_profiling::{render_breakdown_table, Breakdown};

fn main() {
    let scale = Scale::from_env();
    let n = scale.n(5_000_000);
    let threads = [1usize, 2, 4, 8, 16, 32];
    let alphas = [2.0f64, 2.5, 3.0];
    println!("Figure 4: Independent Structures breakdown (Counting vs Merge)");
    println!("stream = {n} elements, query every {MERGE_EVERY}\n");

    let mut rows = Vec::new();
    let mut reports: Vec<(f64, Vec<Breakdown>)> = Vec::new();
    for alpha in alphas {
        let stream = paper_stream(n, alpha, 42);
        let mut breakdowns = Vec::new();
        for &t in &threads {
            let (_, phase_times) =
                run_independent(&stream, t, MergeStrategy::Serial, Some(MERGE_EVERY), true);
            let b = Breakdown::aggregate(t, &phase_times);
            rows.push(format!("{alpha},{}", b.csv_row()));
            breakdowns.push(b);
        }
        println!("alpha = {alpha}");
        println!("{}", render_breakdown_table(&breakdowns));
        reports.push((alpha, breakdowns));
    }
    write_csv(
        "fig4",
        &format!("alpha,{}", cots_profiling::Breakdown::csv_header()),
        &rows,
    );
    write_json("fig4_breakdowns", &reports);
}
