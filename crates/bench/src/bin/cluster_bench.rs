//! `cluster-bench` — federation scaling benchmark for `cots-cluster`.
//!
//! Measures end-to-end ingest throughput (first frame to *all items
//! applied on every member*) through one in-process `cots-coord`
//! coordinator fronting 1, 2, and 4 in-process members over loopback,
//! and writes `BENCH_cluster.json` at the repo root.
//!
//! ```text
//! cluster-bench [--items N] [--batch B] [--alphabet A] [--alpha Z]
//!               [--capacity C] [--connections K] [--shards S] [--queue-batches Q]
//!               [--coalesce K] [--repeats R] [--scaling-floor F] [--parity-floor F]
//! ```
//!
//! Every member runs with a durable WAL at `--fsync always`, which is
//! the deployment the cluster exists for: each member's worker blocks
//! on an fsync per drain group, and those stalls overlap *across*
//! members while a single member must eat them serially. That overlap
//! is measurable even on a single-core host — the paper's thesis
//! (parallelism hides per-partition stalls) applied to durability
//! instead of CPU.
//!
//! Two gates, both fatal:
//! * **scaling** — 2-member throughput ≥ `--scaling-floor` (default
//!   1.5×) the 1-member coordinator throughput;
//! * **parity** — the coordinator fronting a single member must reach
//!   `--parity-floor` (default 0.7×) of a *direct* single server with
//!   identical durability, and the final federated answer check
//!   against exact ground truth must pass at every point.
//!
//! The 4-member point is recorded but not gating: on small hosts the
//! extra wire hops eventually outweigh additional overlap, which is
//! honest data worth keeping, not a regression.

use std::path::{Path, PathBuf};
use std::time::Duration;

use cots_core::json::{Json, ToJson};
use cots_serve::loadgen::{self, LoadConfig};
use cots_serve::persistence::PersistOptions;
use cots_serve::{Client, IoConfig, LoadReport, Server, ServiceConfig};

use cots_cluster::{CoordConfig, CoordServer};
use cots_persist::FsyncPolicy;

/// Member counts visited, in order. 1 doubles as the scaling baseline.
const MEMBER_POINTS: [usize; 3] = [1, 2, 4];

struct BenchArgs {
    items: u64,
    batch: usize,
    alphabet: usize,
    alpha: f64,
    seed: u64,
    capacity: usize,
    connections: usize,
    shards: usize,
    queue_batches: usize,
    coalesce: usize,
    repeats: usize,
    scaling_floor: f64,
    parity_floor: f64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            items: 800_000,
            batch: 4_096,
            alphabet: 50_000,
            alpha: 1.5,
            seed: 42,
            capacity: 1_000,
            connections: 4,
            shards: 1,
            queue_batches: 2,
            coalesce: 8_192,
            repeats: 3,
            scaling_floor: 1.5,
            parity_floor: 0.7,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: cluster-bench [--items N] [--batch B] [--alphabet A] [--alpha Z] \
         [--seed S] [--capacity C] [--connections K] [--shards S] [--queue-batches Q] \
         [--coalesce K] [--repeats R] [--scaling-floor F] [--parity-floor F]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        usage();
    })
}

fn bench_args() -> BenchArgs {
    let mut a = BenchArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--items" => a.items = parse("--items", args.next()),
            "--batch" => a.batch = parse("--batch", args.next()),
            "--alphabet" => a.alphabet = parse("--alphabet", args.next()),
            "--alpha" => a.alpha = parse("--alpha", args.next()),
            "--seed" => a.seed = parse("--seed", args.next()),
            "--capacity" => a.capacity = parse("--capacity", args.next()),
            "--connections" => a.connections = parse("--connections", args.next()),
            "--shards" => a.shards = parse("--shards", args.next()),
            "--queue-batches" => a.queue_batches = parse("--queue-batches", args.next()),
            "--coalesce" => a.coalesce = parse("--coalesce", args.next()),
            "--repeats" => a.repeats = parse("--repeats", args.next()),
            "--scaling-floor" => a.scaling_floor = parse("--scaling-floor", args.next()),
            "--parity-floor" => a.parity_floor = parse("--parity-floor", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    if a.items == 0 || a.batch == 0 || a.capacity == 0 || a.connections == 0 || a.repeats == 0 {
        eprintln!("--items, --batch, --capacity, --connections and --repeats must be positive");
        usage();
    }
    a
}

/// The repo root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf()
}

/// Bind one durable member on an ephemeral loopback port.
fn bind_member(a: &BenchArgs, dir: PathBuf) -> Result<Server, String> {
    let mut persist = PersistOptions::new(dir);
    persist.fsync = FsyncPolicy::Always;
    // Keep checkpoints out of the measured window; the WAL alone
    // carries durability for a run this short.
    persist.checkpoint_every = Duration::from_secs(120);
    Server::bind_with(
        "127.0.0.1:0",
        ServiceConfig {
            shards: a.shards,
            capacity: a.capacity,
            refresh: Duration::from_millis(10),
            queue_batches: a.queue_batches,
            persist: Some(persist),
            ..Default::default()
        },
        IoConfig::default(),
    )
    .map_err(|e| format!("bind member: {e}"))
}

/// A started member: its server thread and its scratch directory.
struct MemberProc {
    addr: String,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
    dir: PathBuf,
}

fn start_members(a: &BenchArgs, n: usize, pass: &str) -> Result<Vec<MemberProc>, String> {
    let scratch = std::env::temp_dir().join(format!("cots-cluster-bench-{}", std::process::id()));
    let mut members = Vec::with_capacity(n);
    for i in 0..n {
        let dir = scratch.join(format!("{pass}-m{i}"));
        let _ = std::fs::remove_dir_all(&dir);
        let server = bind_member(a, dir.clone())?;
        let addr = server.local_addr().to_string();
        members.push(MemberProc {
            addr,
            thread: std::thread::spawn(move || server.run()),
            dir,
        });
    }
    Ok(members)
}

/// Shut down and join a set of members, removing their scratch dirs.
fn stop_members(members: Vec<MemberProc>) -> Result<(), String> {
    for m in members {
        Client::connect(&m.addr)
            .map_err(cots_core::CotsError::from)
            .and_then(|mut c| c.shutdown())
            .map_err(|e| format!("member shutdown: {e}"))?;
        match m.thread.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Err(format!("member: {e}")),
            Err(_) => return Err("member thread panicked".into()),
        }
        let _ = std::fs::remove_dir_all(&m.dir);
    }
    Ok(())
}

/// Drive one load run against `addr` and return the report.
fn drive(a: &BenchArgs, addr: &str, check: bool) -> Result<LoadReport, String> {
    loadgen::run(&LoadConfig {
        addr: addr.to_string(),
        items: a.items,
        alphabet: a.alphabet,
        alpha: a.alpha,
        seed: a.seed,
        resume_from: 0,
        batch: a.batch,
        connections: a.connections,
        qps: 0,
        phi: 0.01,
        check,
        wire: cots_serve::WireMode::Auto,
    })
    .map_err(|e| format!("load: {e}"))
}

/// One coordinator pass at `n` members: fresh members, fresh
/// coordinator, one measured load run, clean teardown.
fn coord_pass(a: &BenchArgs, n: usize, rep: usize, check: bool) -> Result<LoadReport, String> {
    let members = start_members(a, n, &format!("c{n}r{rep}"))?;
    let config = CoordConfig {
        members: members.iter().map(|m| m.addr.clone()).collect(),
        capacity: a.capacity,
        pull_interval: Duration::from_millis(20),
        coalesce_keys: a.coalesce,
        ..Default::default()
    };
    let coord = CoordServer::bind("127.0.0.1:0", config).map_err(|e| format!("bind coord: {e}"))?;
    let addr = coord.local_addr().to_string();
    let coord_thread = std::thread::spawn(move || coord.run());

    let result = drive(a, &addr, check);

    let stop = Client::connect(&addr)
        .map_err(cots_core::CotsError::from)
        .and_then(|mut c| c.shutdown());
    let joined = coord_thread.join();
    let stopped = stop_members(members);
    let report = result?;
    stop.map_err(|e| format!("coord shutdown: {e}"))?;
    match joined {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(format!("coord: {e}")),
        Err(_) => return Err("coord thread panicked".into()),
    }
    stopped?;
    Ok(report)
}

/// The no-coordinator baseline: the same durable member driven directly.
fn direct_pass(a: &BenchArgs, rep: usize, check: bool) -> Result<LoadReport, String> {
    let mut members = start_members(a, 1, &format!("d{rep}"))?;
    let addr = members[0].addr.clone();
    let result = drive(a, &addr, check);
    let stopped = stop_members(std::mem::take(&mut members));
    let report = result?;
    stopped?;
    Ok(report)
}

/// Best-of-`repeats` by throughput; the exact-truth check runs on the
/// last repeat only (it replays the stream into an exact counter).
fn best_of<F>(a: &BenchArgs, label: &str, mut pass: F) -> Result<LoadReport, String>
where
    F: FnMut(usize, bool) -> Result<LoadReport, String>,
{
    let mut best: Option<LoadReport> = None;
    let mut checked = None;
    for rep in 0..a.repeats {
        let mut report = pass(rep, rep + 1 == a.repeats)?;
        println!(
            "  {label} repeat {}/{}: {:.3} M items/s ({:.2}s, {} retries)",
            rep + 1,
            a.repeats,
            report.meps,
            report.elapsed_secs,
            report.overload_retries
        );
        if let Some(c) = report.check.take() {
            if !c.passed {
                println!(
                    "  {label} CHECK FAILED: {} truly frequent, {} reported, {} missed, \
                     {} bound violations",
                    c.truly_frequent, c.reported, c.missed, c.bound_violations
                );
            }
            checked = Some(c);
        }
        if best.as_ref().map_or(true, |b| report.meps > b.meps) {
            best = Some(report);
        }
    }
    let mut best = best.ok_or_else(|| String::from("repeats >= 1"))?;
    best.check = checked;
    Ok(best)
}

fn main() {
    let a = bench_args();
    println!(
        "cluster-bench: items={} batch={} alphabet={} alpha={} capacity={} connections={} \
         queue-batches={} repeats={} (members at --fsync always)",
        a.items, a.batch, a.alphabet, a.alpha, a.capacity, a.connections, a.queue_batches, a.repeats
    );

    println!("direct baseline (no coordinator):");
    let direct = match best_of(&a, "direct", |rep, check| direct_pass(&a, rep, check)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cluster-bench: direct baseline failed: {e}");
            std::process::exit(1);
        }
    };

    let mut points = Vec::new();
    let mut by_members = std::collections::BTreeMap::new();
    let mut checks_passed = direct.check.as_ref().is_some_and(|c| c.passed);
    for n in MEMBER_POINTS {
        println!("coordinator fronting {n} member(s):");
        let report = match best_of(&a, &format!("{n}m"), |rep, check| {
            coord_pass(&a, n, rep, check)
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cluster-bench: {n}-member pass failed: {e}");
                std::process::exit(1);
            }
        };
        checks_passed &= report.check.as_ref().is_some_and(|c| c.passed);
        by_members.insert(n, report.meps);
        points.push(Json::obj(vec![
            ("members", n.to_json()),
            ("report", report.to_json()),
        ]));
    }

    let one = by_members.get(&1).copied().unwrap_or(0.0);
    let two = by_members.get(&2).copied().unwrap_or(0.0);
    let scaling_ratio = if one > 0.0 { two / one } else { 0.0 };
    let parity_ratio = if direct.meps > 0.0 {
        one / direct.meps
    } else {
        0.0
    };
    let scaling_ok = scaling_ratio >= a.scaling_floor;
    let parity_ok = parity_ratio >= a.parity_floor;
    let passed = scaling_ok && parity_ok && checks_passed;

    let report = Json::obj(vec![
        ("items", a.items.to_json()),
        ("batch", a.batch.to_json()),
        ("alphabet", a.alphabet.to_json()),
        ("alpha", a.alpha.to_json()),
        ("seed", a.seed.to_json()),
        ("capacity", a.capacity.to_json()),
        ("connections", a.connections.to_json()),
        ("shards", a.shards.to_json()),
        ("coalesce", a.coalesce.to_json()),
        ("queue_batches", a.queue_batches.to_json()),
        ("repeats", a.repeats.to_json()),
        ("fsync", "always".to_json()),
        ("direct", direct.to_json()),
        ("points", Json::Arr(points)),
        (
            "gate",
            Json::obj(vec![
                ("scaling_ratio", scaling_ratio.to_json()),
                ("scaling_floor", a.scaling_floor.to_json()),
                ("parity_ratio", parity_ratio.to_json()),
                ("parity_floor", a.parity_floor.to_json()),
                ("checks_passed", checks_passed.to_json()),
                ("passed", passed.to_json()),
            ]),
        ),
    ]);
    let out_path = repo_root().join("BENCH_cluster.json");
    if let Err(e) = std::fs::write(&out_path, report.pretty()) {
        eprintln!("cluster-bench: cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());
    println!(
        "direct {:.3} M items/s | 1m {:.3} | 2m {:.3} | 4m {:.3}",
        direct.meps,
        one,
        two,
        by_members.get(&4).copied().unwrap_or(0.0)
    );
    println!(
        "gates: scaling {scaling_ratio:.3} (floor {}) {} | parity {parity_ratio:.3} (floor {}) {} \
         | checks {} => {}",
        a.scaling_floor,
        if scaling_ok { "OK" } else { "FAIL" },
        a.parity_floor,
        if parity_ok { "OK" } else { "FAIL" },
        if checks_passed { "PASS" } else { "FAIL" },
        if passed { "PASS" } else { "FAIL" }
    );
    if !passed {
        eprintln!("cluster-bench: gate failed");
        std::process::exit(1);
    }
}
