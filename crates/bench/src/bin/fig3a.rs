//! Figure 3(a): speedup of the naive **Independent Structures** design
//! versus thread count, with a query (and therefore a merge) every 50 000
//! elements, for zipfian α ∈ {1.5, 2.0, 2.5, 3.0}; stream of 5M elements.
//!
//! Paper shape: the design does not scale — speedup stays near (or below) 1
//! as threads grow, because the merge cost grows with the thread count.

use cots_bench::engines::run_independent;
use cots_bench::harness::{median_run, paper_stream, write_csv, write_json, Scale, MERGE_EVERY};
use cots_core::RunStats;
use cots_naive::MergeStrategy;

fn main() {
    let scale = Scale::from_env();
    let n = scale.n(5_000_000);
    let threads = [1usize, 2, 4, 8, 16, 32];
    let alphas = [1.5f64, 2.0, 2.5, 3.0];
    println!("Figure 3(a): Independent Structures, serial merge, query every {MERGE_EVERY}");
    println!("stream = {n} elements\n");
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>14}",
        "alpha", "threads", "time (s)", "speedup", "merged ctrs"
    );

    let mut rows = Vec::new();
    let mut all: Vec<RunStats> = Vec::new();
    for alpha in alphas {
        let stream = paper_stream(n, alpha, 42);
        let mut baseline = None;
        for &t in &threads {
            let stats = median_run(scale.repeats, || {
                run_independent(&stream, t, MergeStrategy::Serial, Some(MERGE_EVERY), false).0
            });
            let base = baseline.get_or_insert_with(|| stats.clone());
            let speedup = stats.speedup_vs(base);
            println!(
                "{:>8.1} {:>8} {:>12.4} {:>10.2} {:>14}",
                alpha,
                t,
                stats.elapsed.as_secs_f64(),
                speedup,
                stats.work.merged_counters
            );
            rows.push(format!(
                "{alpha},{t},{:.6},{speedup:.4},{},{}",
                stats.elapsed.as_secs_f64(),
                stats.work.merges,
                stats.work.merged_counters
            ));
            all.push(stats);
        }
        println!();
    }
    write_csv(
        "fig3a",
        "alpha,threads,seconds,speedup_vs_1,merges,merged_counters",
        &rows,
    );
    write_json("fig3a_runs", &all);
}
