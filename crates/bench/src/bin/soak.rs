//! Soak test: repeatedly runs the highest-churn workload (two alternating
//! keys at capacity 2 — constant minimum-bucket turnover) under a watchdog
//! that dumps the engine state and exits non-zero on any stall. This is
//! the harness that caught the minimum-advancement use-after-retire race
//! during development; it stays in the tree as a regression soak.
//!
//! `SOAK_ITERS` controls the iteration count (default 500).
use cots::CotsEngine;
use cots_core::CotsConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let iters: u64 = std::env::var("SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    for iter in 0..iters {
        let e = Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(2).unwrap()).unwrap());
        let progress = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        // watchdog
        {
            let e = e.clone();
            let progress = progress.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut last = 0;
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(5));
                    if done.load(Ordering::Acquire) == 1 {
                        return;
                    }
                    let now = progress.load(Ordering::Acquire);
                    if now == last {
                        eprintln!("STALL at iter {iter}, progress {now}");
                        eprintln!("{}", e.debug_dump());
                        std::process::exit(2);
                    }
                    last = now;
                }
            });
        }
        std::thread::scope(|s| {
            for t in 0..6u64 {
                let e = e.clone();
                let progress = progress.clone();
                s.spawn(move || {
                    for i in 0..8_000u64 {
                        e.delegate((t + i) % 2);
                        if i % 512 == 0 {
                            progress.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        e.finalize();
        e.check_quiescent_invariants();
        done.store(1, Ordering::Release);
        if iter % 50 == 0 {
            println!("iter {iter} ok");
        }
    }
    println!("no stall in {iters} iterations");
}
