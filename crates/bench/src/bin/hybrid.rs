//! §4.4's dismissed **Hybrid** design, measured: per-thread counter caches
//! in front of the shared locked structure, across the skew range. The
//! paper's argument — "on the two extremes of the input distribution this
//! technique would degenerate into one or the other parent technique" — is
//! checked by reporting, per α, the fraction of elements absorbed by the
//! local caches (its independent-design face) versus sent to the shared
//! structure (its shared-design face), alongside wall-clock against both
//! parents.

use std::time::Instant;

use cots_bench::engines::{run_independent, run_shared};
use cots_bench::harness::{median_run, paper_stream, write_csv, Scale, MERGE_EVERY};
use cots_core::{QueryableSummary, SummaryConfig};
use cots_datagen::partition::chunked;
use cots_naive::{HybridSpaceSaving, LockKind, MergeStrategy};

fn run_hybrid(stream: &[u64], threads: usize, cache_keys: usize, flush_every: u64) -> (f64, f64) {
    let engine = HybridSpaceSaving::<u64>::new(
        SummaryConfig::with_capacity(cots_bench::harness::CAPACITY).unwrap(),
        LockKind::Mutex,
        cache_keys,
        flush_every,
    )
    .unwrap();
    let chunks = chunked(stream, threads);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for chunk in &chunks {
            let engine = &engine;
            scope.spawn(move || {
                let mut cache = engine.new_cache();
                for &item in *chunk {
                    engine.process_cached(&mut cache, item);
                }
                engine.flush(&mut cache);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    // Everything eventually lands in the shared structure; the *bypass*
    // fraction is what reached it before any flush — measured via the
    // shared engine's boundary-crossing counter relative to cache flushes
    // is engine-internal, so report the simplest observable instead: the
    // shared structure's per-element lock traffic.
    let locks_per_element = engine.shared().work().lock_acquisitions as f64 / stream.len() as f64;
    let sum: u64 = engine.snapshot().entries().iter().map(|e| e.count).sum();
    assert_eq!(sum, stream.len() as u64, "hybrid lost counts");
    (secs, locks_per_element)
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.n(2_000_000);
    let threads = 4;
    let alphas = [0.5f64, 1.0, 1.5, 2.0, 2.5, 3.0];
    println!("Hybrid structure (§4.4) vs its parents, {n} elements, {threads} threads\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>16}",
        "alpha", "hybrid (s)", "shared (s)", "indep (s)", "locks/element"
    );
    let mut rows = Vec::new();
    for alpha in alphas {
        let stream = paper_stream(n, alpha, 42);
        let (hybrid_s, locks) = {
            let mut best = (f64::INFINITY, 0.0);
            for _ in 0..scale.repeats {
                let r = run_hybrid(&stream, threads, 64, 4_096);
                if r.0 < best.0 {
                    best = r;
                }
            }
            best
        };
        let shared = median_run(scale.repeats, || {
            run_shared(&stream, threads, LockKind::Mutex, false).0
        });
        let indep = median_run(scale.repeats, || {
            run_independent(
                &stream,
                threads,
                MergeStrategy::Serial,
                Some(MERGE_EVERY),
                false,
            )
            .0
        });
        println!(
            "{:>8.1} {:>12.4} {:>12.4} {:>12.4} {:>16.4}",
            alpha,
            hybrid_s,
            shared.elapsed.as_secs_f64(),
            indep.elapsed.as_secs_f64(),
            locks
        );
        rows.push(format!(
            "{alpha},{hybrid_s:.6},{:.6},{:.6},{locks:.6}",
            shared.elapsed.as_secs_f64(),
            indep.elapsed.as_secs_f64()
        ));
    }
    write_csv(
        "hybrid",
        "alpha,hybrid_s,shared_s,independent_s,shared_locks_per_element",
        &rows,
    );
    println!(
        "\nThe paper's §4.4 prediction: locks/element ≈ shared design at low skew\n\
         (cache useless), staleness/merge behaviour at high skew (cache absorbs\n\
         everything) — the hybrid tracks whichever parent is worse for the workload."
    );
}
