//! Figure 6: execution-time surface of the **Independent Structures**
//! design over input size (1M–16M) × threads (1–32), queries every 50 000
//! elements, for α ∈ {2.0, 2.5, 3.0}.
//!
//! Paper shape: time grows with input size; adding threads makes things
//! *worse*, and more so for larger inputs (more merges).

use cots_bench::engines::run_independent;
use cots_bench::harness::{median_run, paper_stream, write_csv, Scale, MERGE_EVERY};
use cots_naive::MergeStrategy;

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = [1, 2, 4, 8, 16]
        .into_iter()
        .map(|m| scale.n(m * 1_000_000))
        .collect();
    let threads = [1usize, 2, 4, 8, 16, 32];
    let alphas = [2.0f64, 2.5, 3.0];
    println!("Figure 6: Independent Structures, time vs input size x threads");
    println!("sizes = {sizes:?}\n");
    let mut rows = Vec::new();
    for alpha in alphas {
        println!("alpha = {alpha}");
        print!("{:>12}", "n \\ threads");
        for &t in &threads {
            print!("{t:>10}");
        }
        println!();
        for &n in &sizes {
            let stream = paper_stream(n, alpha, 42);
            print!("{n:>12}");
            for &t in &threads {
                let stats = median_run(scale.repeats, || {
                    run_independent(&stream, t, MergeStrategy::Serial, Some(MERGE_EVERY), false).0
                });
                print!("{:>10.3}", stats.elapsed.as_secs_f64());
                rows.push(format!(
                    "{alpha},{n},{t},{:.6},{}",
                    stats.elapsed.as_secs_f64(),
                    stats.work.merged_counters
                ));
            }
            println!();
        }
        println!();
    }
    write_csv("fig6", "alpha,n,threads,seconds,merged_counters", &rows);
}
