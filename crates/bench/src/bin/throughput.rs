//! §6 headline: peak processing throughput of the CoTS framework (the
//! paper reports > 60M elements/second on a 2.4 GHz quad-core for skewed
//! data). Sweeps thread count at α = 3.0 and reports the peak, alongside
//! the sequential throughput for context.

use cots_bench::engines::{run_cots, run_sequential};
use cots_bench::harness::{median_run, paper_stream, write_csv, Scale};

fn main() {
    let scale = Scale::from_env();
    let n = scale.n(4_000_000);
    let alpha = 3.0;
    let stream = paper_stream(n, alpha, 42);
    println!("Peak throughput, alpha = {alpha}, {n} elements\n");

    let seq = median_run(scale.repeats, || run_sequential(&stream));
    println!("sequential: {:>10.2} M elements/s", seq.throughput() / 1e6);

    let mut rows = vec![format!("sequential,1,{:.1}", seq.throughput())];
    let mut peak = 0.0f64;
    for threads in [4usize, 8, 16, 32, 64, 128] {
        let stats = median_run(scale.repeats, || run_cots(&stream, threads));
        let tput = stats.throughput();
        peak = peak.max(tput);
        println!(
            "cots {threads:>4} threads: {:>8.2} M elements/s   (combining {:.1})",
            tput / 1e6,
            stats.work.combining_factor()
        );
        rows.push(format!("cots,{threads},{tput:.1}"));
    }
    println!("\npeak CoTS throughput: {:.2} M elements/s", peak / 1e6);
    println!("(paper: > 60 M elements/s on 4 physical cores @ 2.4 GHz)");
    write_csv("throughput", "engine,threads,elements_per_second", &rows);
}
