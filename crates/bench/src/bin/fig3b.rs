//! Figure 3(b): speedup of the naive **Shared Structure** design
//! (element-level + bucket-level locking, blocking mutexes) versus thread
//! count, zipfian α ∈ {1.5, 2.0, 2.5, 3.0}, 5M-element stream.
//!
//! Paper shape: performance *degrades* from 1 to 4 threads (real
//! parallelism ⇒ real contention) and stays flat beyond the core count.
//! On a single-core host the 1→4 cliff flattens (there is no true
//! parallelism to fight over); the lock-contention work counter still rises
//! with the thread count, which is the mechanism behind the cliff.

use cots_bench::engines::run_shared;
use cots_bench::harness::{median_run, paper_stream, write_csv, write_json, Scale};
use cots_core::RunStats;
use cots_naive::LockKind;

fn main() {
    let scale = Scale::from_env();
    let n = scale.n(5_000_000);
    let threads = [1usize, 2, 4, 8, 16, 32];
    let alphas = [1.5f64, 2.0, 2.5, 3.0];
    println!("Figure 3(b): Shared Structure, pthread-style mutexes");
    println!("stream = {n} elements\n");
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>14}",
        "alpha", "threads", "time (s)", "speedup", "contentions"
    );

    let mut rows = Vec::new();
    let mut all: Vec<RunStats> = Vec::new();
    for alpha in alphas {
        let stream = paper_stream(n, alpha, 42);
        let mut baseline = None;
        for &t in &threads {
            let stats = median_run(scale.repeats, || {
                run_shared(&stream, t, LockKind::Mutex, false).0
            });
            let base = baseline.get_or_insert_with(|| stats.clone());
            let speedup = stats.speedup_vs(base);
            println!(
                "{:>8.1} {:>8} {:>12.4} {:>10.2} {:>14}",
                alpha,
                t,
                stats.elapsed.as_secs_f64(),
                speedup,
                stats.work.lock_contentions
            );
            rows.push(format!(
                "{alpha},{t},{:.6},{speedup:.4},{},{}",
                stats.elapsed.as_secs_f64(),
                stats.work.lock_acquisitions,
                stats.work.lock_contentions
            ));
            all.push(stats);
        }
        println!();
    }
    write_csv(
        "fig3b",
        "alpha,threads,seconds,speedup_vs_1,lock_acquisitions,lock_contentions",
        &rows,
    );
    write_json("fig3b_runs", &all);
}
