//! Quick sanity harness: sequential vs shared vs CoTS on skewed streams
//! at several thread counts, with the work counters that explain the
//! differences. Fast enough to run after any engine change; the full
//! figure binaries (fig3a…table2) are the real experiments.
use std::sync::Arc;
use std::time::Instant;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::{ConcurrentCounter, CotsConfig, FrequencyCounter, QueryableSummary, SummaryConfig};
use cots_datagen::StreamSpec;
use cots_naive::{LockKind, SharedSpaceSaving};
use cots_sequential::SpaceSaving;

fn main() {
    let n = 2_000_000;
    let alphabet = 100_000;
    let cap = 1000;
    for alpha in [1.5, 2.0, 2.5, 3.0] {
        let stream = StreamSpec::zipf(n, alphabet, alpha, 42).generate();
        // sequential
        let mut seq = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(cap).unwrap());
        let t = Instant::now();
        seq.process_slice(&stream);
        let seq_t = t.elapsed();
        // shared mutex, 4 threads
        let sh = SharedSpaceSaving::<u64>::new(
            SummaryConfig::with_capacity(cap).unwrap(),
            LockKind::Mutex,
        )
        .unwrap();
        let t = Instant::now();
        cots_naive::runner::run_concurrent(&sh, &stream, 4, false).unwrap();
        let sh_t = t.elapsed();
        // cots 4, 16, 64 threads
        let mut cots_t = vec![];
        for threads in [4usize, 16, 64] {
            let e =
                Arc::new(CotsEngine::<u64>::new(CotsConfig::for_capacity(cap).unwrap()).unwrap());
            let t = Instant::now();
            cots::run(
                &e,
                &stream,
                RuntimeOptions {
                    threads,
                    batch: 2048,
                    adaptive: false,
                },
            )
            .unwrap();
            let el = t.elapsed();
            let sum: u64 = e.snapshot().entries().iter().map(|x| x.count).sum();
            assert_eq!(sum, n as u64);
            assert_eq!(e.processed(), n as u64);
            let w = e.work();
            cots_t.push((
                threads,
                el,
                w.combining_factor(),
                w.overwrite_deferrals,
                w.summary_ops,
                w.read_restarts,
            ));
        }
        println!("alpha={alpha}: seq={seq_t:?} shared4={sh_t:?}");
        for (th, el, cf, defer, ops, restarts) in cots_t {
            println!(
                "  cots{th}={el:?} combining={cf:.1} defer={defer} ops={ops} restarts={restarts}"
            );
        }
    }
}
