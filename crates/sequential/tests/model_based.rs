//! Model-based property tests: the arena-backed `StreamSummary` is checked
//! operation-by-operation against a trivially correct reference model, and
//! the algorithms are cross-checked against each other on identical
//! streams.

use std::collections::HashMap;

use proptest::collection::vec;
use proptest::prelude::*;

use cots_core::{FrequencyCounter, QueryableSummary, SummaryConfig};
use cots_datagen::ExactCounter;
use cots_sequential::{LossyCounting, MisraGries, NodeId, SpaceSaving, StreamSummary};

/// Reference model: a multiset of (handle, item, count, error).
#[derive(Default)]
struct Model {
    entries: HashMap<usize, (u64, u64, u64)>, // handle -> (item, count, error)
    next: usize,
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    IncrementAny(u64),
    OverwriteMin(u64),
    RemoveAny,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..50, 1u64..5).prop_map(|(item, c)| Op::Insert(item, c)),
        (1u64..6).prop_map(Op::IncrementAny),
        (100u64..200).prop_map(Op::OverwriteMin),
        Just(Op::RemoveAny),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive StreamSummary and the model through the same operations and
    /// compare the full sorted contents after every step.
    #[test]
    fn stream_summary_matches_model(ops in vec(op_strategy(), 1..300)) {
        let mut summary: StreamSummary<u64> = StreamSummary::new();
        let mut model = Model::default();
        let mut handles: Vec<(usize, NodeId)> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(item, count) => {
                    let id = summary.insert(item, count, 0);
                    model.entries.insert(model.next, (item, count, 0));
                    handles.push((model.next, id));
                    model.next += 1;
                }
                Op::IncrementAny(by) => {
                    if let Some(&(h, id)) = handles.last() {
                        summary.increment(id, by);
                        model.entries.get_mut(&h).unwrap().1 += by;
                    }
                }
                Op::OverwriteMin(new_item) => {
                    if summary.is_empty() {
                        continue;
                    }
                    // Identify the victim by NodeId (handles map 1:1 to
                    // live nodes), so entries with identical value triples
                    // cannot be confused.
                    let (victim_id, _) = summary.min().unwrap();
                    let (evicted, _evicted_count, id) = summary.overwrite_min(new_item, 1);
                    debug_assert_eq!(victim_id, id, "overwrite reuses the victim node");
                    let &(h, _) = handles
                        .iter()
                        .find(|&&(_, hid)| hid == victim_id)
                        .expect("victim has a live handle");
                    let e = model.entries.get_mut(&h).unwrap();
                    prop_assert_eq!(e.0, evicted, "model and summary agree on the victim");
                    e.0 = new_item;
                    e.2 = e.1; // error = old count
                    e.1 += 1;
                }
                Op::RemoveAny => {
                    if let Some((h, id)) = handles.pop() {
                        let item = summary.remove(id);
                        let (mitem, _, _) = model.entries.remove(&h).unwrap();
                        prop_assert_eq!(item, mitem);
                    }
                }
            }
            summary.check_invariants();
            // Compare multisets of (count, error) and per-item count sums.
            let mut got: Vec<(u64, u64, u64)> =
                summary.iter_desc().map(|(i, c, e)| (c, e, i)).collect();
            let mut want: Vec<(u64, u64, u64)> =
                model.entries.values().map(|&(i, c, e)| (c, e, i)).collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
            prop_assert_eq!(
                summary.min_count(),
                model.entries.values().map(|&(_, c, _)| c).min().unwrap_or(0)
            );
            prop_assert_eq!(
                summary.max_count(),
                model.entries.values().map(|&(_, c, _)| c).max().unwrap_or(0)
            );
        }
    }

    /// Space Saving and Misra-Gries agree on guaranteed-frequent answers:
    /// anything Misra-Gries guarantees, Space Saving monitors too (both are
    /// counter-based with the same ε law).
    #[test]
    fn space_saving_covers_misra_gries_guarantees(
        stream in vec(0u64..40, 10..1_500),
        capacity in 2usize..24,
    ) {
        let cfg = SummaryConfig::with_capacity(capacity).unwrap();
        let mut ss = SpaceSaving::<u64>::new(cfg);
        let mut mg = MisraGries::<u64>::new(cfg);
        for &e in &stream {
            ss.process(e);
            mg.process(e);
        }
        let ss_snap = ss.snapshot();
        for entry in mg.snapshot().entries() {
            // Guaranteed mass in MG implies the element's true count is at
            // least that; SS must monitor any element whose count exceeds
            // its own minimum.
            if entry.guaranteed() > ss.min_count() {
                prop_assert!(
                    ss_snap.get(&entry.item).is_some(),
                    "item {} guaranteed {} by MG but unmonitored in SS (min {})",
                    entry.item,
                    entry.guaranteed(),
                    ss.min_count()
                );
            }
        }
    }

    /// All three counter algorithms keep sound bounds on the same stream.
    #[test]
    fn counter_algorithms_bounds_agree(
        stream in vec(0u64..64, 10..1_200),
        capacity in 4usize..32,
    ) {
        let truth = ExactCounter::from_stream(&stream);
        let cfg = SummaryConfig::with_capacity(capacity).unwrap();
        let mut ss = SpaceSaving::<u64>::new(cfg);
        let mut lc = LossyCounting::<u64>::new(cfg);
        let mut mg = MisraGries::<u64>::new(cfg);
        for &e in &stream {
            ss.process(e);
            lc.process(e);
            mg.process(e);
        }
        for snap in [ss.snapshot(), lc.snapshot(), mg.snapshot()] {
            for entry in snap.entries() {
                let t = truth.count(&entry.item);
                prop_assert!(entry.count >= t);
                prop_assert!(entry.guaranteed() <= t);
            }
        }
    }
}

#[test]
fn summary_handles_extreme_counts() {
    let mut s: StreamSummary<u64> = StreamSummary::new();
    let a = s.insert(1, u64::MAX - 10, 0);
    s.increment(a, 9);
    assert_eq!(s.count(a), u64::MAX - 1);
    s.check_invariants();
}

#[test]
fn summary_many_equal_counts() {
    // One giant bucket: all elements share a frequency.
    let mut s: StreamSummary<u64> = StreamSummary::new();
    let ids: Vec<NodeId> = (0..500u64).map(|i| s.insert(i, 7, 0)).collect();
    s.check_invariants();
    assert_eq!(s.min_count(), 7);
    assert_eq!(s.max_count(), 7);
    // Remove every other one.
    for id in ids.iter().step_by(2) {
        s.remove(*id);
    }
    s.check_invariants();
    assert_eq!(s.len(), 250);
}
