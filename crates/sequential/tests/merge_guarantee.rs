//! Property check for the independent-structures design (§4.1): partition a
//! stream across several *real* Space Saving instances, merge their
//! snapshots through `cots_core::merge`, and require the merged summary to
//! keep the Space Saving guarantee for every element of the stream:
//!
//! * over-estimation only: `f̂(e) ≥ f(e)`;
//! * bounded error: `f̂(e) − f(e) ≤ min-count` of the merged summary
//!   (and `f̂(e) − error(e) ≤ f(e)`, the per-entry refinement);
//! * coverage: any element more frequent than the merged min-count is
//!   monitored.
//!
//! Both merge shapes the naive engine uses are exercised: the flat *serial*
//! merge (`merge_snapshots` over all partitions at once) and the
//! *hierarchical* pairwise tree (`merge_pair` folded left and as a balanced
//! tree), which is how `cots-naive` combines per-thread summaries.

use std::collections::HashMap;

use proptest::collection::vec;
use proptest::prelude::*;

use cots_core::merge::{merge_pair, merge_snapshots};
use cots_core::{FrequencyCounter, QueryableSummary, Snapshot, SummaryConfig};
use cots_sequential::SpaceSaving;

/// Partition `stream` round-robin over `parts` Space Saving instances of
/// `capacity` counters each and return their snapshots — the shared-nothing
/// counting phase of the independent design.
fn partition_summaries(stream: &[u64], parts: usize, capacity: usize) -> Vec<Snapshot<u64>> {
    let mut workers: Vec<SpaceSaving<u64>> = (0..parts)
        .map(|_| SpaceSaving::new(SummaryConfig { capacity }))
        .collect();
    for (i, &item) in stream.iter().enumerate() {
        workers[i % parts].process(item);
    }
    workers.iter().map(|w| w.snapshot()).collect()
}

/// `f(e)` for every element of the stream.
fn exact_counts(stream: &[u64]) -> HashMap<u64, u64> {
    let mut f = HashMap::new();
    for &item in stream {
        *f.entry(item).or_insert(0u64) += 1;
    }
    f
}

/// Assert the Space Saving contract of `merged` against the exact counts.
fn assert_guarantee(merged: &Snapshot<u64>, truth: &HashMap<u64, u64>, label: &str) {
    let min_count = merged.entries().last().map(|e| e.count).unwrap_or(0);
    assert_eq!(
        merged.total(),
        truth.values().sum::<u64>(),
        "{}: stream length conserved",
        label
    );
    for (&item, &f) in truth {
        match merged.get(&item) {
            Some(entry) => {
                assert!(
                    entry.count >= f,
                    "{}: under-estimate for {}: {} < {}",
                    label,
                    item,
                    entry.count,
                    f
                );
                assert!(
                    entry.count - f <= min_count,
                    "{}: estimate for {} off by {} > min-count {}",
                    label,
                    item,
                    entry.count - f,
                    min_count
                );
                assert!(
                    entry.guaranteed() <= f,
                    "{}: guaranteed {} > true {} for {}",
                    label,
                    entry.guaranteed(),
                    f,
                    item
                );
            }
            None => {
                // Space Saving coverage: an unmonitored element cannot be
                // more frequent than the (merged) minimum count.
                assert!(
                    f <= min_count,
                    "{}: dropped element {} with f {} > min-count {}",
                    label,
                    item,
                    f,
                    min_count
                );
            }
        }
    }
}

/// Balanced pairwise merge tree, the hierarchical shape of Fig. 4.
fn merge_tree(snapshots: &[Snapshot<u64>], capacity: usize) -> Snapshot<u64> {
    match snapshots {
        [] => Snapshot::new(Vec::new(), 0),
        [one] => one.clone(),
        _ => {
            let mid = snapshots.len() / 2;
            merge_pair(
                &merge_tree(&snapshots[..mid], capacity),
                &merge_tree(&snapshots[mid..], capacity),
                capacity,
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Serial path: one flat `merge_snapshots` over all partitions.
    #[test]
    fn serial_merge_keeps_space_saving_guarantee(
        stream in vec(0u64..48, 1..400),
        parts in 1usize..6,
        capacity in 4usize..24,
    ) {
        let snapshots = partition_summaries(&stream, parts, capacity);
        // Merge capacity ≥ per-partition capacity, as the naive engine
        // does (it reuses the configured counter budget).
        let merged = merge_snapshots(&snapshots, capacity);
        assert_guarantee(&merged, &exact_counts(&stream), "serial");
    }

    /// Hierarchical path: balanced `merge_pair` tree, plus the degenerate
    /// left fold, both of which the independent design's query phase uses.
    #[test]
    fn hierarchical_merge_keeps_space_saving_guarantee(
        stream in vec(0u64..48, 1..400),
        parts in 2usize..8,
        capacity in 4usize..24,
    ) {
        let snapshots = partition_summaries(&stream, parts, capacity);
        let truth = exact_counts(&stream);

        let tree = merge_tree(&snapshots, capacity);
        assert_guarantee(&tree, &truth, "tree");

        let fold = snapshots[1..]
            .iter()
            .fold(snapshots[0].clone(), |acc, s| merge_pair(&acc, s, capacity));
        assert_guarantee(&fold, &truth, "fold");
    }
}
