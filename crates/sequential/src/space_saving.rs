//! Sequential *Space Saving* (Metwally, Agrawal, El Abbadi; paper §3.3,
//! Algorithm 1).
//!
//! Monitors at most `m = ⌈1/ε⌉` counters. For each stream element:
//! if monitored, increment (`IncrementCounter`); else if there is room,
//! start monitoring with count 1 (`AddElementToBucket`); else overwrite the
//! minimum-frequency element, inheriting its count as the error bound
//! (`Overwrite`). Deterministic, with per-element O(1) cost via the
//! [`StreamSummary`] and a hash index for `LOOKUP`.
//!
//! Guarantees (proved in the original paper and asserted by this crate's
//! property tests):
//!
//! * `Σ counts == N` (count conservation);
//! * `count(e) - error(e) <= f(e) <= count(e)` for monitored `e`;
//! * any element with `f(e) > N/m` is monitored (so frequent-element recall
//!   at threshold εN is 1);
//! * unmonitored elements have `f(e) <= min_count`.

use std::collections::HashMap;

use cots_core::{
    CounterEntry, Element, FrequencyCounter, QueryableSummary, Result, Snapshot, SummaryConfig,
};

use crate::summary::{NodeId, StreamSummary};

/// Sequential Space Saving.
///
/// # Example
///
/// ```
/// use cots_core::{FrequencyCounter, QueryableSummary, SummaryConfig, Threshold};
/// use cots_sequential::SpaceSaving;
///
/// let mut ss = SpaceSaving::<&str>::new(SummaryConfig::with_capacity(2)?);
/// for word in ["the", "the", "cat", "the", "hat"] {
///     ss.process(word);
/// }
/// // Capacity 2: "hat" overwrote "cat" and inherited its count as error.
/// assert_eq!(ss.estimate(&"the"), Some((3, 0)));
/// assert_eq!(ss.estimate(&"hat"), Some((2, 1)));
/// assert!(ss.snapshot().is_frequent(&"the", Threshold::Fraction(0.5)));
/// # Ok::<(), cots_core::CotsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: Element> {
    summary: StreamSummary<K>,
    index: HashMap<K, NodeId>,
    capacity: usize,
    total: u64,
}

impl<K: Element> SpaceSaving<K> {
    /// Build with an explicit counter budget.
    pub fn new(config: SummaryConfig) -> Self {
        Self {
            summary: StreamSummary::with_capacity(config.capacity),
            index: HashMap::with_capacity(config.capacity * 2),
            capacity: config.capacity,
            total: 0,
        }
    }

    /// Build from an error bound ε (`m = ⌈1/ε⌉`).
    pub fn with_epsilon(epsilon: f64) -> Result<Self> {
        Ok(Self::new(SummaryConfig::with_epsilon(epsilon)?))
    }

    /// Counter budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of monitored elements.
    pub fn monitored(&self) -> usize {
        self.summary.len()
    }

    /// The current minimum monitored count (0 when empty). Any unmonitored
    /// element's true frequency is bounded by this.
    pub fn min_count(&self) -> u64 {
        self.summary.min_count()
    }

    /// Process `item` with multiplicity `weight` (weight 1 is the paper's
    /// per-element step; the bulk form is used by merges and by tests).
    pub fn process_weighted(&mut self, item: K, weight: u64) {
        debug_assert!(weight > 0);
        self.total += weight;
        if let Some(&id) = self.index.get(&item) {
            self.summary.increment(id, weight);
            return;
        }
        if self.summary.len() < self.capacity {
            let id = self.summary.insert(item, weight, 0);
            self.index.insert(item, id);
            return;
        }
        let (evicted, _min, id) = self.summary.overwrite_min(item, weight);
        self.index.remove(&evicted);
        self.index.insert(item, id);
    }

    /// Direct read access to the underlying summary (used by merges and by
    /// the independent-structures engine).
    pub fn summary(&self) -> &StreamSummary<K> {
        &self.summary
    }

    /// Verify structural and algorithmic invariants (tests only; O(m)).
    pub fn check_invariants(&self) {
        self.summary.check_invariants();
        assert!(self.summary.len() <= self.capacity, "capacity respected");
        assert_eq!(self.index.len(), self.summary.len(), "index tracks summary");
        let sum: u64 = self.summary.iter_desc().map(|(_, c, _)| c).sum();
        assert_eq!(sum, self.total, "count conservation: Σ counts == N");
        for (item, count, error) in self.summary.iter_desc() {
            assert!(error <= count);
            let id = self.index[&item];
            assert_eq!(self.summary.item(id), item);
        }
    }
}

impl<K: Element> FrequencyCounter<K> for SpaceSaving<K> {
    #[inline]
    fn process(&mut self, item: K) {
        self.process_weighted(item, 1);
    }

    fn processed(&self) -> u64 {
        self.total
    }
}

impl<K: Element> QueryableSummary<K> for SpaceSaving<K> {
    fn snapshot(&self) -> Snapshot<K> {
        let entries: Vec<CounterEntry<K>> = self
            .summary
            .iter_desc()
            .map(|(item, count, error)| CounterEntry::new(item, count, error))
            .collect();
        Snapshot::from_sorted(entries, self.total)
    }

    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        self.index
            .get(item)
            .map(|&id| (self.summary.count(id), self.summary.error(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cots_core::Threshold;

    fn ss(capacity: usize) -> SpaceSaving<u64> {
        SpaceSaving::new(SummaryConfig::with_capacity(capacity).unwrap())
    }

    #[test]
    fn exact_when_alphabet_fits() {
        let mut s = ss(10);
        for item in [1u64, 2, 2, 3, 3, 3, 1] {
            s.process(item);
        }
        s.check_invariants();
        assert_eq!(s.estimate(&1), Some((2, 0)));
        assert_eq!(s.estimate(&2), Some((2, 0)));
        assert_eq!(s.estimate(&3), Some((3, 0)));
        assert_eq!(s.processed(), 7);
    }

    #[test]
    fn overwrite_when_full() {
        let mut s = ss(2);
        s.process(1);
        s.process(1);
        s.process(2);
        // Structure full {1:2, 2:1}; element 3 overwrites 2 (min).
        s.process(3);
        s.check_invariants();
        assert_eq!(s.estimate(&2), None);
        assert_eq!(s.estimate(&3), Some((2, 1)));
        assert_eq!(s.monitored(), 2);
        // Count conservation.
        assert_eq!(
            s.snapshot().entries().iter().map(|e| e.count).sum::<u64>(),
            4
        );
    }

    #[test]
    fn bounds_hold_on_zipf_like_stream() {
        // Deterministic skewed stream over 50 keys, capacity 8.
        let mut stream = Vec::new();
        for i in 1..=50u64 {
            for _ in 0..(200 / i) {
                stream.push(i);
            }
        }
        // Interleave deterministically.
        let mut interleaved = Vec::with_capacity(stream.len());
        let mut chunks: Vec<_> = stream.chunks(7).collect();
        while !chunks.is_empty() {
            let mut next = Vec::new();
            for c in chunks {
                if let Some((&first, rest)) = c.split_first() {
                    interleaved.push(first);
                    if !rest.is_empty() {
                        next.push(rest);
                    }
                }
            }
            chunks = next;
        }
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut s = ss(8);
        for &e in &interleaved {
            s.process(e);
            *truth.entry(e).or_insert(0) += 1;
        }
        s.check_invariants();
        let n = s.processed();
        let snap = s.snapshot();
        // Per-element bounds.
        for e in snap.entries() {
            let t = truth[&e.item];
            assert!(e.count >= t, "count {} < true {}", e.count, t);
            assert!(
                e.guaranteed() <= t,
                "guarantee {} > true {}",
                e.guaranteed(),
                t
            );
        }
        // ε-recall: every element above N/m must be monitored.
        let eps_bound = n / 8;
        for (&item, &t) in &truth {
            if t > eps_bound {
                assert!(
                    snap.get(&item).is_some(),
                    "{item} (count {t}) not monitored"
                );
            }
        }
        // Unmonitored elements bounded by min count.
        for (&item, &t) in &truth {
            if snap.get(&item).is_none() {
                assert!(t <= s.min_count());
            }
        }
    }

    #[test]
    fn frequent_query_overestimates_only() {
        let mut s = ss(4);
        for e in [1u64, 1, 1, 1, 2, 2, 3, 4, 5, 6] {
            s.process(e);
        }
        s.check_invariants();
        let snap = s.snapshot();
        // Guaranteed-frequent answers must be truly frequent.
        for e in snap.guaranteed_frequent(Threshold::Count(3)) {
            assert!(e.item == 1, "only element 1 truly reaches 3, got {:?}", e);
        }
    }

    #[test]
    fn weighted_processing() {
        let mut s = ss(4);
        s.process_weighted(7, 10);
        s.process_weighted(8, 5);
        s.process_weighted(7, 3);
        s.check_invariants();
        assert_eq!(s.estimate(&7), Some((13, 0)));
        assert_eq!(s.processed(), 18);
    }

    #[test]
    fn capacity_one_tracks_majority_candidate() {
        let mut s = ss(1);
        for e in [1u64, 2, 1, 3, 1, 4, 1, 1] {
            s.process(e);
        }
        s.check_invariants();
        // With one counter, Space Saving holds the last inserted key with
        // the full stream count as its estimate.
        assert_eq!(s.monitored(), 1);
        let snap = s.snapshot();
        assert_eq!(snap.entries()[0].count, 8);
    }

    #[test]
    fn epsilon_constructor() {
        let s = SpaceSaving::<u64>::with_epsilon(0.01).unwrap();
        assert_eq!(s.capacity(), 100);
        assert!(SpaceSaving::<u64>::with_epsilon(0.0).is_err());
    }

    #[test]
    fn snapshot_sorted_desc() {
        let mut s = ss(16);
        for e in [5u64, 5, 5, 1, 2, 2, 9] {
            s.process(e);
        }
        let snap = s.snapshot();
        let counts: Vec<u64> = snap.entries().iter().map(|e| e.count).collect();
        let mut sorted = counts.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(counts, sorted);
    }
}
