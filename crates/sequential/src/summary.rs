//! The *Stream Summary* structure (Demaine et al., Metwally et al.; paper
//! §3.3, Fig. 2).
//!
//! A doubly linked list of *frequency buckets* sorted by frequency; each
//! bucket holds the doubly linked list of elements whose current count
//! equals the bucket's frequency. All four operations of Table 1 — lookup is
//! the caller's job via a hash index — run in O(1) amortized time for unit
//! increments, which is what keeps Space Saving constant-time per element.
//!
//! The structure is arena-backed: buckets and element nodes live in slabs
//! addressed by `u32` ids with free lists, so the whole monitored set sits
//! in two contiguous allocations (no per-node boxing, no unsafe).

use cots_core::Element;

/// Sentinel id for "no node / no bucket".
const NIL: u32 = u32::MAX;

/// Handle to a monitored element node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

#[derive(Debug, Clone)]
struct Node<K> {
    item: K,
    /// Over-estimation bound (the count inherited at overwrite time).
    error: u64,
    bucket: u32,
    prev: u32,
    next: u32,
}

#[derive(Debug, Clone)]
struct Bucket {
    freq: u64,
    head: u32,
    prev: u32,
    next: u32,
    len: u32,
}

/// The Stream Summary: elements kept sorted by frequency in O(1) per update.
#[derive(Debug, Clone)]
pub struct StreamSummary<K> {
    nodes: Vec<Node<K>>,
    free_nodes: Vec<u32>,
    buckets: Vec<Bucket>,
    free_buckets: Vec<u32>,
    /// Lowest-frequency bucket (list head).
    min_bucket: u32,
    /// Highest-frequency bucket (list tail).
    max_bucket: u32,
    len: usize,
}

impl<K: Element> Default for StreamSummary<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Element> StreamSummary<K> {
    /// Empty summary.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free_nodes: Vec::new(),
            buckets: Vec::new(),
            free_buckets: Vec::new(),
            min_bucket: NIL,
            max_bucket: NIL,
            len: 0,
        }
    }

    /// Pre-allocate for `capacity` monitored elements.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut s = Self::new();
        s.nodes.reserve(capacity);
        s.buckets.reserve(capacity.min(1024));
        s
    }

    /// Number of monitored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no element is monitored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The monitored element of `id`.
    pub fn item(&self, id: NodeId) -> K {
        self.nodes[id.0 as usize].item
    }

    /// Current count of `id` (its bucket's frequency).
    pub fn count(&self, id: NodeId) -> u64 {
        self.buckets[self.nodes[id.0 as usize].bucket as usize].freq
    }

    /// Error bound of `id`.
    pub fn error(&self, id: NodeId) -> u64 {
        self.nodes[id.0 as usize].error
    }

    /// The minimum-frequency element and its count, if any. Returns the
    /// *first* element of the minimum bucket — the overwrite candidate.
    pub fn min(&self) -> Option<(NodeId, u64)> {
        if self.min_bucket == NIL {
            return None;
        }
        let b = &self.buckets[self.min_bucket as usize];
        debug_assert_ne!(b.head, NIL, "empty bucket must have been freed");
        Some((NodeId(b.head), b.freq))
    }

    /// The minimum frequency, or 0 when empty.
    pub fn min_count(&self) -> u64 {
        if self.min_bucket == NIL {
            0
        } else {
            self.buckets[self.min_bucket as usize].freq
        }
    }

    /// The maximum frequency, or 0 when empty.
    pub fn max_count(&self) -> u64 {
        if self.max_bucket == NIL {
            0
        } else {
            self.buckets[self.max_bucket as usize].freq
        }
    }

    /// `AddElementToBucket`: start monitoring `item` with the given count
    /// and error. Returns the node handle.
    pub fn insert(&mut self, item: K, count: u64, error: u64) -> NodeId {
        debug_assert!(count > 0, "counts are positive");
        let bucket = self.bucket_for(count);
        let id = self.alloc_node(Node {
            item,
            error,
            bucket,
            prev: NIL,
            next: NIL,
        });
        self.attach(id, bucket);
        self.len += 1;
        NodeId(id)
    }

    /// `IncrementCounter`: raise `id`'s count by `by` (a *bulk increment*
    /// when `by > 1`). Returns the new count.
    pub fn increment(&mut self, id: NodeId, by: u64) -> u64 {
        debug_assert!(by > 0);
        let node = id.0;
        let old_bucket = self.nodes[node as usize].bucket;
        let target = self.buckets[old_bucket as usize].freq + by;
        self.detach(node);
        // Search forward from the old bucket: for unit increments the
        // destination is the immediate neighbour (or a new bucket right
        // after), which is the O(1) property of the structure.
        let dest = self.bucket_at_or_insert(old_bucket, target);
        self.nodes[node as usize].bucket = dest;
        self.attach(node, dest);
        self.free_bucket_if_empty(old_bucket);
        target
    }

    /// `Overwrite`: evict the current minimum element, replace it with
    /// `item`, set its error to the evicted count, and give it count
    /// `evicted + by`. Returns `(evicted_item, evicted_count)`.
    ///
    /// # Panics
    /// If the summary is empty.
    pub fn overwrite_min(&mut self, item: K, by: u64) -> (K, u64, NodeId) {
        let (min_id, min_count) = self.min().expect("overwrite on empty summary");
        let node = min_id.0;
        let old_item = self.nodes[node as usize].item;
        self.nodes[node as usize].item = item;
        self.nodes[node as usize].error = min_count;
        self.increment(min_id, by);
        (old_item, min_count, min_id)
    }

    /// Remove `id` from the summary entirely (used by Lossy-Counting-style
    /// policies that delete infrequent elements at round boundaries).
    pub fn remove(&mut self, id: NodeId) -> K {
        let node = id.0;
        let bucket = self.nodes[node as usize].bucket;
        self.detach(node);
        self.free_bucket_if_empty(bucket);
        let item = self.nodes[node as usize].item;
        self.free_nodes.push(node);
        self.len -= 1;
        item
    }

    /// Iterate `(item, count, error)` in decreasing count order (the order
    /// queries consume: from the maximum-frequency bucket backwards).
    pub fn iter_desc(&self) -> impl Iterator<Item = (K, u64, u64)> + '_ {
        DescIter {
            summary: self,
            bucket: self.max_bucket,
            node: if self.max_bucket == NIL {
                NIL
            } else {
                self.buckets[self.max_bucket as usize].head
            },
        }
    }

    /// Iterate `(item, count, error)` in increasing count order (the order
    /// updates traverse).
    pub fn iter_asc(&self) -> impl Iterator<Item = (K, u64, u64)> + '_ {
        AscIter {
            summary: self,
            bucket: self.min_bucket,
            node: if self.min_bucket == NIL {
                NIL
            } else {
                self.buckets[self.min_bucket as usize].head
            },
        }
    }

    /// Exhaustively verify structural invariants; test support.
    ///
    /// # Panics
    /// On any violation.
    pub fn check_invariants(&self) {
        let violations = self.collect_violations();
        assert!(
            violations.is_empty(),
            "StreamSummary invariants violated: {}",
            violations
                .iter()
                .map(|(name, detail)| format!("[{name}] {detail}"))
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    /// Walk the whole structure and collect every violated invariant as a
    /// `(name, detail)` pair. Backs both [`StreamSummary::check_invariants`]
    /// and the feature-gated `CheckInvariants` impl.
    fn collect_violations(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        let mut seen_nodes = 0usize;
        let mut prev_freq = 0u64;
        let mut b = self.min_bucket;
        let mut prev_b = NIL;
        let mut hops = 0usize;
        while b != NIL {
            if hops > self.buckets.len() {
                out.push(("bucket-cycle", "bucket list does not terminate".into()));
                return out;
            }
            hops += 1;
            let bucket = &self.buckets[b as usize];
            if bucket.freq <= prev_freq {
                out.push((
                    "bucket-order",
                    format!("bucket {b}: freq {} after {prev_freq}", bucket.freq),
                ));
            }
            if bucket.prev != prev_b {
                out.push((
                    "bucket-backlink",
                    format!("bucket {b}: prev {} ≠ {prev_b}", bucket.prev),
                ));
            }
            if bucket.head == NIL {
                out.push(("bucket-nonempty", format!("bucket {b} is empty")));
            }
            prev_freq = bucket.freq;
            // Walk the element list.
            let mut n = bucket.head;
            let mut prev_n = NIL;
            let mut count = 0u32;
            while n != NIL {
                if count as usize > self.nodes.len() {
                    out.push(("node-cycle", format!("bucket {b}: element list loops")));
                    return out;
                }
                let node = &self.nodes[n as usize];
                if node.bucket != b {
                    out.push((
                        "node-backpointer",
                        format!("node {n}: bucket {} ≠ {b}", node.bucket),
                    ));
                }
                if node.prev != prev_n {
                    out.push((
                        "node-backlink",
                        format!("node {n}: prev {} ≠ {prev_n}", node.prev),
                    ));
                }
                if node.error > bucket.freq {
                    out.push((
                        "error-bound",
                        format!("node {n}: error {} > count {}", node.error, bucket.freq),
                    ));
                }
                prev_n = n;
                n = node.next;
                count += 1;
            }
            if count != bucket.len {
                out.push((
                    "len-field",
                    format!("bucket {b}: len {} but {count} reachable", bucket.len),
                ));
            }
            seen_nodes += count as usize;
            prev_b = b;
            b = bucket.next;
        }
        if prev_b != self.max_bucket {
            out.push((
                "max-pointer",
                format!("max_bucket {} ≠ list tail {prev_b}", self.max_bucket),
            ));
        }
        if seen_nodes != self.len {
            out.push((
                "reachability",
                format!("len {} but {seen_nodes} reachable nodes", self.len),
            ));
        }
        if self.nodes.len() - self.free_nodes.len() != self.len {
            out.push((
                "slab-accounting",
                format!(
                    "{} allocated − {} free ≠ len {}",
                    self.nodes.len(),
                    self.free_nodes.len(),
                    self.len
                ),
            ));
        }
        out
    }

    // ------------------------------------------------------------------
    // internals

    fn alloc_node(&mut self, node: Node<K>) -> u32 {
        if let Some(id) = self.free_nodes.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn alloc_bucket(&mut self, bucket: Bucket) -> u32 {
        if let Some(id) = self.free_buckets.pop() {
            self.buckets[id as usize] = bucket;
            id
        } else {
            self.buckets.push(bucket);
            (self.buckets.len() - 1) as u32
        }
    }

    /// Push node `n` onto the front of `bucket`'s element list.
    fn attach(&mut self, n: u32, bucket: u32) {
        let head = self.buckets[bucket as usize].head;
        self.nodes[n as usize].bucket = bucket;
        self.nodes[n as usize].prev = NIL;
        self.nodes[n as usize].next = head;
        if head != NIL {
            self.nodes[head as usize].prev = n;
        }
        self.buckets[bucket as usize].head = n;
        self.buckets[bucket as usize].len += 1;
    }

    /// Unlink node `n` from its bucket's element list.
    fn detach(&mut self, n: u32) {
        let (bucket, prev, next) = {
            let node = &self.nodes[n as usize];
            (node.bucket, node.prev, node.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.buckets[bucket as usize].head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        }
        self.buckets[bucket as usize].len -= 1;
    }

    /// Find the bucket with frequency exactly `freq`, creating it in sorted
    /// position if missing. `count` is usually 1 (new elements) or near the
    /// minimum, so search from the list head.
    fn bucket_for(&mut self, freq: u64) -> u32 {
        if self.min_bucket == NIL {
            let b = self.alloc_bucket(Bucket {
                freq,
                head: NIL,
                prev: NIL,
                next: NIL,
                len: 0,
            });
            self.min_bucket = b;
            self.max_bucket = b;
            return b;
        }
        if freq < self.buckets[self.min_bucket as usize].freq {
            return self.insert_bucket_before(self.min_bucket, freq);
        }
        let mut b = self.min_bucket;
        loop {
            let bf = self.buckets[b as usize].freq;
            if bf == freq {
                return b;
            }
            debug_assert!(bf < freq);
            let next = self.buckets[b as usize].next;
            if next == NIL || self.buckets[next as usize].freq > freq {
                return self.insert_bucket_after(b, freq);
            }
            b = next;
        }
    }

    /// Find or create the bucket with frequency `target`, searching forward
    /// from `start` (exclusive of `start` itself, whose freq < target).
    fn bucket_at_or_insert(&mut self, start: u32, target: u64) -> u32 {
        debug_assert!(self.buckets[start as usize].freq < target);
        let mut b = start;
        loop {
            let next = self.buckets[b as usize].next;
            if next == NIL || self.buckets[next as usize].freq > target {
                return self.insert_bucket_after(b, target);
            }
            if self.buckets[next as usize].freq == target {
                return next;
            }
            b = next;
        }
    }

    fn insert_bucket_after(&mut self, b: u32, freq: u64) -> u32 {
        let next = self.buckets[b as usize].next;
        let new = self.alloc_bucket(Bucket {
            freq,
            head: NIL,
            prev: b,
            next,
            len: 0,
        });
        self.buckets[b as usize].next = new;
        if next != NIL {
            self.buckets[next as usize].prev = new;
        } else {
            self.max_bucket = new;
        }
        new
    }

    fn insert_bucket_before(&mut self, b: u32, freq: u64) -> u32 {
        let prev = self.buckets[b as usize].prev;
        let new = self.alloc_bucket(Bucket {
            freq,
            head: NIL,
            prev,
            next: b,
            len: 0,
        });
        self.buckets[b as usize].prev = new;
        if prev != NIL {
            self.buckets[prev as usize].next = new;
        } else {
            self.min_bucket = new;
        }
        new
    }

    /// If `b` has no elements, unlink and recycle it (fixing min/max).
    fn free_bucket_if_empty(&mut self, b: u32) {
        if self.buckets[b as usize].head != NIL {
            return;
        }
        let (prev, next) = {
            let bucket = &self.buckets[b as usize];
            (bucket.prev, bucket.next)
        };
        if prev != NIL {
            self.buckets[prev as usize].next = next;
        } else {
            self.min_bucket = next;
        }
        if next != NIL {
            self.buckets[next as usize].prev = prev;
        } else {
            self.max_bucket = prev;
        }
        self.free_buckets.push(b);
    }
}

struct DescIter<'a, K> {
    summary: &'a StreamSummary<K>,
    bucket: u32,
    node: u32,
}

impl<K: Element> Iterator for DescIter<'_, K> {
    type Item = (K, u64, u64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.bucket != NIL && self.node == NIL {
            self.bucket = self.summary.buckets[self.bucket as usize].prev;
            if self.bucket != NIL {
                self.node = self.summary.buckets[self.bucket as usize].head;
            }
        }
        if self.bucket == NIL {
            return None;
        }
        let node = &self.summary.nodes[self.node as usize];
        let freq = self.summary.buckets[self.bucket as usize].freq;
        let out = (node.item, freq, node.error);
        self.node = node.next;
        Some(out)
    }
}

struct AscIter<'a, K> {
    summary: &'a StreamSummary<K>,
    bucket: u32,
    node: u32,
}

impl<K: Element> Iterator for AscIter<'_, K> {
    type Item = (K, u64, u64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.bucket != NIL && self.node == NIL {
            self.bucket = self.summary.buckets[self.bucket as usize].next;
            if self.bucket != NIL {
                self.node = self.summary.buckets[self.bucket as usize].head;
            }
        }
        if self.bucket == NIL {
            return None;
        }
        let node = &self.summary.nodes[self.node as usize];
        let freq = self.summary.buckets[self.bucket as usize].freq;
        let out = (node.item, freq, node.error);
        self.node = node.next;
        Some(out)
    }
}

#[cfg(feature = "invariants")]
impl<K: Element> cots_core::CheckInvariants for StreamSummary<K> {
    fn violations(&self) -> Vec<cots_core::Violation> {
        self.collect_violations()
            .into_iter()
            .map(|(name, detail)| cots_core::Violation::new(name, detail))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_2_walkthrough() {
        // Stream ⟨e1, e3, e3, e2, e2⟩ from Fig. 2.
        let mut s: StreamSummary<u32> = StreamSummary::new();
        let e1 = s.insert(1, 1, 0);
        let e3 = s.insert(3, 1, 0);
        s.increment(e3, 1);
        let e2 = s.insert(2, 1, 0);
        s.check_invariants();
        // State (a): bucket 1 = {e1, e2}, bucket 2 = {e3}.
        assert_eq!(s.count(e1), 1);
        assert_eq!(s.count(e2), 1);
        assert_eq!(s.count(e3), 2);
        assert_eq!(s.min_count(), 1);
        s.increment(e2, 1);
        s.check_invariants();
        // State (b): bucket 1 = {e1}, bucket 2 = {e2, e3}.
        assert_eq!(s.count(e2), 2);
        assert_eq!(s.min_count(), 1);
        assert_eq!(s.max_count(), 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn increment_collapses_and_creates_buckets() {
        let mut s: StreamSummary<u32> = StreamSummary::new();
        let a = s.insert(1, 1, 0);
        let b = s.insert(2, 1, 0);
        s.increment(a, 1); // buckets 1:{2}, 2:{1}
        s.check_invariants();
        s.increment(b, 1); // bucket 1 empties and is freed; 2:{1,2}
        s.check_invariants();
        assert_eq!(s.min_count(), 2);
        assert_eq!(s.max_count(), 2);
        s.increment(a, 5); // 2:{2}, 7:{1}
        s.check_invariants();
        assert_eq!(s.count(a), 7);
        assert_eq!(s.max_count(), 7);
    }

    #[test]
    fn bulk_increment_skips_intermediate_buckets() {
        let mut s: StreamSummary<u32> = StreamSummary::new();
        let a = s.insert(1, 1, 0);
        let _b = s.insert(2, 2, 0);
        let _c = s.insert(3, 5, 0);
        let new = s.increment(a, 3); // 1 -> 4, lands between 2 and 5
        assert_eq!(new, 4);
        s.check_invariants();
        let counts: Vec<u64> = s.iter_asc().map(|(_, c, _)| c).collect();
        assert_eq!(counts, vec![2, 4, 5]);
    }

    #[test]
    fn overwrite_min_replaces_item_and_sets_error() {
        let mut s: StreamSummary<u32> = StreamSummary::new();
        let _a = s.insert(1, 3, 0);
        let _b = s.insert(2, 1, 0);
        let (old, old_count, id) = s.overwrite_min(9, 1);
        assert_eq!(old, 2);
        assert_eq!(old_count, 1);
        assert_eq!(s.item(id), 9);
        assert_eq!(s.count(id), 2);
        assert_eq!(s.error(id), 1);
        s.check_invariants();
    }

    #[test]
    fn overwrite_picks_first_of_min_bucket() {
        let mut s: StreamSummary<u32> = StreamSummary::new();
        s.insert(1, 1, 0);
        s.insert(2, 1, 0); // attach pushes to front: head is 2
        let (old, _, _) = s.overwrite_min(7, 1);
        assert_eq!(old, 2);
        s.check_invariants();
    }

    #[test]
    fn remove_frees_nodes_and_buckets() {
        let mut s: StreamSummary<u32> = StreamSummary::new();
        let a = s.insert(1, 1, 0);
        let b = s.insert(2, 4, 0);
        assert_eq!(s.remove(a), 1);
        s.check_invariants();
        assert_eq!(s.len(), 1);
        assert_eq!(s.min_count(), 4);
        assert_eq!(s.remove(b), 2);
        s.check_invariants();
        assert!(s.is_empty());
        assert_eq!(s.min_count(), 0);
        assert_eq!(s.max_count(), 0);
        // Slab is fully recycled.
        let c = s.insert(3, 1, 0);
        assert_eq!(s.count(c), 1);
        s.check_invariants();
    }

    #[test]
    fn iteration_orders() {
        let mut s: StreamSummary<u32> = StreamSummary::new();
        s.insert(1, 5, 0);
        s.insert(2, 1, 0);
        s.insert(3, 9, 2);
        s.insert(4, 5, 1);
        let desc: Vec<u64> = s.iter_desc().map(|(_, c, _)| c).collect();
        assert_eq!(desc, vec![9, 5, 5, 1]);
        let asc: Vec<u64> = s.iter_asc().map(|(_, c, _)| c).collect();
        assert_eq!(asc, vec![1, 5, 5, 9]);
        let items_desc: Vec<u32> = s.iter_desc().map(|(i, _, _)| i).collect();
        assert_eq!(items_desc[0], 3);
        assert_eq!(items_desc[3], 2);
    }

    #[test]
    fn empty_summary_behaviour() {
        let s: StreamSummary<u32> = StreamSummary::new();
        assert!(s.min().is_none());
        assert_eq!(s.iter_desc().count(), 0);
        assert_eq!(s.iter_asc().count(), 0);
        s.check_invariants();
    }

    #[test]
    fn dense_churn_stays_consistent() {
        // Pseudo-random mixed workload, invariants checked throughout.
        let mut s: StreamSummary<u64> = StreamSummary::new();
        let mut handles: Vec<NodeId> = Vec::new();
        let mut x = 0x12345678u64;
        for step in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let op = x % 100;
            if op < 40 || handles.is_empty() {
                handles.push(s.insert(x, 1, 0));
            } else if op < 85 {
                let idx = (x >> 32) as usize % handles.len();
                s.increment(handles[idx], 1 + (x % 4));
            } else if s.len() > 1 {
                let (min_id, _) = s.min().unwrap();
                // Remove min id from handles before overwriting.
                if let Some(pos) = handles.iter().position(|h| *h == min_id) {
                    let (_, _, new_id) = s.overwrite_min(x ^ 0xdead, 1);
                    handles[pos] = new_id;
                }
            }
            if step % 64 == 0 {
                s.check_invariants();
            }
        }
        s.check_invariants();
    }
}
