//! # cots-sequential
//!
//! The sequential frequency-counting algorithms of the CoTS paper and its
//! related work, all behind the `cots-core` traits:
//!
//! * [`summary::StreamSummary`] — the Stream Summary structure (Fig. 2):
//!   frequency-sorted elements at O(1) per update. The substrate of Space
//!   Saving and the thing the naive shared parallelization locks.
//! * [`space_saving::SpaceSaving`] — the paper's primary algorithm (§3.3).
//! * [`lossy_counting::LossyCounting`] — Manku–Motwani rounds-based counting
//!   (§5.3 adapts it into CoTS).
//! * [`misra_gries::MisraGries`] — the Frequent algorithm (reference [9]).
//! * [`sticky_sampling::StickySampling`] — Manku–Motwani's probabilistic
//!   sibling of Lossy Counting, with stream-length-independent space.
//! * [`sketch::CountMinSketch`] / [`sketch::CountSketch`] — the sketch-based
//!   family the paper's related work contrasts with (references [3, 6]),
//!   paired with top-`m` candidate tracking so they can answer set queries.
//!
//! The sequential `SpaceSaving` here is the baseline of Table 2 and the
//! 1-thread reference of Figures 3, 6 and 7.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod lossy_counting;
pub mod misra_gries;
pub mod sketch;
pub mod space_saving;
pub mod sticky_sampling;
pub mod summary;

pub use lossy_counting::LossyCounting;
pub use misra_gries::MisraGries;
pub use sketch::{CountMinSketch, CountSketch};
pub use space_saving::SpaceSaving;
pub use sticky_sampling::StickySampling;
pub use summary::{NodeId, StreamSummary};
