//! Sequential *Lossy Counting* (Manku & Motwani, VLDB '02; paper §2, §5.3).
//!
//! The stream is divided into rounds ("buckets") of width `w = ⌈1/ε⌉`. Each
//! monitored entry carries `(count, Δ)` where Δ is the round id at insertion
//! minus one — the maximum number of occurrences that could have been missed.
//! At every round boundary, entries with `count + Δ <= current_round` are
//! deleted. Space is `O((1/ε)·log(εN))`; estimates satisfy
//! `f(e) - εN <= count(e) <= f(e)`.
//!
//! To fit the suite-wide [`CounterEntry`] contract (`count` over-estimates,
//! `count - error` under-estimates), snapshots report
//! `count' = count + Δ` and `error = Δ`.

use std::collections::HashMap;

use cots_core::{
    CounterEntry, Element, FrequencyCounter, QueryableSummary, Result, Snapshot, SummaryConfig,
};

#[derive(Debug, Clone, Copy)]
struct Entry {
    count: u64,
    delta: u64,
}

/// Sequential Lossy Counting.
#[derive(Debug, Clone)]
pub struct LossyCounting<K: Element> {
    entries: HashMap<K, Entry>,
    /// Round width `w = ⌈1/ε⌉`.
    width: u64,
    /// Current round id `b = ⌈N/w⌉` (1-based; 0 before the first element).
    round: u64,
    total: u64,
}

impl<K: Element> LossyCounting<K> {
    /// Build with round width taken from the counter budget (`w =
    /// capacity`), i.e. ε = 1/capacity.
    pub fn new(config: SummaryConfig) -> Self {
        Self {
            entries: HashMap::new(),
            width: config.capacity as u64,
            round: 0,
            total: 0,
        }
    }

    /// Build from ε directly.
    pub fn with_epsilon(epsilon: f64) -> Result<Self> {
        Ok(Self::new(SummaryConfig::with_epsilon(epsilon)?))
    }

    /// Round width `w`.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Number of monitored entries.
    pub fn monitored(&self) -> usize {
        self.entries.len()
    }

    /// The current round id.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Delete provably infrequent entries; called automatically at round
    /// boundaries, public so policies (and the CoTS adaptation) can force a
    /// compression.
    pub fn compress(&mut self) {
        let round = self.round;
        self.entries.retain(|_, e| e.count + e.delta > round);
    }

    /// Verify algorithmic invariants (tests only).
    pub fn check_invariants(&self) {
        for e in self.entries.values() {
            assert!(e.delta < self.round.max(1), "delta below round id");
            assert!(e.count >= 1);
        }
    }
}

impl<K: Element> FrequencyCounter<K> for LossyCounting<K> {
    fn process(&mut self, item: K) {
        self.total += 1;
        let round = self.total.div_ceil(self.width);
        self.round = round;
        match self.entries.get_mut(&item) {
            Some(e) => e.count += 1,
            None => {
                self.entries.insert(
                    item,
                    Entry {
                        count: 1,
                        delta: round - 1,
                    },
                );
            }
        }
        if self.total.is_multiple_of(self.width) {
            self.compress();
        }
    }

    fn processed(&self) -> u64 {
        self.total
    }
}

impl<K: Element> QueryableSummary<K> for LossyCounting<K> {
    fn snapshot(&self) -> Snapshot<K> {
        Snapshot::new(
            self.entries
                .iter()
                .map(|(&k, e)| CounterEntry::new(k, e.count + e.delta, e.delta))
                .collect(),
            self.total,
        )
    }

    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        self.entries.get(item).map(|e| (e.count + e.delta, e.delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lc(width: usize) -> LossyCounting<u64> {
        LossyCounting::new(SummaryConfig::with_capacity(width).unwrap())
    }

    #[test]
    fn exact_within_first_round() {
        let mut l = lc(100);
        for e in [1u64, 1, 2, 3, 3, 3] {
            l.process(e);
        }
        assert_eq!(l.estimate(&3), Some((3, 0)));
        assert_eq!(l.estimate(&2), Some((1, 0)));
        l.check_invariants();
    }

    #[test]
    fn compress_drops_infrequent_at_round_boundary() {
        let mut l = lc(4);
        // Round 1: 1,2,3,4 — all get count 1, delta 0; at N=4 compression
        // drops entries with count + delta <= 1, i.e. all of them.
        for e in [1u64, 2, 3, 4] {
            l.process(e);
        }
        assert_eq!(l.monitored(), 0);
        // Round 2: element 1 twice survives (count 2 + delta 1 > 2).
        l.process(1);
        l.process(1);
        l.process(9);
        l.process(9); // N=8 boundary: 1 has (2,1) -> 3 > 2 keeps; 9 has (2,1) keeps.
        assert_eq!(l.monitored(), 2);
        l.check_invariants();
    }

    #[test]
    fn epsilon_bounds_hold() {
        // Skewed deterministic stream, ε = 1/8.
        let mut l = lc(8);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 7u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Skew: map to small ids with heavy head.
            let e = (x % 64).min(x % 8);
            l.process(e);
            *truth.entry(e).or_insert(0) += 1;
        }
        let n = l.processed();
        let eps_n = n / 8;
        let snap = l.snapshot();
        for e in snap.entries() {
            let t = truth[&e.item];
            assert!(e.count >= t, "upper bound violated");
            assert!(e.guaranteed() <= t, "lower bound violated");
        }
        // Completeness: anything with true count > εN must be monitored.
        for (&item, &t) in &truth {
            if t > eps_n {
                assert!(snap.get(&item).is_some(), "{item} with count {t} missing");
            }
        }
        // Space bound sanity: well under alphabet size for skewed input.
        assert!(l.monitored() <= 64);
        l.check_invariants();
    }

    #[test]
    fn forced_compress_is_idempotent() {
        let mut l = lc(10);
        for e in 0..5u64 {
            l.process(e);
        }
        let before = l.monitored();
        l.compress();
        let mid = l.monitored();
        l.compress();
        assert_eq!(mid, l.monitored());
        assert!(mid <= before);
    }

    #[test]
    fn snapshot_totals() {
        let mut l = lc(16);
        for e in [1u64, 1, 2] {
            l.process(e);
        }
        let s = l.snapshot();
        assert_eq!(s.total(), 3);
        assert_eq!(s.entries()[0].item, 1);
    }
}
