//! *Sticky Sampling* (Manku & Motwani, VLDB '02 — the same paper as Lossy
//! Counting, which the CoTS paper builds on for its §5.3 generalization).
//!
//! A probabilistic counter-based algorithm: a monitored element is always
//! incremented; an unmonitored one is admitted with probability `1/r`,
//! where the sampling rate `r` doubles epoch by epoch (epoch lengths `2t,
//! 2t, 4t, 8t, …` with `t = (1/ε)·ln(1/(s·δ))`). At each rate change every
//! entry is "unsampled": it loses one count per failed coin flip and is
//! dropped at zero. Expected space is `O((1/ε)·ln(1/(s·δ)))` —
//! *independent of the stream length*, which is Sticky Sampling's selling
//! point over Lossy Counting.
//!
//! Estimates never over-count and under-count by at most `εN` with
//! probability `1 − δ`. To fit the suite-wide [`CounterEntry`] contract,
//! snapshots report `count' = count + ⌈εN⌉` with `error = ⌈εN⌉` (the
//! guaranteed part `count' − error = count` is a true lower bound; the
//! upper bound is probabilistic, as documented).
//!
//! Randomness comes from an internal SplitMix64 generator seeded at
//! construction, so runs are reproducible without external dependencies.

use std::collections::HashMap;

use cots_core::{
    CotsError, CounterEntry, Element, FrequencyCounter, QueryableSummary, Result, Snapshot,
};

/// Sequential Sticky Sampling.
#[derive(Debug, Clone)]
pub struct StickySampling<K: Element> {
    counts: HashMap<K, u64>,
    /// Support threshold `s` (fraction of the stream).
    support: f64,
    /// Error bound ε.
    epsilon: f64,
    /// Current sampling rate `r` (a power of two).
    rate: u64,
    /// Elements remaining in the current epoch.
    remaining: u64,
    /// Base epoch length `t`.
    t: u64,
    total: u64,
    rng: SplitMix64,
}

#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A fair coin that lands heads with probability `1/r` (r a power of
    /// two).
    fn one_in(&mut self, r: u64) -> bool {
        debug_assert!(r.is_power_of_two());
        self.next() & (r - 1) == 0
    }
}

impl<K: Element> StickySampling<K> {
    /// Build with support `s`, error `ε` and failure probability `δ`,
    /// seeded for reproducibility.
    pub fn new(support: f64, epsilon: f64, delta: f64, seed: u64) -> Result<Self> {
        if !(support > 0.0 && support < 1.0) {
            return Err(CotsError::InvalidConfig(format!(
                "support must be in (0,1), got {support}"
            )));
        }
        if !(epsilon > 0.0 && epsilon < support) {
            return Err(CotsError::InvalidConfig(format!(
                "epsilon must be in (0, support), got {epsilon}"
            )));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CotsError::InvalidConfig(format!(
                "delta must be in (0,1), got {delta}"
            )));
        }
        let t = ((1.0 / epsilon) * (1.0 / (support * delta)).ln()).ceil() as u64;
        Ok(Self {
            counts: HashMap::new(),
            support,
            epsilon,
            rate: 1,
            remaining: 2 * t.max(1),
            t: t.max(1),
            total: 0,
            rng: SplitMix64(seed | 1),
        })
    }

    /// The support threshold `s`.
    pub fn support(&self) -> f64 {
        self.support
    }

    /// The error bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Current sampling rate.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Number of monitored entries.
    pub fn monitored(&self) -> usize {
        self.counts.len()
    }

    /// The additive slack `⌈εN⌉` applied to upper bounds.
    fn slack(&self) -> u64 {
        (self.epsilon * self.total as f64).ceil() as u64
    }

    /// Rate doubling: unsample every entry with geometric trimming.
    fn advance_epoch(&mut self) {
        self.rate *= 2;
        self.remaining = self.t * self.rate;
        let rng = &mut self.rng;
        self.counts.retain(|_, c| {
            // Diminish by one per unsuccessful coin toss (the toss
            // succeeds with probability 1/2 after a rate doubling).
            while *c > 0 && rng.next() & 1 == 1 {
                *c -= 1;
            }
            *c > 0
        });
    }

    /// The frequent set at the configured support: entries with
    /// `count >= (s - ε)·N` — the paper's output rule.
    pub fn frequent_at_support(&self) -> Vec<(K, u64)> {
        let min = ((self.support - self.epsilon) * self.total as f64).ceil() as u64;
        let mut v: Vec<(K, u64)> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= min.max(1))
            .map(|(&k, &c)| (k, c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

impl<K: Element> FrequencyCounter<K> for StickySampling<K> {
    fn process(&mut self, item: K) {
        self.total += 1;
        if self.remaining == 0 {
            self.advance_epoch();
        }
        self.remaining = self.remaining.saturating_sub(1);
        if let Some(c) = self.counts.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.rng.one_in(self.rate) {
            self.counts.insert(item, 1);
        }
    }

    fn processed(&self) -> u64 {
        self.total
    }
}

impl<K: Element> QueryableSummary<K> for StickySampling<K> {
    fn snapshot(&self) -> Snapshot<K> {
        let slack = self.slack();
        Snapshot::new(
            self.counts
                .iter()
                .map(|(&k, &c)| CounterEntry::new(k, c + slack, slack))
                .collect(),
            self.total,
        )
    }

    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        let slack = self.slack();
        self.counts.get(item).map(|&c| (c + slack, slack))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cots_datagen::ExactCounter;

    fn engine(seed: u64) -> StickySampling<u64> {
        StickySampling::new(0.01, 0.002, 0.01, seed).unwrap()
    }

    #[test]
    fn validates_parameters() {
        assert!(StickySampling::<u64>::new(0.0, 0.001, 0.1, 1).is_err());
        assert!(StickySampling::<u64>::new(0.01, 0.02, 0.1, 1).is_err()); // ε >= s
        assert!(StickySampling::<u64>::new(0.01, 0.001, 1.0, 1).is_err());
        assert!(engine(1).rate() == 1);
    }

    #[test]
    fn exact_within_first_epoch() {
        // Rate 1: every element is admitted, counts exact.
        let mut e = engine(7);
        for item in [1u64, 1, 2, 3, 3, 3] {
            e.process(item);
        }
        assert_eq!(e.estimate(&3).map(|(c, err)| c - err), Some(3));
        assert_eq!(e.monitored(), 3);
    }

    #[test]
    fn counts_never_overestimate_truth() {
        let mut e = engine(11);
        let mut truth = ExactCounter::new();
        let mut x = 3u64;
        for _ in 0..200_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (x % 10_000).min(x % 50);
            e.process(item);
            truth.process(item);
        }
        // Guaranteed part is a lower bound on the truth, always.
        for entry in e.snapshot().entries() {
            assert!(
                entry.guaranteed() <= truth.count(&entry.item),
                "item {}: guaranteed {} > true {}",
                entry.item,
                entry.guaranteed(),
                truth.count(&entry.item)
            );
        }
        // Rate must have advanced (stream far longer than 2t).
        assert!(e.rate() > 1, "rate stuck at 1 after 200k elements");
    }

    #[test]
    fn heavy_hitters_recalled_at_support() {
        // One element with 5% of a 100k stream, support 1%, ε 0.2%.
        let mut e = engine(13);
        let mut x = 9u64;
        for i in 0..100_000u64 {
            let item = if i % 20 == 0 {
                42u64
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                1000 + (x % 30_000)
            };
            e.process(item);
        }
        let frequent = e.frequent_at_support();
        assert!(
            frequent.iter().any(|&(k, _)| k == 42),
            "5% element missed at 1% support: {frequent:?}"
        );
    }

    #[test]
    fn space_stays_bounded() {
        // The expected space 2t/ε... here: 2t entries in expectation; allow
        // a generous constant factor.
        let mut e = engine(17);
        let t = e.t;
        let mut x = 5u64;
        for _ in 0..500_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            e.process(x); // all-distinct: worst case for space
        }
        assert!(
            (e.monitored() as u64) < 8 * t,
            "monitored {} should stay near 2t = {}",
            e.monitored(),
            2 * t
        );
    }

    #[test]
    fn reproducible_across_seeds() {
        let run = |seed| {
            let mut e = engine(seed);
            for i in 0..10_000u64 {
                e.process(i % 500);
            }
            e.snapshot().len()
        };
        assert_eq!(run(3), run(3));
        // Different seeds generally differ (probabilistic admission).
        // Not asserted strictly — equal sizes are possible but unlikely to
        // matter; assert the deterministic case only.
    }
}
