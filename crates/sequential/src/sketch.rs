//! Sketch-based baselines: *Count-Min* (Cormode & Muthukrishnan — the
//! paper's reference [6]) and *Count Sketch* (Charikar et al. — reference
//! [3]).
//!
//! The paper contrasts these with counter-based techniques: sketches hash
//! every element through `d` rows (higher per-element cost), keep no
//! per-element state (weaker, additive error bounds) and cannot enumerate
//! the frequent set by themselves. Following standard practice — and so the
//! sketches can implement [`QueryableSummary`] like every other engine —
//! each sketch is paired with a candidate set of the current top-`m`
//! estimated elements, maintained on the fly.

use std::collections::HashMap;

use cots_core::{
    CounterEntry, Element, FrequencyCounter, MulHash, QueryableSummary, Result, Snapshot,
    SummaryConfig,
};

/// Maintains the top-`m` candidates by estimated count next to a sketch.
#[derive(Debug, Clone)]
struct TopKeeper<K: Element> {
    entries: HashMap<K, u64>,
    capacity: usize,
}

impl<K: Element> TopKeeper<K> {
    fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::with_capacity(capacity * 2),
            capacity,
        }
    }

    /// Offer an updated estimate for `item`.
    fn offer(&mut self, item: K, estimate: u64) {
        if let Some(e) = self.entries.get_mut(&item) {
            *e = estimate;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(item, estimate);
            return;
        }
        // Replace the current minimum if the newcomer beats it.
        let (&min_item, &min_est) = self
            .entries
            .iter()
            .min_by_key(|(_, &v)| v)
            .expect("capacity > 0 and full");
        if estimate > min_est {
            self.entries.remove(&min_item);
            self.entries.insert(item, estimate);
        }
    }
}

/// Count-Min sketch with a top-`m` candidate set.
///
/// Width `w = ⌈e/ε⌉`, depth `d = ⌈ln(1/δ)⌉`; estimates over-count by at most
/// `εN` with probability `1 − δ`.
#[derive(Debug, Clone)]
pub struct CountMinSketch<K: Element> {
    rows: Vec<Vec<u64>>,
    width: usize,
    top: TopKeeper<K>,
    total: u64,
}

impl<K: Element> CountMinSketch<K> {
    /// Build from (ε, δ) with a `capacity`-sized candidate set.
    pub fn new(epsilon: f64, delta: f64, candidates: SummaryConfig) -> Result<Self> {
        let _ = SummaryConfig::with_epsilon(epsilon)?; // validates ε range
        if !(delta > 0.0 && delta < 1.0) {
            return Err(cots_core::CotsError::InvalidConfig(format!(
                "delta must be in (0, 1), got {delta}"
            )));
        }
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Ok(Self {
            rows: vec![vec![0u64; width]; depth],
            width,
            top: TopKeeper::new(candidates.capacity),
            total: 0,
        })
    }

    /// Sketch depth (number of rows).
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Sketch width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Point estimate: min over rows. Never under-counts.
    pub fn estimate_count(&self, item: &K) -> u64 {
        self.rows
            .iter()
            .enumerate()
            .map(|(r, row)| row[(MulHash::row_hash(item, r as u64) % self.width as u64) as usize])
            .min()
            .unwrap_or(0)
    }
}

impl<K: Element> FrequencyCounter<K> for CountMinSketch<K> {
    fn process(&mut self, item: K) {
        self.total += 1;
        let mut est = u64::MAX;
        for r in 0..self.rows.len() {
            let idx = (MulHash::row_hash(&item, r as u64) % self.width as u64) as usize;
            self.rows[r][idx] += 1;
            est = est.min(self.rows[r][idx]);
        }
        self.top.offer(item, est);
    }

    fn processed(&self) -> u64 {
        self.total
    }
}

impl<K: Element> QueryableSummary<K> for CountMinSketch<K> {
    fn snapshot(&self) -> Snapshot<K> {
        // Candidate estimates are refreshed from the sketch at snapshot
        // time; error is the εN additive bound expressed per entry as the
        // over-count possibility (count itself is the upper bound, and the
        // sketch gives no per-item lower bound better than 0, so we report
        // error = count − 0 capped at count... practically: the candidate's
        // sketched estimate with error equal to the worst-case collision
        // mass `total / width`).
        let collision_bound = self.total / self.width as u64;
        Snapshot::new(
            self.top
                .entries
                .keys()
                .map(|&k| {
                    let est = self.estimate_count(&k);
                    CounterEntry::new(k, est, collision_bound.min(est))
                })
                .collect(),
            self.total,
        )
    }

    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        let est = self.estimate_count(item);
        if est == 0 {
            None
        } else {
            Some((est, (self.total / self.width as u64).min(est)))
        }
    }
}

/// Count Sketch with a top-`m` candidate set.
///
/// Like Count-Min but each row also carries a ±1 sign hash; the estimate is
/// the *median* of the signed row estimates, giving two-sided error
/// `O(√(N₂)/w)` — tighter for skewed streams.
#[derive(Debug, Clone)]
pub struct CountSketch<K: Element> {
    rows: Vec<Vec<i64>>,
    width: usize,
    top: TopKeeper<K>,
    total: u64,
}

impl<K: Element> CountSketch<K> {
    /// Build with explicit width/depth and a `capacity`-sized candidate set.
    pub fn new(width: usize, depth: usize, candidates: SummaryConfig) -> Result<Self> {
        if width == 0 || depth == 0 {
            return Err(cots_core::CotsError::InvalidConfig(
                "sketch width and depth must be positive".into(),
            ));
        }
        Ok(Self {
            rows: vec![vec![0i64; width]; depth],
            width,
            top: TopKeeper::new(candidates.capacity),
            total: 0,
        })
    }

    #[inline]
    fn cell_and_sign(&self, item: &K, row: usize) -> (usize, i64) {
        let h = MulHash::row_hash(item, row as u64);
        let idx = ((h >> 1) % self.width as u64) as usize;
        let sign = if h & 1 == 0 { 1 } else { -1 };
        (idx, sign)
    }

    /// Point estimate: median of signed row readings, clamped at 0.
    pub fn estimate_count(&self, item: &K) -> u64 {
        let mut ests: Vec<i64> = (0..self.rows.len())
            .map(|r| {
                let (idx, sign) = self.cell_and_sign(item, r);
                self.rows[r][idx] * sign
            })
            .collect();
        ests.sort_unstable();
        let mid = ests.len() / 2;
        let median = if ests.len() % 2 == 1 {
            ests[mid]
        } else {
            (ests[mid - 1] + ests[mid]) / 2
        };
        median.max(0) as u64
    }
}

impl<K: Element> FrequencyCounter<K> for CountSketch<K> {
    fn process(&mut self, item: K) {
        self.total += 1;
        for r in 0..self.rows.len() {
            let (idx, sign) = self.cell_and_sign(&item, r);
            self.rows[r][idx] += sign;
        }
        let est = self.estimate_count(&item);
        self.top.offer(item, est);
    }

    fn processed(&self) -> u64 {
        self.total
    }
}

impl<K: Element> QueryableSummary<K> for CountSketch<K> {
    fn snapshot(&self) -> Snapshot<K> {
        // Count Sketch error is two-sided: report the estimate with an
        // error allowance of total/width on each side (count may also
        // under-estimate; the Snapshot contract is interpreted as the
        // symmetric confidence interval here and documented as such).
        let bound = self.total / self.width as u64;
        Snapshot::new(
            self.top
                .entries
                .keys()
                .map(|&k| {
                    let est = self.estimate_count(&k);
                    CounterEntry::new(
                        k,
                        est.saturating_add(bound),
                        bound.min(est.saturating_add(bound)),
                    )
                })
                .collect(),
            self.total,
        )
    }

    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        let est = self.estimate_count(item);
        if est == 0 {
            None
        } else {
            let bound = self.total / self.width as u64;
            Some((est.saturating_add(bound), bound))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cms() -> CountMinSketch<u64> {
        CountMinSketch::new(0.01, 0.01, SummaryConfig::with_capacity(8).unwrap()).unwrap()
    }

    #[test]
    fn cms_dimensions() {
        let s = cms();
        assert_eq!(s.width(), (std::f64::consts::E / 0.01).ceil() as usize);
        assert_eq!(s.depth(), 5); // ln(100) ≈ 4.6 -> 5
    }

    #[test]
    fn cms_never_undercounts() {
        let mut s = cms();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 1u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let e = x % 300;
            s.process(e);
            *truth.entry(e).or_insert(0) += 1;
        }
        for (&item, &t) in &truth {
            assert!(s.estimate_count(&item) >= t);
        }
    }

    #[test]
    fn cms_error_within_bound_for_heavy_items() {
        let mut s = cms();
        for i in 0..1000u64 {
            s.process(i % 10); // 10 heavy items
        }
        let n = s.processed();
        let eps_n = (0.01 * n as f64).ceil() as u64;
        for i in 0..10u64 {
            let est = s.estimate_count(&i);
            assert!(est >= 100);
            assert!(est <= 100 + eps_n, "est {est} exceeds bound");
        }
    }

    #[test]
    fn cms_snapshot_contains_heavy_candidates() {
        let mut s = cms();
        for i in 0..2000u64 {
            s.process(if i % 2 == 0 { 1 } else { i });
        }
        let snap = s.snapshot();
        assert_eq!(snap.top_k(1)[0].item, 1);
    }

    #[test]
    fn cms_rejects_bad_params() {
        assert!(
            CountMinSketch::<u64>::new(0.0, 0.1, SummaryConfig::with_capacity(4).unwrap()).is_err()
        );
        assert!(
            CountMinSketch::<u64>::new(0.1, 1.5, SummaryConfig::with_capacity(4).unwrap()).is_err()
        );
    }

    #[test]
    fn count_sketch_estimates_heavy_items() {
        let mut s =
            CountSketch::<u64>::new(512, 5, SummaryConfig::with_capacity(8).unwrap()).unwrap();
        let mut x = 9u64;
        for i in 0..4000u64 {
            let e = if i % 4 != 0 {
                7u64 // 75% of the stream
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                100 + (x % 500)
            };
            s.process(e);
        }
        let est = s.estimate_count(&7);
        let true_count = 3000;
        assert!(
            (est as i64 - true_count).unsigned_abs() < 200,
            "estimate {est} too far from {true_count}"
        );
        // The heavy item must be the top candidate.
        assert_eq!(s.snapshot().top_k(1)[0].item, 7);
    }

    #[test]
    fn count_sketch_unseen_items_near_zero() {
        let mut s =
            CountSketch::<u64>::new(256, 5, SummaryConfig::with_capacity(4).unwrap()).unwrap();
        for i in 0..100u64 {
            s.process(i % 3);
        }
        // An unseen item's median estimate should be small.
        assert!(s.estimate_count(&999) < 10);
    }

    #[test]
    fn count_sketch_rejects_zero_dims() {
        assert!(CountSketch::<u64>::new(0, 3, SummaryConfig::with_capacity(4).unwrap()).is_err());
        assert!(CountSketch::<u64>::new(8, 0, SummaryConfig::with_capacity(4).unwrap()).is_err());
    }

    #[test]
    fn top_keeper_replaces_minimum() {
        let mut t: TopKeeper<u64> = TopKeeper::new(2);
        t.offer(1, 10);
        t.offer(2, 5);
        t.offer(3, 7); // evicts 2
        assert!(t.entries.contains_key(&1));
        assert!(t.entries.contains_key(&3));
        assert!(!t.entries.contains_key(&2));
        t.offer(4, 1); // too small, ignored
        assert!(!t.entries.contains_key(&4));
        t.offer(3, 20); // update in place
        assert_eq!(t.entries[&3], 20);
    }
}
