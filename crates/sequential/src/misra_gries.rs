//! *Misra–Gries / Frequent* (Misra & Gries '82; Demaine et al. '02 — the
//! paper's reference [9]).
//!
//! Keeps at most `m` counters. A monitored element is incremented; an
//! unmonitored element takes a free counter if one exists; otherwise *every*
//! counter is decremented by one (conceptually matching `m+1` distinct
//! elements against each other and discarding all of them). Estimates
//! under-count by at most `D`, the number of decrement rounds, and
//! `D <= N/(m+1)`.
//!
//! To fit the suite-wide [`CounterEntry`] contract (`count` over-estimates,
//! `count - error` under-estimates), snapshots report `count' = count + D`
//! and `error = D`.

use std::collections::HashMap;

use cots_core::{
    CounterEntry, Element, FrequencyCounter, QueryableSummary, Result, Snapshot, SummaryConfig,
};

/// Sequential Misra–Gries.
#[derive(Debug, Clone)]
pub struct MisraGries<K: Element> {
    counts: HashMap<K, u64>,
    capacity: usize,
    /// Number of decrement rounds performed.
    decrements: u64,
    total: u64,
}

impl<K: Element> MisraGries<K> {
    /// Build with an explicit counter budget.
    pub fn new(config: SummaryConfig) -> Self {
        Self {
            counts: HashMap::with_capacity(config.capacity * 2),
            capacity: config.capacity,
            decrements: 0,
            total: 0,
        }
    }

    /// Build from ε: budget `⌈1/ε⌉` guarantees under-count ≤ εN.
    pub fn with_epsilon(epsilon: f64) -> Result<Self> {
        Ok(Self::new(SummaryConfig::with_epsilon(epsilon)?))
    }

    /// Number of monitored elements.
    pub fn monitored(&self) -> usize {
        self.counts.len()
    }

    /// Decrement rounds so far (the global error bound).
    pub fn decrement_rounds(&self) -> u64 {
        self.decrements
    }

    /// Verify algorithmic invariants (tests only).
    pub fn check_invariants(&self) {
        assert!(self.counts.len() <= self.capacity);
        assert!(self.decrements <= self.total / (self.capacity as u64 + 1));
        let kept: u64 = self.counts.values().sum();
        // Every decrement round discards m+1 units of mass (m counters plus
        // the arriving element); what remains is the monitored mass.
        assert_eq!(
            kept + self.decrements * (self.capacity as u64 + 1),
            self.total
        );
    }
}

impl<K: Element> FrequencyCounter<K> for MisraGries<K> {
    fn process(&mut self, item: K) {
        self.total += 1;
        if let Some(c) = self.counts.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(item, 1);
            return;
        }
        // Decrement round: the arriving element cancels one unit of every
        // monitored counter (and of itself).
        self.decrements += 1;
        self.counts.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    fn processed(&self) -> u64 {
        self.total
    }
}

impl<K: Element> QueryableSummary<K> for MisraGries<K> {
    fn snapshot(&self) -> Snapshot<K> {
        let d = self.decrements;
        Snapshot::new(
            self.counts
                .iter()
                .map(|(&k, &c)| CounterEntry::new(k, c + d, d))
                .collect(),
            self.total,
        )
    }

    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        self.counts
            .get(item)
            .map(|&c| (c + self.decrements, self.decrements))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mg(capacity: usize) -> MisraGries<u64> {
        MisraGries::new(SummaryConfig::with_capacity(capacity).unwrap())
    }

    #[test]
    fn exact_when_alphabet_fits() {
        let mut m = mg(8);
        for e in [1u64, 2, 2, 3, 3, 3] {
            m.process(e);
        }
        assert_eq!(m.estimate(&3), Some((3, 0)));
        assert_eq!(m.decrement_rounds(), 0);
        m.check_invariants();
    }

    #[test]
    fn decrement_round_discards_mass() {
        let mut m = mg(2);
        m.process(1);
        m.process(2);
        m.process(3); // full: decrement round; both counters hit 0.
        assert_eq!(m.monitored(), 0);
        assert_eq!(m.decrement_rounds(), 1);
        m.check_invariants();
    }

    #[test]
    fn majority_element_survives() {
        // Classic majority guarantee with m = 1: an absolute-majority
        // element is always the surviving counter.
        let mut m = mg(1);
        for e in [1u64, 2, 1, 3, 1, 4, 1] {
            m.process(e);
        }
        m.check_invariants();
        let snap = m.snapshot();
        assert_eq!(snap.entries()[0].item, 1);
    }

    #[test]
    fn bounds_hold() {
        let mut m = mg(4);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 3u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let e = (x % 32).min(x % 4);
            m.process(e);
            *truth.entry(e).or_insert(0) += 1;
        }
        m.check_invariants();
        let snap = m.snapshot();
        for e in snap.entries() {
            let t = truth[&e.item];
            assert!(e.count >= t, "upper bound: {} < {}", e.count, t);
            assert!(
                e.guaranteed() <= t,
                "lower bound: {} > {}",
                e.guaranteed(),
                t
            );
        }
        // D <= N/(m+1).
        assert!(m.decrement_rounds() <= m.processed() / 5);
    }

    #[test]
    fn heavy_hitters_above_n_over_m_are_kept() {
        let mut m = mg(4);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        // 60% mass on element 1, rest spread.
        let mut x = 11u64;
        for i in 0..1000u64 {
            let e = if i % 5 < 3 {
                1u64
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                2 + (x % 50)
            };
            m.process(e);
            *truth.entry(e).or_insert(0) += 1;
        }
        let n = m.processed();
        let snap = m.snapshot();
        for (&item, &t) in &truth {
            if t > n / 5 {
                // Anything above N/(m+1) must be monitored.
                assert!(snap.get(&item).is_some(), "{item} ({t}) missing");
            }
        }
    }
}
