//! Model checks for the riskiest delegation protocols, written against
//! [`cots::sync_shim`] so the same code runs two ways:
//!
//! * plain `cargo test` — each model executes once with real threads (a
//!   smoke run that keeps the models compiling);
//! * `RUSTFLAGS="--cfg loom" cargo test --test loom_models` — the shim
//!   re-exports `loom`'s atomics and the models are schedule-explored by
//!   the checker (the vendored stand-in randomizes schedules over
//!   `LOOM_ITERS` iterations; the registry loom crate makes the same models
//!   exhaustive).
//!
//! The models deliberately re-state the protocols against shim atomics
//! instead of instantiating `CotsEngine` — loom-style checking needs a
//! bounded handful of atomic operations, and restating them keeps the
//! production hot path free of shim indirection. Each model's step function
//! mirrors one engine routine and says which.

use std::sync::Arc;

use cots::node::TOMB;
use cots::sync_shim::{model, thread, AtomicBool, AtomicU64, Ordering};

// =====================================================================
// Model 1: the element-level `pending` protocol — delegation (Algorithm
// 2), relinquish (CAS 1→0 else swap(1)), and the `0 → TOMB` tombstone CAS
// with lazy unlink. Mirrors `CotsEngine::delegate_batch` +
// `HashTable::try_remove`.
// =====================================================================

/// One hash-table entry generation: tombstoning forces contenders onto the
/// next generation, exactly like re-running `lookup_or_insert` after the
/// TOMB-retry in `delegate_batch`.
#[derive(Default)]
struct Entry {
    pending: AtomicU64,
    dead: AtomicBool,
}

/// The increment side of Algorithm 2 for one unit: log on the current
/// generation; on `r == 1` become owner and relinquish; on a tombstoned
/// entry undo and retry on the successor generation. Returns the mass this
/// call applied to the shared count.
fn delegate_unit(generations: &[Entry]) -> u64 {
    for entry in generations {
        let r = entry.pending.fetch_add(1, Ordering::AcqRel) + 1;
        if r >= TOMB {
            // Tombstoned under us: undo, move to the next generation.
            entry.pending.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        if r > 1 {
            // Delegated: the current owner will apply our unit.
            return 0;
        }
        // Owner: consume our unit plus everything logged while we worked
        // (the relinquish protocol: CAS 1→0, else swap(1) and re-apply).
        let mut consumed = 1u64;
        loop {
            if entry
                .pending
                .compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return consumed;
            }
            let s = entry.pending.swap(1, Ordering::AcqRel);
            consumed += s - 1;
        }
    }
    panic!("all generations tombstoned — model sized too small");
}

/// The eviction side: `HashTable::try_remove`'s non-blocking `0 → TOMB`
/// CAS plus the dead flag (physical unlink is lazy and irrelevant to the
/// counting protocol). Returns whether the tombstone landed.
fn try_remove(entry: &Entry) -> bool {
    if entry
        .pending
        .compare_exchange(0, TOMB, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        entry.dead.store(true, Ordering::Release);
        true
    } else {
        false
    }
}

/// Two incrementers race one evictor on a single key. Checked invariants:
///
/// * **conservation** — every delegated unit is applied exactly once,
///   whichever generation it lands on and however the tombstone interleaves;
/// * **tombstone finality** — a dead generation holds `pending == TOMB`
///   exactly: transient `fetch_add`s were all undone, no owner appeared
///   after the CAS.
#[test]
fn pending_tombstone_protocol_conserves_mass() {
    model(|| {
        let generations: Arc<[Entry; 2]> = Arc::new([Entry::default(), Entry::default()]);
        let applied = Arc::new(AtomicU64::new(0));
        const UNITS_PER_THREAD: u64 = 2;

        let mut handles = Vec::new();
        for _ in 0..2 {
            let generations = generations.clone();
            let applied = applied.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..UNITS_PER_THREAD {
                    let mass = delegate_unit(&generations[..]);
                    if mass > 0 {
                        applied.fetch_add(mass, Ordering::AcqRel);
                    }
                }
            }));
        }
        let evictor = {
            let generations = generations.clone();
            thread::spawn(move || try_remove(&generations[0]))
        };
        for h in handles {
            h.join().unwrap();
        }
        let tombstoned = evictor.join().unwrap();

        assert_eq!(
            applied.load(Ordering::Acquire),
            2 * UNITS_PER_THREAD,
            "delegated mass lost or duplicated"
        );
        let gen0 = generations[0].pending.load(Ordering::Acquire);
        if tombstoned {
            assert!(generations[0].dead.load(Ordering::Acquire));
            assert_eq!(gen0, TOMB, "tombstoned entry must drain to exactly TOMB");
        } else {
            assert_eq!(gen0, 0, "live entry must drain to zero");
        }
        assert_eq!(generations[1].pending.load(Ordering::Acquire), 0);
    });
}

// =====================================================================
// Model 1b: the combined-flush variant of the `pending` protocol — the
// combining front-end's `fetch_add(count)` with the owner keeping exactly
// one pending unit (the aggregate rides in the request), racing the
// `0 → TOMB` tombstone CAS. Mirrors `CotsEngine::flush_mass`.
// =====================================================================

/// `CotsEngine::flush_mass` for an aggregated `count`: log the whole mass
/// with one `fetch_add(count)`; on a tombstoned entry undo and retry on
/// the successor generation; on winning ownership (`prev == 0`) drop back
/// to exactly one held unit — the aggregate is applied via the request —
/// and run the relinquish loop. Returns the mass this call applied.
fn flush_mass(generations: &[Entry], count: u64) -> u64 {
    for entry in generations {
        let prev = entry.pending.fetch_add(count, Ordering::AcqRel);
        if prev >= TOMB {
            // Tombstoned under us: undo the whole aggregate, next
            // generation.
            entry.pending.fetch_sub(count, Ordering::AcqRel);
            continue;
        }
        if prev > 0 {
            // Delegated: all `count` units are logged mass for the owner.
            return 0;
        }
        // Owner. Keep ONE unit of `pending`; the other `count - 1` would
        // otherwise be re-applied by relinquish as logged mass
        // (double-count). `pending >= 1` throughout, so the tombstone CAS
        // cannot land in between.
        if count > 1 {
            entry.pending.fetch_sub(count - 1, Ordering::AcqRel);
        }
        let mut consumed = count;
        loop {
            if entry
                .pending
                .compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return consumed;
            }
            let s = entry.pending.swap(1, Ordering::AcqRel);
            consumed += s - 1;
        }
    }
    panic!("all generations tombstoned — model sized too small");
}

/// Two combined flushers (different aggregate sizes) race one evictor.
/// Checked invariants:
///
/// * **mass conservation** — every aggregated occurrence is applied
///   exactly once: no `count - 1` double-count when a flusher wins
///   ownership, no loss when its mass is absorbed as logged units or
///   bounced off a tombstone onto the next generation;
/// * **tombstone finality** — a dead generation drains to exactly `TOMB`.
#[test]
fn combined_flush_tombstone_conserves_mass() {
    model(|| {
        let generations: Arc<[Entry; 2]> = Arc::new([Entry::default(), Entry::default()]);
        let applied = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for counts in [[3u64, 1], [2, 2]] {
            let generations = generations.clone();
            let applied = applied.clone();
            handles.push(thread::spawn(move || {
                for count in counts {
                    let mass = flush_mass(&generations[..], count);
                    if mass > 0 {
                        applied.fetch_add(mass, Ordering::AcqRel);
                    }
                }
            }));
        }
        let evictor = {
            let generations = generations.clone();
            thread::spawn(move || try_remove(&generations[0]))
        };
        for h in handles {
            h.join().unwrap();
        }
        let tombstoned = evictor.join().unwrap();

        assert_eq!(
            applied.load(Ordering::Acquire),
            3 + 1 + 2 + 2,
            "aggregated mass lost or duplicated"
        );
        let gen0 = generations[0].pending.load(Ordering::Acquire);
        if tombstoned {
            assert!(generations[0].dead.load(Ordering::Acquire));
            assert_eq!(gen0, TOMB, "tombstoned entry must drain to exactly TOMB");
        } else {
            assert_eq!(gen0, 0, "live entry must drain to zero");
        }
        assert_eq!(generations[1].pending.load(Ordering::Acquire), 0);
    });
}

// =====================================================================
// Model 2: bucket-level delegation during minimum-bucket advancement —
// enqueue + owner-CAS drain rights with the release-recheck pattern, and
// the `is_gc` rescue when the minimum bucket is retired under a logged
// request. Mirrors `CotsEngine::{enqueue, try_drain, forward_gc_queue}`.
// =====================================================================

/// A bucket reduced to the protocol-relevant state: a count of logged
/// requests stands in for the SegQueue (the protocol only moves counts).
#[derive(Default)]
struct ModelBucket {
    queued: AtomicU64,
    owner: AtomicBool,
    gc: AtomicBool,
    drained: AtomicU64,
}

/// `CotsEngine::forward_gc_queue`: move everything logged on a retired
/// bucket to its successor and kick the successor's drain.
fn forward(from: &ModelBucket, to: &ModelBucket) {
    let n = from.queued.swap(0, Ordering::AcqRel);
    if n > 0 {
        to.queued.fetch_add(n, Ordering::AcqRel);
        try_drain(to, None);
    }
}

/// `CotsEngine::try_drain`: acquire-and-drain with the release-recheck
/// pattern. `next` is the forwarding target while `b` can still be retired
/// (None for the terminal bucket of the model, which is never retired).
fn try_drain(b: &ModelBucket, next: Option<&ModelBucket>) {
    loop {
        if b.gc.load(Ordering::Acquire) {
            if let Some(n) = next {
                forward(b, n);
            }
            return;
        }
        if b.owner
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // Someone else holds drain rights; their release-recheck covers
            // anything we logged.
            return;
        }
        // Re-check under ownership: retirement may have won the race.
        if b.gc.load(Ordering::Acquire) {
            b.owner.store(false, Ordering::Release);
            if let Some(n) = next {
                forward(b, n);
            }
            return;
        }
        let n = b.queued.swap(0, Ordering::AcqRel);
        b.drained.fetch_add(n, Ordering::AcqRel);
        b.owner.store(false, Ordering::Release);
        // Release-recheck: a request logged between our swap and the
        // release would otherwise strand (its thread saw us as owner).
        if b.queued.load(Ordering::Acquire) == 0 {
            return;
        }
    }
}

/// `CotsEngine::enqueue`: log the request, then rescue it if the bucket
/// turned out to be retired, else try for drain rights.
fn enqueue(b: &ModelBucket, next: &ModelBucket) {
    b.queued.fetch_add(1, Ordering::AcqRel);
    if b.gc.load(Ordering::Acquire) {
        forward(b, next);
        return;
    }
    try_drain(b, Some(next));
}

/// The drain-exit retirement of an emptied minimum bucket: take ownership,
/// retire only if still empty, then rescue anything that raced in.
fn retire_if_empty(b: &ModelBucket, next: &ModelBucket) -> bool {
    if b.owner
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        return false;
    }
    let retired = if b.queued.load(Ordering::Acquire) == 0 && !b.gc.load(Ordering::Acquire) {
        b.gc.store(true, Ordering::Release);
        true
    } else {
        false
    };
    b.owner.store(false, Ordering::Release);
    if retired {
        // Rescue the race window between the emptiness check and the gc
        // store: requests logged there saw gc == false.
        forward(b, next);
    } else if b.queued.load(Ordering::Acquire) > 0 {
        // Release-recheck, as after every ownership release: an enqueuer
        // that lost the owner CAS to us relies on it.
        try_drain(b, Some(next));
    }
    retired
}

/// Two enqueuers race a retirer on the minimum bucket. Checked invariant:
/// **no logged request is ever lost** — everything enqueued is drained on
/// the minimum bucket or its successor, and nothing is left queued once
/// all threads (whose exits all pass through a recheck) have quiesced.
#[test]
fn min_bucket_retirement_never_loses_requests() {
    model(|| {
        let min = Arc::new(ModelBucket::default());
        let succ = Arc::new(ModelBucket::default());
        const REQS_PER_THREAD: u64 = 2;

        let mut handles = Vec::new();
        for _ in 0..2 {
            let min = min.clone();
            let succ = succ.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..REQS_PER_THREAD {
                    enqueue(&min, &succ);
                }
            }));
        }
        let retirer = {
            let min = min.clone();
            let succ = succ.clone();
            thread::spawn(move || retire_if_empty(&min, &succ))
        };
        for h in handles {
            h.join().unwrap();
        }
        let _ = retirer.join().unwrap();

        // Quiescent sweep, as finalize() would: residue left because a
        // late enqueuer lost the owner CAS to a thread that then observed
        // an empty queue is picked up here through the same entry points.
        try_drain(&min, Some(&succ));
        try_drain(&succ, None);

        let total = 2 * REQS_PER_THREAD;
        let drained =
            min.drained.load(Ordering::Acquire) + succ.drained.load(Ordering::Acquire);
        assert_eq!(drained, total, "logged requests lost or duplicated");
        assert_eq!(min.queued.load(Ordering::Acquire), 0);
        assert_eq!(succ.queued.load(Ordering::Acquire), 0);
        if min.gc.load(Ordering::Acquire) {
            assert_eq!(
                min.drained.load(Ordering::Acquire) + succ.drained.load(Ordering::Acquire),
                total,
                "retired minimum bucket must have forwarded everything"
            );
        }
    });
}
