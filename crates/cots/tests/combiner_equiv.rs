//! Property tests: the combining front-end is an *optimization*, not a
//! semantic change.
//!
//! Two regimes, two guarantees:
//!
//! * **No eviction** (alphabet fits the counter budget): a single-threaded
//!   batched run is deterministic, so totals, per-element estimates and
//!   error terms must be *bit-identical* with the front-end on vs. off.
//! * **Eviction churn** (alphabet larger than the budget): batching
//!   reorders occurrences within a batch, so individual estimates may
//!   differ — but count conservation (`Σ counts == N`), the Space Saving
//!   overestimate property (`f ≤ f̂`) and the guarantee bound
//!   (`f̂ − ε ≤ f`) must hold for both runs against ground truth.

use std::collections::HashMap;

use cots::CotsEngine;
use cots_core::{ConcurrentCounter, CotsConfig, QueryableSummary};
use proptest::collection::vec;
use proptest::prelude::*;

fn run(cfg: CotsConfig, stream: &[u64], batch: usize) -> CotsEngine<u64> {
    let e = CotsEngine::new(cfg).unwrap();
    for chunk in stream.chunks(batch) {
        e.delegate_batch(chunk);
    }
    e.finalize();
    e.check_quiescent_invariants();
    e
}

fn ground_truth(stream: &[u64]) -> HashMap<u64, u64> {
    let mut t = HashMap::new();
    for &k in stream {
        *t.entry(k).or_insert(0u64) += 1;
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn front_end_is_exact_when_nothing_evicts(
        stream in vec(0u64..64, 1..2_000),
        batch in 1usize..512,
    ) {
        let cfg = CotsConfig::for_capacity(64).unwrap();
        let on = run(cfg, &stream, batch);
        let off = run(cfg.without_combiner(), &stream, batch);
        prop_assert_eq!(on.processed(), off.processed());
        prop_assert_eq!(on.monitored(), off.monitored());
        let truth = ground_truth(&stream);
        for k in 0..64u64 {
            prop_assert_eq!(
                on.estimate_point(&k),
                off.estimate_point(&k),
                "estimate diverged for key {}", k
            );
            // And both are exact: no eviction means zero error.
            prop_assert_eq!(
                on.estimate_point(&k),
                truth.get(&k).map(|&c| (c, 0)),
                "estimate wrong for key {}", k
            );
        }
    }

    #[test]
    fn front_end_preserves_bounds_under_eviction(
        stream in vec(0u64..256, 1..2_000),
        batch in 1usize..512,
    ) {
        let cfg = CotsConfig::for_capacity(16).unwrap();
        let on = run(cfg, &stream, batch);
        let off = run(cfg.without_combiner(), &stream, batch);
        let n = stream.len() as u64;
        let truth = ground_truth(&stream);
        for (label, e) in [("on", &on), ("off", &off)] {
            prop_assert_eq!(e.processed(), n, "total ({})", label);
            let snap = e.snapshot();
            let sum: u64 = snap.entries().iter().map(|x| x.count).sum();
            prop_assert_eq!(sum, n, "count conservation ({})", label);
            for entry in snap.entries() {
                let f = truth.get(&entry.item).copied().unwrap_or(0);
                prop_assert!(
                    entry.count >= f,
                    "({}) overestimate property: {:?} vs truth {}", label, entry, f
                );
                prop_assert!(
                    entry.count - entry.error <= f,
                    "({}) guarantee bound: {:?} vs truth {}", label, entry, f
                );
            }
        }
    }

    #[test]
    fn front_end_counters_account_for_every_occurrence(
        stream in vec(0u64..32, 2..2_000),
        batch in 2usize..512,
    ) {
        // Single-threaded: every occurrence either crosses the boundary,
        // is logged for an owner, or was absorbed by the front-end.
        let cfg = CotsConfig::for_capacity(32).unwrap();
        let e = run(cfg, &stream, batch);
        let w = e.work();
        prop_assert_eq!(w.elements, stream.len() as u64);
        prop_assert_eq!(
            w.boundary_crossings + w.delegated_increments + w.combined_increments,
            w.elements,
            "work counters must partition the stream"
        );
    }
}
