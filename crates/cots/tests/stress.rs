//! Concurrency stress tests for the CoTS engine: each one hammers a
//! specific race the design must survive — tombstone vs increment, minimum
//! advancement storms, GC-forwarding of bucket queues, and mixed
//! adversarial churn — and then verifies full structural invariants and
//! exact count conservation at quiescence.

use std::sync::Arc;

use cots::{CotsEngine, RuntimeOptions};
use cots_core::{CheckInvariants, ConcurrentCounter, CotsConfig, QueryableSummary};

fn engine(capacity: usize) -> Arc<CotsEngine<u64>> {
    Arc::new(CotsEngine::new(CotsConfig::for_capacity(capacity).unwrap()).unwrap())
}

fn verify(e: &CotsEngine<u64>, n: u64) {
    e.finalize();
    // The full structural audit (collects every violation; see
    // cots_core::invariants), superset of check_quiescent_invariants.
    e.validate();
    assert_eq!(e.processed(), n);
    let sum: u64 = e.snapshot().entries().iter().map(|x| x.count).sum();
    assert_eq!(sum, n, "count conservation");
}

/// Tombstone storm: tiny capacity, all-distinct keys from every thread —
/// every element triggers an overwrite, so `try_remove`/retry races and
/// chain GC run constantly.
#[test]
fn tombstone_storm() {
    let e = engine(4);
    let threads = 8;
    let per = 5_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let e = e.clone();
            s.spawn(move || {
                for i in 0..per {
                    // Unique key per (thread, i): pure eviction churn.
                    e.delegate((t as u64) << 32 | i);
                }
            });
        }
    });
    verify(&e, threads as u64 * per);
    let w = e.work();
    assert!(w.overwrites > 0);
}

/// Minimum-advance storm: two alternating hot keys with capacity 2 — the
/// minimum bucket empties and is retired constantly, exercising the
/// sentinel-anchored bucket turnover and queue forwarding. (This is the
/// workload that exposed the historical min-pointer races; see
/// docs/PROTOCOL.md §7.)
#[test]
fn min_advance_storm() {
    let e = engine(2);
    let threads = 6;
    let per = 8_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let e = e.clone();
            s.spawn(move || {
                for i in 0..per {
                    e.delegate((t as u64 + i) % 2);
                }
            });
        }
    });
    verify(&e, threads as u64 * per);
    assert!(
        e.work().gc_buckets > 0,
        "min buckets must have been collected"
    );
    // Both keys survive with exact totals (alphabet == capacity).
    let snap = e.snapshot();
    assert_eq!(snap.len(), 2);
    assert!(snap.entries().iter().all(|x| x.error == 0));
}

/// Delegation pile-up: one hot key and many threads with deliberately long
/// descheduling (oversubscription) so `pending` accumulates large logged
/// masses before each relinquish.
#[test]
fn bulk_increment_pileup() {
    let e = engine(8);
    let threads = 16;
    let per = 4_000u64;
    std::thread::scope(|s| {
        for _ in 0..threads {
            let e = e.clone();
            s.spawn(move || {
                for _ in 0..per {
                    e.delegate(99);
                }
            });
        }
    });
    verify(&e, threads as u64 * per);
    let (count, error) = e.estimate(&99).unwrap();
    assert_eq!(count, threads as u64 * per);
    assert_eq!(error, 0);
    let w = e.work();
    assert!(
        w.delegated_increments > 0,
        "16 threads on one key must delegate"
    );
}

/// Mixed adversarial churn through the public runtime, with interleaved
/// lock-free readers.
#[test]
fn mixed_churn_with_readers() {
    let e = engine(64);
    let n = 120_000usize;
    // Half hot keys, half one-shot keys, deterministic. Each of the 16 hot
    // keys occurs n/32 = 3750 times, well above the eviction floor
    // N/m = 1875 of a 64-counter summary.
    let stream: Vec<u64> = (0..n as u64)
        .map(|i| {
            if i % 2 == 0 {
                (i / 2) % 16
            } else {
                1_000_000 + i
            }
        })
        .collect();
    std::thread::scope(|s| {
        let we = e.clone();
        let ws = &stream;
        s.spawn(move || {
            cots::run(
                &we,
                ws,
                RuntimeOptions {
                    threads: 6,
                    batch: 256,
                    adaptive: false,
                },
            )
            .unwrap();
        });
        for _ in 0..2 {
            let e = e.clone();
            s.spawn(move || {
                for _ in 0..500 {
                    let snap = e.snapshot();
                    for entry in snap.entries() {
                        assert!(entry.error <= entry.count);
                    }
                    let _ = e.estimate(&4);
                    let _ = e.kth_frequency(7);
                }
            });
        }
    });
    verify(&e, n as u64);
    // The 16 hot keys (each ≈ n/32 ≈ 3750 ≫ eviction floor) must all be
    // monitored with exact counts.
    let snap = e.snapshot();
    for k in 0..16u64 {
        let entry = snap.get(&k).expect("hot key monitored");
        assert!(entry.guaranteed() >= 3_000, "hot key {k}: {entry:?}");
    }
}

/// Capacity-1 pathologies: a single counter with mixed keys — the minimum
/// bucket is *always* the only bucket and every new key must defer or
/// overwrite.
#[test]
fn capacity_one_survives_concurrency() {
    let e = engine(1);
    let threads = 4;
    let per = 3_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let e = e.clone();
            s.spawn(move || {
                for i in 0..per {
                    e.delegate(if i % 3 == 0 { 7 } else { (t as u64) << 32 | i });
                }
            });
        }
    });
    verify(&e, threads as u64 * per);
    assert_eq!(e.snapshot().len(), 1);
}

/// Repeated runs on one engine instance (windowed interval-query usage
/// pattern): state must stay consistent across run boundaries.
#[test]
fn multiple_runs_accumulate() {
    let e = engine(64);
    let mut total = 0u64;
    for window in 0..5u64 {
        let stream: Vec<u64> = (0..10_000u64).map(|i| (i + window) % 100).collect();
        cots::run(
            &e,
            &stream,
            RuntimeOptions {
                threads: 3,
                batch: 512,
                adaptive: false,
            },
        )
        .unwrap();
        total += stream.len() as u64;
        assert_eq!(e.processed(), total);
    }
    verify(&e, total);
}

/// Batched ingestion with the combining front-end enabled (the default
/// config) under eviction churn: aggregated multi-unit flushes race
/// tombstones, overwrite deferrals and bucket retirement, and the whole
/// aggregate must bounce to a fresh entry when its node dies mid-flush.
#[test]
fn combined_batches_survive_eviction_churn() {
    let e = engine(16);
    let threads = 8;
    let per = 6_000usize;
    std::thread::scope(|s| {
        for t in 0..threads {
            let e = e.clone();
            s.spawn(move || {
                let mut x = 0x243F_6A88_85A3_08D3u64 ^ t as u64;
                let mut buf = Vec::with_capacity(64);
                for i in 0..per {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    // Hot head (combines) + wide cold tail (churns
                    // overwrites against the 16-counter budget).
                    buf.push(if x & 3 != 0 {
                        x % 8
                    } else {
                        (1 << 40) | (x % 50_000)
                    });
                    if buf.len() == 64 || i + 1 == per {
                        e.ingest_batch(&buf);
                        buf.clear();
                    }
                }
            });
        }
    });
    verify(&e, (threads * per) as u64);
    let w = e.work();
    assert!(w.combiner_flushes > 0, "front-end never engaged");
    assert!(w.combined_increments > 0);
    assert!(w.overwrites > 0, "no eviction churn exercised");
    // The hot keys absorb most of the stream; combining must show up as
    // fewer crossings than elements.
    assert!(w.boundary_crossings < w.elements);
}
