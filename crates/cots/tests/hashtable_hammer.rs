//! Focused hammering of the delegation hash table and the pending-counter
//! protocol, independent of the stream summary.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam::epoch;

use cots_core::report::WorkTally;
use cots_core::MulHash;

use cots::hashtable::HashTable;
use cots::node::TOMB;

fn table(bits: u32) -> Arc<HashTable<u64>> {
    Arc::new(HashTable::new(bits, Arc::new(WorkTally::new())))
}

/// Simulate the full Algorithm-2 element-level protocol (without a summary):
/// counts logged through `pending` must be conserved exactly even while
/// overwriters tombstone idle entries.
#[test]
fn pending_protocol_conserves_under_eviction_churn() {
    let t = table(6);
    let threads = 8;
    let per = 20_000u64;
    // Each thread "applies" the logged mass it wins; an applied unit is a
    // unit that reached a boundary crossing and was consumed via the
    // CAS/swap relinquish protocol.
    let applied: Arc<std::sync::atomic::AtomicU64> = Arc::new(0.into());
    std::thread::scope(|s| {
        for tid in 0..threads {
            let t = t.clone();
            let applied = applied.clone();
            s.spawn(move || {
                let mut local_applied = 0u64;
                let mut x = 0x1234_5678u64 ^ (tid as u64) << 32;
                for i in 0..per {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let guard = epoch::pin();
                    // Mostly a small hot set; occasionally evict an idle
                    // entry, forcing re-insertion races.
                    if i % 97 == 0 {
                        let key = x % 24;
                        if let Some(n) = t.lookup(&key, &guard) {
                            // SAFETY: returned under the live `guard` above;
                            // nothing is reclaimed while that pin is held.
                            let node = unsafe { n.deref() };
                            let _ = t.try_remove(node);
                        }
                    }
                    let key = x % 24;
                    loop {
                        let n = t.lookup_or_insert(key, &guard);
                        // SAFETY: returned under the live `guard` above;
                        // nothing is reclaimed while that pin is held.
                        let node = unsafe { n.deref() };
                        let r = node.pending.fetch_add(1, Ordering::AcqRel) + 1;
                        if r >= TOMB {
                            node.pending.fetch_sub(1, Ordering::AcqRel);
                            continue;
                        }
                        if r == 1 {
                            // We own the element: consume our unit plus any
                            // logged mass, mirroring relinquish.
                            let mut consumed = 1u64;
                            loop {
                                if node
                                    .pending
                                    .compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire)
                                    .is_ok()
                                {
                                    break;
                                }
                                let s = node.pending.swap(1, Ordering::AcqRel);
                                consumed += s - 1;
                            }
                            local_applied += consumed;
                        }
                        break;
                    }
                }
                applied.fetch_add(local_applied, Ordering::AcqRel);
            });
        }
    });
    // Every fetch_add unit was either applied by some owner or undone by
    // its own thread (the TOMB backoff, which retries and eventually
    // applies). At quiescence all pending must be zero, so applied == all.
    assert_eq!(
        applied.load(Ordering::Acquire),
        threads as u64 * per,
        "logged increments lost or duplicated"
    );
    let guard = epoch::pin();
    for key in 0..24u64 {
        if let Some(n) = t.lookup(&key, &guard) {
            assert_eq!(
                // SAFETY: returned under the live `guard` above; nothing is
                // reclaimed while that pin is held.
                unsafe { n.deref() }.pending.load(Ordering::Acquire),
                0,
                "key {key} left owned"
            );
        }
    }
    // A GC pass must leave no tombstoned entry reachable from any chain.
    t.gc_all_chains(&guard);
    assert_eq!(t.dead_reachable(&guard), 0, "tombstones survive a GC pass");
}

/// Many threads insert overlapping key ranges while others tombstone:
/// the table must end with exactly one live node per surviving key and no
/// duplicates ever.
#[test]
fn no_duplicate_live_keys_under_races() {
    let t = table(4); // deliberately tiny: long chains, hot insert locks
    let threads = 6;
    std::thread::scope(|s| {
        for tid in 0..threads {
            let t = t.clone();
            s.spawn(move || {
                let mut x = 0xDEAD_BEEFu64 ^ tid as u64;
                for _ in 0..15_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let guard = epoch::pin();
                    let key = x % 40;
                    match x % 3 {
                        0 => {
                            let n = t.lookup_or_insert(key, &guard);
                            // SAFETY: returned under the live `guard` above;
                            // nothing is reclaimed while that pin is held.
                            assert_eq!(unsafe { n.deref() }.key, key);
                        }
                        1 => {
                            if let Some(n) = t.lookup(&key, &guard) {
                                // SAFETY: returned under the live `guard`
                                // above; nothing is reclaimed while that pin
                                // is held.
                                let _ = t.try_remove(unsafe { n.deref() });
                            }
                        }
                        _ => {
                            let _ = t.lookup(&key, &guard);
                        }
                    }
                }
            });
        }
    });
    // A GC pass at the barrier leaves only live nodes reachable.
    let guard = epoch::pin();
    t.gc_all_chains(&guard);
    assert_eq!(t.dead_reachable(&guard), 0, "tombstones survive a GC pass");
    // Re-insert everything; the live count must land exactly on 40.
    for key in 0..40u64 {
        let _ = t.lookup_or_insert(key, &guard);
    }
    assert_eq!(t.live_count(&guard), 40);
}

/// Hash quality sanity at table scale: over a realistic id space, chains
/// stay short at 0.5 load factor.
#[test]
fn chains_stay_short_at_design_load() {
    let bits = 12;
    let t = table(bits);
    let guard = epoch::pin();
    let n = 1 << (bits - 1); // 0.5 load factor
    for i in 0..n as u64 {
        // Scrambled ids, like the generators produce.
        let _ = t.lookup_or_insert(MulHash::finalize(i), &guard);
    }
    assert_eq!(t.live_count(&guard), n);
    // With 2^12 buckets and 2^11 keys, the longest chain under a good hash
    // stays in the single digits (the birthday tail).
    // live_count already walked everything; as a proxy for chain length we
    // verify lookups of all keys still succeed quickly (structure sound).
    for i in 0..n as u64 {
        assert!(t.lookup(&MulHash::finalize(i), &guard).is_some());
    }
}
