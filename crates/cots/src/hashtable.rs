//! The thread-safe search structure (paper §5.2.1).
//!
//! A fixed-size chained hash table (the paper sizes it so that "the hash
//! table will not require a resize", leveraging the bounded counter budget):
//!
//! * **Readers need no locks** — chains are traversed lock-free under an
//!   epoch guard.
//! * **Deletions are lazy** — `try_remove` only tombstones (the `pending`
//!   `0 → TOMB` CAS) and flags the node; physical unlinking happens during
//!   later insertions ("once a thread has acquired a lock on a bucket, it
//!   will Garbage Collect all deleted entries in the bucket").
//! * **Locks serialize only insertions** to the same hash bucket; with
//!   multiplicative hashing two concurrent writers rarely collide, making
//!   the design "mostly wait free".
//!
//! ## Cache-conscious layout
//!
//! Each hash bucket's chain head and insert lock live together in one
//! 64-byte-aligned [`Stripe`], so (a) a lookup that misses in the chain
//! head and an insert that takes the lock touch the same cache line, and
//! (b) writers hammering *different* buckets never false-share a line the
//! way the previous parallel `Vec<Atomic>`/`Vec<Mutex>` layout invited.
//! Every [`Node`] additionally caches its key's 64-bit hash, so chain
//! walks reject colliding neighbours on one integer compare and chain
//! maintenance (`collect_chain`, `gc_all_chains`) never rehashes a key.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam::epoch::{Guard, Owned, Shared};
use parking_lot::Mutex;

use cots_core::report::WorkTally;
use cots_core::{Element, MulHash};

use crate::node::{Node, TOMB};

/// One hash bucket: chain head + insert lock, padded to a cache line so
/// neighbouring buckets never false-share.
#[repr(align(64))]
struct Stripe<K> {
    head: crossbeam::epoch::Atomic<Node<K>>,
    /// Serializes insertions (and lazy chain GC) for this bucket only.
    lock: Mutex<()>,
}

impl<K> Default for Stripe<K> {
    fn default() -> Self {
        Self {
            head: crossbeam::epoch::Atomic::null(),
            lock: Mutex::new(()),
        }
    }
}

/// The delegation hash table.
pub struct HashTable<K> {
    /// `1 << hash_bits` cache-line stripes, pre-sized at construction (the
    /// paper sizes the table so it never resizes).
    stripes: Box<[Stripe<K>]>,
    hash_bits: u32,
    tally: Arc<WorkTally>,
}

impl<K: Element> HashTable<K> {
    /// Build a table with `1 << hash_bits` buckets.
    pub fn new(hash_bits: u32, tally: Arc<WorkTally>) -> Self {
        let n = 1usize << hash_bits;
        Self {
            stripes: (0..n).map(|_| Stripe::default()).collect(),
            hash_bits,
            tally,
        }
    }

    #[inline]
    fn index_of(&self, hash: u64) -> usize {
        MulHash::index(hash, self.hash_bits)
    }

    /// Lock-free lookup of the live node for `key`.
    pub fn lookup<'g>(&self, key: &K, guard: &'g Guard) -> Option<Shared<'g, Node<K>>> {
        self.lookup_hashed(key, MulHash::hash(key), guard)
    }

    /// [`HashTable::lookup`] with the key's hash already computed (the
    /// combining front-end caches hashes across its buffer).
    pub fn lookup_hashed<'g>(
        &self,
        key: &K,
        hash: u64,
        guard: &'g Guard,
    ) -> Option<Shared<'g, Node<K>>> {
        let mut cur = self.stripes[self.index_of(hash)]
            .head
            .load(Ordering::Acquire, guard);
        // SAFETY: hash-chain entries are loaded under `guard`; dead nodes are
        // retired with `defer_destroy`, never freed while pinned.
        while let Some(node) = unsafe { cur.as_ref() } {
            if node.hash == hash && !node.is_dead() && node.key == *key {
                return Some(cur);
            }
            cur = node.chain_next.load(Ordering::Acquire, guard);
        }
        None
    }

    /// Find the live node for `key`, inserting a fresh (unadmitted,
    /// `pending == 0`, `freq == 0`) node if absent.
    ///
    /// The returned node may be tombstoned by a concurrent overwrite at any
    /// moment; callers detect this through the `pending` protocol and retry.
    pub fn lookup_or_insert<'g>(&self, key: K, guard: &'g Guard) -> Shared<'g, Node<K>> {
        self.lookup_or_insert_hashed(key, MulHash::hash(&key), guard)
    }

    /// [`HashTable::lookup_or_insert`] with the key's hash already computed.
    pub fn lookup_or_insert_hashed<'g>(
        &self,
        key: K,
        hash: u64,
        guard: &'g Guard,
    ) -> Shared<'g, Node<K>> {
        // Fast path: lock-free hit.
        if let Some(found) = self.lookup_hashed(&key, hash, guard) {
            return found;
        }
        // Slow path: serialize inserts to this bucket.
        let idx = self.index_of(hash);
        self.tally.lock_acquisitions(1);
        let lock = match self.stripes[idx].lock.try_lock() {
            Some(g) => g,
            None => {
                self.tally.lock_contentions(1);
                self.stripes[idx].lock.lock()
            }
        };
        // Garbage-collect tombstoned entries while we hold the insert lock.
        self.collect_chain(idx, guard);
        // Re-scan: the key may have been inserted while we waited.
        let head = &self.stripes[idx].head;
        let mut cur = head.load(Ordering::Acquire, guard);
        // SAFETY: hash-chain entries are loaded under `guard`; dead nodes are
        // retired with `defer_destroy`, never freed while pinned.
        while let Some(node) = unsafe { cur.as_ref() } {
            if node.hash == hash && !node.is_dead() && node.key == key {
                return cur;
            }
            cur = node.chain_next.load(Ordering::Acquire, guard);
        }
        // Publish a fresh node at the chain head.
        let new = Owned::new(Node::with_hash(key, hash));
        new.chain_next
            .store(head.load(Ordering::Acquire, guard), Ordering::Relaxed);
        let shared = new.into_shared(guard);
        head.store(shared, Ordering::Release);
        drop(lock);
        shared
    }

    /// Non-blocking removal: succeed only when nobody is operating on (or
    /// has logged requests for) the element — the `pending` `0 → TOMB` CAS
    /// of Algorithm 6. On success the node is flagged dead; the chain link
    /// is collected lazily.
    pub fn try_remove(&self, node: &Node<K>) -> bool {
        if node
            .pending
            .compare_exchange(0, TOMB, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            node.dead.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Unlink dead entries from a chain and retire them. Caller holds the
    /// bucket's insert lock. Walks links only — cached hashes mean no key
    /// is ever rehashed here.
    fn collect_chain(&self, idx: usize, guard: &Guard) {
        let head = &self.stripes[idx].head;
        // Unlink dead prefix.
        loop {
            let first = head.load(Ordering::Acquire, guard);
            // SAFETY: `first` was loaded under `guard`; reclamation of dead
            // nodes is deferred past all pins.
            match unsafe { first.as_ref() } {
                Some(node) if node.is_dead() => {
                    let next = node.chain_next.load(Ordering::Acquire, guard);
                    head.store(next, Ordering::Release);
                    // SAFETY: tombstoned (no new references via pending),
                    // now unlinked from the chain; its bucket-list removal
                    // was completed by the evicting thread inside its own
                    // pinned section. Epoch delays the free past all pins.
                    unsafe { guard.defer_destroy(first) };
                }
                _ => break,
            }
        }
        // Unlink interior dead nodes.
        let mut prev = head.load(Ordering::Acquire, guard);
        // SAFETY: chain entries loaded under `guard`; unlinked nodes are
        // reclaimed only after every pin is released.
        while let Some(prev_node) = unsafe { prev.as_ref() } {
            let cur = prev_node.chain_next.load(Ordering::Acquire, guard);
            // SAFETY: chain entries loaded under `guard`; unlinked nodes are
            // reclaimed only after every pin is released.
            match unsafe { cur.as_ref() } {
                Some(cur_node) if cur_node.is_dead() => {
                    let next = cur_node.chain_next.load(Ordering::Acquire, guard);
                    prev_node.chain_next.store(next, Ordering::Release);
                    // SAFETY: as above.
                    unsafe { guard.defer_destroy(cur) };
                }
                Some(_) => prev = cur,
                None => break,
            }
        }
    }

    /// Run the lazy tombstone collection over *every* chain (each under its
    /// insert lock), as an insertion into each bucket would. After this
    /// pass no dead node is reachable from any chain head; used by the
    /// invariant audit and quiescent teardown.
    pub fn gc_all_chains(&self, guard: &Guard) {
        for idx in 0..self.stripes.len() {
            let _lock = self.stripes[idx].lock.lock();
            self.collect_chain(idx, guard);
        }
    }

    /// Number of tombstoned entries still reachable from a chain head
    /// (diagnostics/tests; zero right after [`HashTable::gc_all_chains`]).
    pub fn dead_reachable(&self, guard: &Guard) -> usize {
        let mut n = 0;
        for stripe in &self.stripes {
            let mut cur = stripe.head.load(Ordering::Acquire, guard);
            // SAFETY: hash-chain entries are loaded under `guard`; dead nodes
            // are retired with `defer_destroy`, never freed while pinned.
            while let Some(node) = unsafe { cur.as_ref() } {
                if node.is_dead() {
                    n += 1;
                }
                cur = node.chain_next.load(Ordering::Acquire, guard);
            }
        }
        n
    }

    /// Number of live entries (O(buckets + entries); diagnostics/tests).
    pub fn live_count(&self, guard: &Guard) -> usize {
        let mut n = 0;
        for stripe in &self.stripes {
            let mut cur = stripe.head.load(Ordering::Acquire, guard);
            // SAFETY: hash-chain entries are loaded under `guard`; dead nodes
            // are retired with `defer_destroy`, never freed while pinned.
            while let Some(node) = unsafe { cur.as_ref() } {
                if !node.is_dead() {
                    n += 1;
                }
                cur = node.chain_next.load(Ordering::Acquire, guard);
            }
        }
        n
    }
}

impl<K> Drop for HashTable<K> {
    fn drop(&mut self) {
        // Exclusive access: reclaim every remaining node directly.
        // SAFETY: `&mut self` proves no concurrent accessors or live pins
        // remain.
        let guard = unsafe { crossbeam::epoch::unprotected() };
        for stripe in &self.stripes {
            let mut cur = stripe.head.load(Ordering::Relaxed, guard);
            while !cur.is_null() {
                // SAFETY: `cur` is non-null and `&mut self` excludes
                // concurrent mutation.
                let next = unsafe { cur.deref() }
                    .chain_next
                    .load(Ordering::Relaxed, guard);
                // SAFETY: `&mut self` means no concurrent accessors remain.
                drop(unsafe { cur.into_owned() });
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::epoch;

    fn table(bits: u32) -> HashTable<u64> {
        HashTable::new(bits, Arc::new(WorkTally::new()))
    }

    #[test]
    fn insert_then_lookup() {
        let t = table(8);
        let guard = epoch::pin();
        let n = t.lookup_or_insert(42, &guard);
        // SAFETY: returned under the live `guard` above; nothing is reclaimed
        // while that pin is held.
        assert_eq!(unsafe { n.deref() }.key, 42);
        let found = t.lookup(&42, &guard).expect("present");
        assert!(found == n, "same node returned");
        assert!(t.lookup(&43, &guard).is_none());
    }

    #[test]
    fn duplicate_insert_returns_existing() {
        let t = table(4);
        let guard = epoch::pin();
        let a = t.lookup_or_insert(7, &guard);
        let b = t.lookup_or_insert(7, &guard);
        assert!(a == b);
        assert_eq!(t.live_count(&guard), 1);
    }

    #[test]
    fn try_remove_only_idle_nodes() {
        let t = table(4);
        let guard = epoch::pin();
        let n = t.lookup_or_insert(5, &guard);
        // SAFETY: returned under the live `guard` above; nothing is reclaimed
        // while that pin is held.
        let node = unsafe { n.deref() };
        // Busy node cannot be removed.
        node.pending.store(2, Ordering::Release);
        assert!(!t.try_remove(node));
        node.pending.store(0, Ordering::Release);
        assert!(t.try_remove(node));
        assert!(node.is_dead());
        // Dead node invisible to lookup; second removal fails (already TOMB).
        assert!(t.lookup(&5, &guard).is_none());
        assert!(!t.try_remove(node));
    }

    #[test]
    fn dead_nodes_are_collected_on_insert() {
        let t = table(0); // single bucket: everything chains together
        let guard = epoch::pin();
        for k in 0..16u64 {
            let n = t.lookup_or_insert(k, &guard);
            // immediately tombstone half of them
            if k % 2 == 0 {
                // SAFETY: returned under the live `guard` above; nothing is
                // reclaimed while that pin is held.
                assert!(t.try_remove(unsafe { n.deref() }));
            }
        }
        assert_eq!(t.live_count(&guard), 8);
        // Next insert GCs the chain under the lock.
        let _ = t.lookup_or_insert(100, &guard);
        assert_eq!(t.live_count(&guard), 9);
        // All live keys still reachable.
        for k in (1..16u64).step_by(2) {
            assert!(t.lookup(&k, &guard).is_some(), "key {k}");
        }
    }

    #[test]
    fn reinsert_after_remove_creates_new_node() {
        let t = table(4);
        let guard = epoch::pin();
        let a = t.lookup_or_insert(9, &guard);
        // SAFETY: returned under the live `guard` above; nothing is reclaimed
        // while that pin is held.
        assert!(t.try_remove(unsafe { a.deref() }));
        let b = t.lookup_or_insert(9, &guard);
        assert!(a != b, "tombstoned node must not be resurrected");
        // SAFETY: returned under the live `guard` above; nothing is reclaimed
        // while that pin is held.
        assert_eq!(unsafe { b.deref() }.freq.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn concurrent_insert_no_duplicates_no_losses() {
        let t = Arc::new(table(6));
        let threads = 8;
        let keys = 512u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let guard = epoch::pin();
                    for k in 0..keys {
                        let n = t.lookup_or_insert(k, &guard);
                        // SAFETY: returned under the live `guard` above;
                        // nothing is reclaimed while that pin is held.
                        assert_eq!(unsafe { n.deref() }.key, k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let guard = epoch::pin();
        assert_eq!(t.live_count(&guard), keys as usize);
    }

    #[test]
    fn concurrent_remove_insert_churn() {
        // Hammer tombstone + reinsert races on a small key space.
        let t = Arc::new(table(3));
        let handles: Vec<_> = (0..6)
            .map(|tid| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let guard = epoch::pin();
                        let k = (tid as u64 + i) % 16;
                        let n = t.lookup_or_insert(k, &guard);
                        // SAFETY: returned under the live `guard` above;
                        // nothing is reclaimed while that pin is held.
                        let node = unsafe { n.deref() };
                        // Try the overwrite dance: tombstone if idle.
                        if i % 3 == 0 {
                            t.try_remove(node);
                        } else {
                            // Simulate a logged request and its release.
                            // Log an increment and immediately release it;
                            // both live and dying nodes take the same undo.
                            let _r = node.pending.fetch_add(1, Ordering::AcqRel) + 1;
                            node.pending.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Table still structurally sound: lookups terminate, live nodes
        // respond, and inserting every key again yields exactly 16 live.
        let guard = epoch::pin();
        for k in 0..16u64 {
            let _ = t.lookup_or_insert(k, &guard);
        }
        assert_eq!(t.live_count(&guard), 16);
    }
}
