//! Frequency buckets and the bucket-level request queue — the *Concurrent
//! Stream Summary* building blocks (paper §5.2.2, Fig. 10).
//!
//! A bucket's frequency never changes; buckets are created in sorted
//! position in a singly linked, ascending-frequency list and are marked
//! *garbage collected* when they fall empty (removal from the list happens
//! later, by the owner of the predecessor). Each bucket carries:
//!
//! * a lock-free FIFO **request queue** (`crossbeam::queue::SegQueue`) — the
//!   "log" of delegated operations;
//! * an **owner flag** — the thread that wins the CAS drains the queue;
//!   everyone else has, by pushing, already delegated;
//! * the intrusive **element list head** — mutated only by the owner.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};

use crossbeam::epoch::Atomic;
use crossbeam::queue::SegQueue;

use crate::node::NodePtr;

/// A delegated operation, queued on a bucket (Table 1 of the paper, plus
/// the Lossy-Counting round maintenance of §5.3).
#[derive(Debug)]
pub enum Request<K> {
    /// Link `node` into (or route it beyond) this bucket; `node.freq` is
    /// already set to its target frequency. Covers both
    /// `AddElementToBucket` (new elements, delegated to the minimum bucket)
    /// and the hand-off leg of a bulk increment (`FindDestBucket`
    /// delegating to a downstream bucket).
    Add(NodePtr<K>),
    /// `IncrementCounter`: raise the frequency of `node` — currently in
    /// this bucket — by `by` (bulk when `by > 1`).
    Increment(NodePtr<K>, u64),
    /// `OverwriteElement`: evict a minimum-frequency element and install
    /// `node` (a new element) with count `min + by`, error `min`.
    Overwrite(NodePtr<K>, u64),
    /// Lossy-Counting round boundary (§5.3): evict every idle element of
    /// the minimum bucket whose count is at most `threshold`.
    PruneMin {
        /// The round id: elements with `freq + error <= threshold` go.
        threshold: u64,
    },
}

/// Bucket lifecycle state.
pub const STATE_ACTIVE: u8 = 0;
/// Bucket has been emptied and logically removed; requests must re-route.
pub const STATE_GC: u8 = 1;

/// A frequency bucket.
#[derive(Debug)]
pub struct Bucket<K> {
    /// The frequency every element in this bucket has. Immutable.
    pub freq: u64,
    /// `STATE_ACTIVE` or `STATE_GC`.
    pub state: AtomicU8,
    /// Drain-rights flag: CAS `false → true` to become the (sole) owner.
    pub owner: AtomicBool,
    /// The delegated-request log.
    pub queue: SegQueue<Request<K>>,
    /// Next bucket (strictly higher frequency); singly linked per the
    /// paper's *Minimal Existence* argument.
    pub next: Atomic<Bucket<K>>,
    /// Head of the intrusive element list (owner-mutated).
    pub elems: Atomic<crate::node::Node<K>>,
    /// Element count (owner-maintained; read by queries and the scheduler).
    pub len: AtomicUsize,
}

impl<K> Bucket<K> {
    /// A fresh, active, unowned bucket for `freq`.
    pub fn new(freq: u64) -> Self {
        Self {
            freq,
            state: AtomicU8::new(STATE_ACTIVE),
            owner: AtomicBool::new(false),
            queue: SegQueue::new(),
            next: Atomic::null(),
            elems: Atomic::null(),
            len: AtomicUsize::new(0),
        }
    }

    /// Whether the bucket has been logically removed.
    #[inline]
    pub fn is_gc(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_GC
    }

    /// Atomically mark the bucket garbage-collected. Returns whether this
    /// call performed the transition.
    #[inline]
    pub fn mark_gc(&self) -> bool {
        self.state
            .compare_exchange(STATE_ACTIVE, STATE_GC, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Try to become the owner (drain rights).
    #[inline]
    pub fn try_own(&self) -> bool {
        !self.owner.load(Ordering::Relaxed)
            && self
                .owner
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Release drain rights.
    #[inline]
    pub fn release(&self) {
        self.owner.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    #[test]
    fn ownership_is_exclusive() {
        let b: Bucket<u64> = Bucket::new(3);
        assert!(b.try_own());
        assert!(!b.try_own());
        b.release();
        assert!(b.try_own());
    }

    #[test]
    fn gc_marking_is_once() {
        let b: Bucket<u64> = Bucket::new(1);
        assert!(!b.is_gc());
        assert!(b.mark_gc());
        assert!(!b.mark_gc());
        assert!(b.is_gc());
    }

    #[test]
    fn queue_is_fifo_across_threads() {
        let b: std::sync::Arc<Bucket<u64>> = std::sync::Arc::new(Bucket::new(1));
        let node = Box::leak(Box::new(Node::new(9u64)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                let ptr = NodePtr::new(node);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        b.queue.push(Request::Increment(ptr.clone(), i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut n = 0;
        while b.queue.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 400);
    }

    #[test]
    fn concurrent_ownership_single_winner() {
        let b: std::sync::Arc<Bucket<u64>> = std::sync::Arc::new(Bucket::new(2));
        let winners = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = b.clone();
                let w = winners.clone();
                std::thread::spawn(move || {
                    if b.try_own() {
                        w.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }
}
