//! # cots — Cooperative Thread Scheduling
//!
//! A from-scratch Rust implementation of the **CoTS** framework of Das,
//! Antony, Agrawal and El Abbadi (ICDE 2009): parallel frequency counting
//! over data streams built on the principle of threads *cooperating* rather
//! than *contending*.
//!
//! Instead of waiting for a contended resource, a CoTS thread **logs its
//! request with the current holder and moves on** (*delegation*); a thread
//! that holds a resource never blocks on another (*minimal existence*).
//! Delegation happens at two levels:
//!
//! * **element level** — an atomic per-entry counter in the search
//!   structure turns concurrent updates of the same (hot) element into one
//!   *bulk increment* applied by a single thread;
//! * **bucket level** — each frequency bucket of the concurrent stream
//!   summary carries a lock-free request queue drained by whichever thread
//!   owns the bucket.
//!
//! For skewed streams this turns the contention points of a locked shared
//! design into combining points — the mechanism behind the paper's 2–4×
//! advantage over even the sequential implementation.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use cots::{CotsEngine, runtime};
//! use cots_core::{ConcurrentCounter, CotsConfig, QueryableSummary, Threshold};
//!
//! let engine = Arc::new(CotsEngine::<u64>::new(
//!     CotsConfig::for_capacity(1000).unwrap()).unwrap());
//! let stream: Vec<u64> = (0..100_000).map(|i| i % 100).collect();
//! runtime::run(&engine, &stream, runtime::RuntimeOptions {
//!     threads: 4, batch: 1024, adaptive: false }).unwrap();
//! let top = engine.snapshot().top_k(10);
//! assert_eq!(top.len(), 10);
//! assert!(engine.point_query(cots_core::PointQuery::IsFrequent {
//!     item: 5, threshold: Threshold::Fraction(0.005) }));
//! ```
//!
//! ## Crate map
//!
//! * [`node`] — the shared node (hash entry + summary element) and the
//!   `pending` delegation counter of Algorithm 2.
//! * [`hashtable`] — the lock-free-read, insert-locked, lazily-deleted
//!   search structure (§5.2.1), laid out as cache-line stripes.
//! * [`combiner`] — the batch-scoped combining front-end that
//!   pre-aggregates a batch's occurrences before they touch the table.
//! * [`bucket`] — frequency buckets with per-bucket request queues
//!   (§5.2.2, Fig. 10).
//! * [`engine`] — the request state machine (Algorithms 3–6), garbage
//!   collection, queries.
//! * [`policy`] — Space Saving vs Lossy Counting (§5.3).
//! * [`scheduler`] — the thread pool gate with σ/ρ thresholds (§5.2.3).
//! * [`runtime`] — the measurement driver.
//! * [`window`] — a jumping-window wrapper for recency-scoped queries.
//! * [`publish`] — epoch-stamped snapshot publishing for live serving.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bucket;
pub mod combiner;
pub mod engine;
pub mod hashtable;
pub mod node;
pub mod policy;
pub mod publish;
pub mod runtime;
pub mod scheduler;
pub mod sync_shim;
pub mod window;

pub use engine::CotsEngine;
pub use policy::Policy;
pub use publish::{SnapshotPublisher, StampedSnapshot};
pub use runtime::{run, RuntimeOptions};
pub use scheduler::{SchedulerHook, ThreadGate};
pub use window::{JumpingWindow, WindowSnapshot};
