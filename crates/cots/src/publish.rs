//! Epoch-stamped snapshot publishing for live query serving.
//!
//! A server answering frequency queries cannot afford to materialize a
//! fresh [`Snapshot`] per request — capture walks the whole summary and,
//! on the window path, merges two engines. `cots-serve` instead runs a
//! *publisher*: a single refresher captures snapshots at its own cadence
//! and swaps them behind an [`Arc`]; query threads clone the current
//! `Arc` wait-free (a `parking_lot` read lock held for one pointer
//! clone) and answer from it. Every published snapshot is stamped with a
//! monotone epoch and the backend's processed count at capture time, so
//! each response can report exactly how stale it is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use cots_core::{Element, Snapshot};

/// A published snapshot with its provenance stamp.
#[derive(Debug, Clone)]
pub struct StampedSnapshot<K: Element> {
    /// Publisher epoch: increments by one per publish, starting at 0 for
    /// the empty pre-ingest snapshot.
    pub epoch: u64,
    /// The summary view.
    pub snapshot: Snapshot<K>,
    /// Backend `processed()` at capture time. Staleness of a query answer
    /// is the backend's current processed count minus this.
    pub captured_total: u64,
    /// Window rotation count at capture, when the backend is a
    /// [`JumpingWindow`](crate::JumpingWindow); `None` for the plain
    /// engine.
    pub rotations: Option<u64>,
}

impl<K: Element> std::ops::Deref for StampedSnapshot<K> {
    type Target = Snapshot<K>;

    fn deref(&self) -> &Snapshot<K> {
        &self.snapshot
    }
}

/// Single-writer, many-reader snapshot slot.
///
/// The refresher thread calls [`publish`](Self::publish); any number of
/// query threads call [`current`](Self::current). Readers never block the
/// writer for longer than an `Arc` clone.
pub struct SnapshotPublisher<K: Element> {
    slot: RwLock<Arc<StampedSnapshot<K>>>,
    epoch: AtomicU64,
}

impl<K: Element> SnapshotPublisher<K> {
    /// Start with an empty snapshot at epoch 0.
    pub fn new() -> Self {
        Self {
            slot: RwLock::new(Arc::new(StampedSnapshot {
                epoch: 0,
                snapshot: Snapshot::new(Vec::new(), 0),
                captured_total: 0,
                rotations: None,
            })),
            epoch: AtomicU64::new(0),
        }
    }

    /// Publish a freshly captured snapshot; returns the epoch it was
    /// stamped with.
    pub fn publish(
        &self,
        snapshot: Snapshot<K>,
        captured_total: u64,
        rotations: Option<u64>,
    ) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        let stamped = Arc::new(StampedSnapshot {
            epoch,
            snapshot,
            captured_total,
            rotations,
        });
        *self.slot.write() = stamped;
        epoch
    }

    /// The most recently published snapshot (wait-free for readers:
    /// one `Arc` clone under a read lock).
    pub fn current(&self) -> Arc<StampedSnapshot<K>> {
        self.slot.read().clone()
    }

    /// Epoch of the most recent publish.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Fast-forward the epoch counter to at least `epoch`.
    ///
    /// Used after crash recovery: the restarted publisher resumes from
    /// the checkpointed epoch, so client-visible epochs stay monotone
    /// across the restart instead of restarting from zero. Call before
    /// the first post-recovery [`publish`](Self::publish); the next
    /// publish is stamped `epoch + 1`.
    pub fn resume_from(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
    }
}

impl<K: Element> Default for SnapshotPublisher<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_at_epoch_zero() {
        let p = SnapshotPublisher::<u64>::new();
        let s = p.current();
        assert_eq!(s.epoch, 0);
        assert_eq!(s.captured_total, 0);
        assert_eq!(s.entries().len(), 0);
        assert_eq!(p.epoch(), 0);
    }

    #[test]
    fn publish_advances_epoch_and_swaps() {
        let p = SnapshotPublisher::<u64>::new();
        let snap = Snapshot::new(vec![cots_core::CounterEntry::new(7u64, 3, 0)], 3);
        let e1 = p.publish(snap.clone(), 3, None);
        assert_eq!(e1, 1);
        let cur = p.current();
        assert_eq!(cur.epoch, 1);
        assert_eq!(cur.captured_total, 3);
        assert!(cur.get(&7).is_some());
        let e2 = p.publish(snap, 6, Some(2));
        assert_eq!(e2, 2);
        assert_eq!(p.current().rotations, Some(2));
    }

    #[test]
    fn resume_from_keeps_epochs_monotone_across_restart() {
        let p = SnapshotPublisher::<u64>::new();
        p.resume_from(41);
        assert_eq!(p.epoch(), 41);
        let e = p.publish(Snapshot::new(Vec::new(), 0), 0, None);
        assert_eq!(e, 42, "first post-recovery publish continues the sequence");
        // Resuming backwards never regresses.
        p.resume_from(10);
        assert_eq!(p.epoch(), 42);
    }

    #[test]
    fn readers_see_a_consistent_arc_under_concurrency() {
        let p = Arc::new(SnapshotPublisher::<u64>::new());
        let writer = {
            let p = p.clone();
            std::thread::spawn(move || {
                for i in 1..=500u64 {
                    let snap = Snapshot::new(vec![cots_core::CounterEntry::new(1u64, i, 0)], i);
                    p.publish(snap, i, None);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..2_000 {
                        let s = p.current();
                        // Epochs are monotone from any single reader's view,
                        // and each snapshot matches its stamp.
                        assert!(s.epoch >= last);
                        last = s.epoch;
                        if s.epoch > 0 {
                            assert_eq!(s.get(&1).unwrap().count, s.captured_total);
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(p.epoch(), 500);
    }
}
