//! The measurement runtime: feeds a pre-generated stream through a
//! [`CotsEngine`] with a pool of worker threads.
//!
//! Workers pull fixed-size batches from a shared cursor (so the adaptive
//! gate can park and wake them without losing stream coverage), process
//! each element through `delegate`, and hit the gate's pause point between
//! batches. After all workers drain the stream the engine is finalized
//! (every logged request applied) and the wall-clock time — including the
//! finalize, which is part of counting work — is reported.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cots_core::{CotsError, Element, Result, RunStats};

use crate::engine::CotsEngine;
use crate::scheduler::ThreadGate;

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// Worker threads.
    pub threads: usize,
    /// Elements per batch grab.
    pub batch: usize,
    /// Enable the §5.2.3 adaptive gate (requires the engine to have been
    /// built with `CotsConfig::adaptive`).
    pub adaptive: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            threads: 4,
            batch: 1024,
            adaptive: false,
        }
    }
}

/// Drive `engine` over `stream` and measure the counting wall-clock.
pub fn run<K: Element>(
    engine: &Arc<CotsEngine<K>>,
    stream: &[K],
    options: RuntimeOptions,
) -> Result<RunStats> {
    if options.threads == 0 {
        return Err(CotsError::InvalidRun("threads must be positive".into()));
    }
    if options.batch == 0 {
        return Err(CotsError::InvalidRun("batch must be positive".into()));
    }
    if stream.is_empty() {
        return Err(CotsError::InvalidRun("stream must be non-empty".into()));
    }
    let gate = options.adaptive.then(|| {
        let g = Arc::new(ThreadGate::new(options.threads, 1, 64));
        engine.set_scheduler_hook(g.clone());
        g
    });
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..options.threads {
            let cursor = &cursor;
            let engine = Arc::clone(engine);
            let gate = gate.clone();
            scope.spawn(move || loop {
                if let Some(g) = &gate {
                    g.pause_point(worker);
                }
                let lo = cursor.fetch_add(options.batch, Ordering::AcqRel);
                if lo >= stream.len() {
                    // Stream exhausted: release any gate-parked workers so
                    // the scope can join them (worker 0 can never park, so
                    // some worker always reaches this line).
                    if let Some(g) = &gate {
                        g.shutdown();
                    }
                    break;
                }
                let hi = (lo + options.batch).min(stream.len());
                engine.delegate_batch(&stream[lo..hi]);
            });
        }
    });
    if let Some(g) = &gate {
        g.shutdown();
    }
    engine.finalize();
    let elapsed = start.elapsed();
    Ok(RunStats {
        engine: "cots".into(),
        threads: options.threads,
        elements: stream.len() as u64,
        elapsed,
        work: engine.work(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cots_core::{ConcurrentCounter, CotsConfig, QueryableSummary};
    use cots_datagen::StreamSpec;

    fn engine(capacity: usize) -> Arc<CotsEngine<u64>> {
        Arc::new(CotsEngine::new(CotsConfig::for_capacity(capacity).unwrap()).unwrap())
    }

    #[test]
    fn run_covers_whole_stream() {
        let stream = StreamSpec::zipf(20_000, 400, 2.0, 11).generate();
        let e = engine(128);
        let stats = run(
            &e,
            &stream,
            RuntimeOptions {
                threads: 4,
                batch: 256,
                adaptive: false,
            },
        )
        .unwrap();
        assert_eq!(stats.elements, 20_000);
        assert_eq!(e.processed(), 20_000);
        let sum: u64 = e.snapshot().entries().iter().map(|x| x.count).sum();
        assert_eq!(sum, 20_000);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn adaptive_run_still_exact() {
        let stream = StreamSpec::zipf(30_000, 100, 2.5, 3).generate();
        let e = Arc::new(
            CotsEngine::<u64>::new(CotsConfig::for_capacity(64).unwrap().with_adaptive(32, 8))
                .unwrap(),
        );
        let stats = run(
            &e,
            &stream,
            RuntimeOptions {
                threads: 6,
                batch: 128,
                adaptive: true,
            },
        )
        .unwrap();
        assert_eq!(stats.elements, 30_000);
        let sum: u64 = e.snapshot().entries().iter().map(|x| x.count).sum();
        assert_eq!(sum, 30_000, "adaptive scheduling must not lose elements");
    }

    #[test]
    fn rejects_invalid_options() {
        let e = engine(8);
        let stream = vec![1u64, 2, 3];
        assert!(run(&e, &[], RuntimeOptions::default()).is_err());
        assert!(run(
            &e,
            &stream,
            RuntimeOptions {
                threads: 0,
                batch: 8,
                adaptive: false
            }
        )
        .is_err());
        assert!(run(
            &e,
            &stream,
            RuntimeOptions {
                threads: 1,
                batch: 0,
                adaptive: false
            }
        )
        .is_err());
    }

    #[test]
    fn oversubscription_works() {
        // Many more threads than elements per batch; the paper runs up to
        // 256 threads on 4 cores.
        let stream = StreamSpec::zipf(8_000, 50, 3.0, 9).generate();
        let e = engine(64);
        let stats = run(
            &e,
            &stream,
            RuntimeOptions {
                threads: 32,
                batch: 64,
                adaptive: false,
            },
        )
        .unwrap();
        assert_eq!(stats.elements, 8_000);
        let sum: u64 = e.snapshot().entries().iter().map(|x| x.count).sum();
        assert_eq!(sum, 8_000);
    }
}
