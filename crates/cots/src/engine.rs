//! The CoTS engine: delegation, boundary crossing, bucket draining, and the
//! request state machine of Algorithms 2–6.
//!
//! ## Protocol summary
//!
//! * **Delegate (Algorithm 2)** — look the element up (inserting if new),
//!   `fetch_add(1)` its `pending`. Result 1 ⇒ this thread has exclusive
//!   rights and *crosses the boundary*; anything higher ⇒ the increment is
//!   logged and the thread moves on; ≥ `TOMB` ⇒ the node is dying, undo and
//!   retry.
//! * **Crossing the boundary** — produce a request (`Add`/`Overwrite` for
//!   unadmitted elements, `Increment` otherwise), push it on the target
//!   bucket's queue, and try to acquire the bucket. Whoever owns the bucket
//!   drains *all* queued requests before releasing (bucket-level
//!   delegation).
//! * **Relinquish** — after a node's request completes: CAS `pending`
//!   `1 → 0`; on failure, `swap(1)` collects the logged mass `s - 1` and an
//!   `Increment(node, s-1)` *bulk* request is queued on the node's (new)
//!   bucket. This is where skewed streams win: one summary operation
//!   absorbs the whole logged mass.
//!
//! ## Why the raw-pointer requests are sound
//!
//! See [`crate::node`]: a queued request holds a unit of `pending`, and
//! nodes are only retired (`try_remove`) from `pending == 0`.
//!
//! ## Who mutates what
//!
//! * `bucket.next`, `bucket.elems`, node list links, `bucket.len` — only
//!   the bucket's owner.
//! * `node.freq`, `node.error`, `node.bucket` — only the thread currently
//!   processing that node's request (element ownership).
//! * `min` — only the owner of the current minimum bucket (plus the
//!   one-time CAS that installs the first bucket).
//!
//! Everything else is read lock-free under an epoch guard, with restarts on
//! observed inconsistency, as §5.2.2 prescribes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::epoch::{self, Atomic, Guard, Owned, Shared};

use cots_core::report::WorkTally;
use cots_core::{
    ConcurrentCounter, CotsConfig, CotsError, CounterEntry, Element, MulHash, QueryableSummary,
    Result, Snapshot, WorkCounters,
};

use crate::bucket::{Bucket, Request};
use crate::combiner::BatchCombiner;
use crate::hashtable::HashTable;
use crate::node::{Node, NodePtr, TOMB};
use crate::policy::Policy;
use crate::scheduler::SchedulerHook;

#[cfg(debug_assertions)]
mod destroy_registry {
    //! Debug-build tripwire: catches a bucket being retired twice or
    //! mutated after retirement.
    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::sync::OnceLock;

    fn set() -> &'static Mutex<HashMap<usize, String>> {
        static SET: OnceLock<Mutex<HashMap<usize, String>>> = OnceLock::new();
        SET.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub fn record_destroy(ptr: usize, context: String) {
        let mut s = set().lock().unwrap();
        if let Some(prev) = s.insert(ptr, context.clone()) {
            panic!("bucket {ptr:#x} defer_destroyed twice:\n  first: {prev}\n  second: {context}");
        }
    }

    pub fn assert_alive(ptr: usize, context: &str) {
        let s = set().lock().unwrap();
        if let Some(prev) = s.get(&ptr) {
            panic!("use of retired bucket {ptr:#x} in {context} (destroyed by: {prev})");
        }
    }

    pub fn forget(ptr: usize) {
        set().lock().unwrap().remove(&ptr);
    }
}

/// Per-batch work-counter accumulators, folded into the shared
/// [`WorkTally`] once per batch.
#[derive(Default)]
struct BatchCounters {
    crossings: u64,
    delegated: u64,
    combined: u64,
    flushes: u64,
}

/// Outcome of processing one request.
enum Outcome<K> {
    /// Request fully handled (possibly by delegating onward).
    Done,
    /// Overwrite could not find an evictable candidate; retry later.
    Deferred(Request<K>),
}

/// The CoTS frequency-counting engine (Space Saving or Lossy Counting
/// policy) over the concurrent stream summary.
///
/// # Example
///
/// ```
/// use cots::CotsEngine;
/// use cots_core::{ConcurrentCounter, CotsConfig, QueryableSummary};
///
/// let engine = CotsEngine::<u64>::new(CotsConfig::for_capacity(100)?)?;
/// for item in [3u64, 1, 3, 3, 2, 1] {
///     engine.delegate(item);
/// }
/// engine.finalize();
/// assert_eq!(engine.estimate(&3), Some((3, 0)));
/// assert_eq!(engine.snapshot().top_k(1)[0].item, 3);
/// # Ok::<(), cots_core::CotsError>(())
/// ```
pub struct CotsEngine<K: Element> {
    table: HashTable<K>,
    /// Permanent sentinel bucket (frequency 0, never holds elements, never
    /// garbage-collected). The ascending-frequency list hangs off its
    /// `next`; the first live successor *is* the minimum bucket, so there
    /// is no separate minimum pointer to keep consistent — the class of
    /// min-pointer CAS races is designed out.
    head: Atomic<Bucket<K>>,
    capacity: usize,
    policy: Policy,
    monitored: AtomicUsize,
    total: AtomicU64,
    /// Elements whose `delegate`/`delegate_batch` call has *returned*.
    /// Unlike `total` (counted up front, before any mass reaches the
    /// summary), this trails application: every element it counts has
    /// been flushed into the summary — either applied directly or
    /// enqueued on a bucket queue — so a reader that takes this counter
    /// *before* draining and snapshotting never claims mass the snapshot
    /// cannot contain. `cots-serve` stamps published snapshots with it.
    applied: AtomicU64,
    tally: Arc<WorkTally>,
    adaptive: Option<cots_core::config::AdaptiveConfig>,
    /// Capacity of the batch-scoped combining front-end (0 = disabled).
    combiner_slots: usize,
    hook: OnceLock<Arc<dyn SchedulerHook>>,
    /// After draining a bucket, scan successors for unowned pending work
    /// (§5.2.3 neighbour checking).
    scan_neighbors: bool,
}

impl<K: Element> CotsEngine<K> {
    /// Build from a validated configuration with the Space Saving policy.
    pub fn new(config: CotsConfig) -> Result<Self> {
        Self::with_policy(config, Policy::SpaceSaving)
    }

    /// Build with an explicit counting policy (§5.3 generalization).
    pub fn with_policy(config: CotsConfig, policy: Policy) -> Result<Self> {
        config.validate()?;
        if let Policy::LossyRounds { width } = policy {
            if width == 0 {
                return Err(CotsError::InvalidConfig(
                    "lossy round width must be positive".into(),
                ));
            }
        }
        let tally = Arc::new(WorkTally::new());
        let head = Atomic::new(Bucket::new(0));
        #[cfg(debug_assertions)]
        {
            let guard = epoch::pin();
            destroy_registry::forget(head.load(Ordering::Relaxed, &guard).as_raw() as usize);
        }
        Ok(Self {
            table: HashTable::new(config.hash_bits, tally.clone()),
            head,
            capacity: config.summary.capacity,
            policy,
            monitored: AtomicUsize::new(0),
            total: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            tally,
            adaptive: config.adaptive,
            combiner_slots: config.combiner_slots,
            hook: OnceLock::new(),
            scan_neighbors: true,
        })
    }

    /// Install the scheduler hook for dynamic auto configuration.
    pub fn set_scheduler_hook(&self, hook: Arc<dyn SchedulerHook>) {
        let _ = self.hook.set(hook);
    }

    /// Disable the post-drain neighbour scan (ablation support).
    pub fn set_scan_neighbors(&mut self, scan: bool) {
        self.scan_neighbors = scan;
    }

    /// Counter budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of monitored elements.
    pub fn monitored(&self) -> usize {
        self.monitored.load(Ordering::Acquire)
    }

    /// Accumulated work counters.
    pub fn work(&self) -> WorkCounters {
        self.tally.snapshot()
    }

    /// The counting policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Elements whose `delegate`/`delegate_batch` call has returned.
    ///
    /// Trails `processed()` (which counts a batch up front, before any of
    /// its mass reaches the summary) by exactly the in-flight batches.
    /// Reading this *before* a drain + snapshot yields a `captured_total`
    /// the snapshot provably covers, so `processed() − captured_total`
    /// stays an upper bound on the mass the snapshot is missing.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    // ==================================================================
    // Algorithm 2: Delegate
    // ==================================================================

    /// Process one stream element (callable from any number of threads).
    pub fn delegate(&self, item: K) {
        self.delegate_batch(std::slice::from_ref(&item));
    }

    /// Process a batch of stream elements under a single epoch pin.
    ///
    /// Semantically identical to calling [`CotsEngine::delegate`] per
    /// element; amortizing the guard and the shared counters over the batch
    /// removes most of the fixed per-element overhead (the engine's hot
    /// path is then lookup + one `fetch_add`).
    pub fn delegate_batch(&self, items: &[K]) {
        if items.is_empty() {
            return;
        }
        let before = self.total.fetch_add(items.len() as u64, Ordering::AcqRel);
        let after = before + items.len() as u64;
        self.tally.elements(items.len() as u64);
        let guard = epoch::pin();
        let mut c = BatchCounters::default();
        if self.combiner_slots != 0 && items.len() > 1 {
            self.delegate_batch_combined(items, before, &mut c, &guard);
        } else {
            for &item in items {
                self.flush_mass(item, MulHash::hash(&item), 1, &mut c, &guard);
            }
            // Lossy Counting round boundaries crossed by this batch (§5.3):
            // replace Overwrite with a minimum-bucket prune.
            if let Policy::LossyRounds { width } = self.policy {
                let first_round = before / width;
                let last_round = after / width;
                for round in (first_round + 1)..=last_round {
                    self.enqueue_head(Request::PruneMin { threshold: round }, &guard);
                }
            }
        }
        self.tally.boundary_crossings(c.crossings);
        self.tally.delegated_increments(c.delegated);
        self.tally.combined_increments(c.combined);
        self.tally.combiner_flushes(c.flushes);
        // Migrate this thread's deferred-destruction bag to the global
        // epoch queue and help collect it. Bucket churn retires roughly one
        // bucket (and its ~1 KiB queue block) per summary operation;
        // without active collection the garbage backlog grows far faster
        // than crossbeam's lazy pin-count heuristic reclaims it (observed:
        // >1 GiB peak per 2M-element run). Each flush advances the epoch
        // and steals a bounded number of garbage bags, so several rounds
        // per batch keep reclamation paced with production.
        drop(guard);
        // Only now — with every element of the batch flushed into the
        // summary — does the batch count as applied.
        self.applied.fetch_add(items.len() as u64, Ordering::AcqRel);
        for _ in 0..4 {
            epoch::pin().flush();
        }
    }

    /// The combining front-end path of [`CotsEngine::delegate_batch`]: a
    /// batch-scoped open-addressing buffer pre-aggregates occurrences, and
    /// every aggregated `(key, count)` pair reaches the delegation
    /// protocol as one `pending.fetch_add(count)` — one table operation
    /// and at most one boundary crossing per distinct hot key per batch.
    ///
    /// Under the Lossy policy the batch is processed in round-sized
    /// segments: the buffer is drained *before* each round-boundary prune
    /// is enqueued, so no pre-boundary mass hides in private state when
    /// the prune inspects the summary (same visibility a per-element run
    /// would give the prune).
    fn delegate_batch_combined(
        &self,
        items: &[K],
        before: u64,
        c: &mut BatchCounters,
        guard: &Guard,
    ) {
        let mut combiner = BatchCombiner::new(self.combiner_slots);
        match self.policy {
            Policy::SpaceSaving => {
                self.combine_segment(items, &mut combiner, c, guard);
                self.flush_combiner(&mut combiner, c, guard);
            }
            Policy::LossyRounds { width } => {
                let mut offset = 0usize;
                let mut pos = before;
                while offset < items.len() {
                    let until_boundary = (width - pos % width) as usize;
                    let take = until_boundary.min(items.len() - offset);
                    self.combine_segment(&items[offset..offset + take], &mut combiner, c, guard);
                    offset += take;
                    pos += take as u64;
                    if pos.is_multiple_of(width) {
                        self.flush_combiner(&mut combiner, c, guard);
                        self.enqueue_head(Request::PruneMin { threshold: pos / width }, guard);
                    }
                }
                self.flush_combiner(&mut combiner, c, guard);
            }
        }
    }

    /// Feed a segment through the combiner, flushing evicted victims
    /// immediately so no occurrence is ever dropped.
    fn combine_segment(
        &self,
        seg: &[K],
        combiner: &mut BatchCombiner<K>,
        c: &mut BatchCounters,
        guard: &Guard,
    ) {
        for &item in seg {
            let hash = MulHash::hash(&item);
            if let Some((key, key_hash, count)) = combiner.add(item, hash) {
                self.flush_mass(key, key_hash, count, c, guard);
            }
        }
    }

    /// Drain the combiner through the delegation protocol.
    fn flush_combiner(&self, combiner: &mut BatchCombiner<K>, c: &mut BatchCounters, guard: &Guard) {
        combiner.drain(|key, hash, count| self.flush_mass(key, hash, count, c, guard));
    }

    /// Algorithm 2's delegate step for `count` occurrences of `key` at
    /// once: one `fetch_add(count)` on the element's `pending`. A prior
    /// value of 0 makes this thread the element owner (boundary crossing
    /// with the whole aggregated amount); otherwise the mass is logged for
    /// the current owner's relinquish to fold into a bulk increment.
    fn flush_mass(&self, key: K, hash: u64, count: u64, c: &mut BatchCounters, guard: &Guard) {
        debug_assert!(count > 0);
        loop {
            let node_sh = self.table.lookup_or_insert_hashed(key, hash, guard);
            // SAFETY: `lookup_or_insert_hashed` returned this pointer under
            // `guard`; tombstoned nodes are retired with `defer_destroy`,
            // never freed while pinned.
            let node = unsafe { node_sh.deref() };
            let prev = node.pending.fetch_add(count, Ordering::AcqRel);
            if prev >= TOMB {
                // The node was tombstoned under us; undo and retry with a
                // fresh entry.
                node.pending.fetch_sub(count, Ordering::AcqRel);
                continue;
            }
            // Tally partition: every occurrence is accounted exactly once
            // — the flush's own delegation action (one crossing or one
            // logged increment) plus `count - 1` front-end absorptions.
            if count > 1 {
                c.combined += count - 1;
                c.flushes += 1;
            }
            if prev == 0 {
                if count > 1 {
                    // This thread owns the element and carries the whole
                    // aggregated mass in its request, so it must hold
                    // exactly ONE unit of `pending` (units beyond the
                    // owner's are the *logged* mass relinquish converts to
                    // a bulk increment — leaving ours in would double-count
                    // it). `pending >= 1` throughout, so no tombstone can
                    // sneak in; concurrent logs just stack on top.
                    node.pending.fetch_sub(count - 1, Ordering::AcqRel);
                }
                c.crossings += 1;
                self.cross_boundary(node, count, guard);
            } else {
                // Logged: the current owner folds this mass into a bulk
                // request at relinquish time.
                c.delegated += 1;
            }
            return;
        }
    }

    /// The element-owner produces the request for `node` carrying `amount`
    /// stream occurrences and routes it (the "crossing the boundary" step
    /// of §5.2.1).
    fn cross_boundary(&self, node: &Node<K>, amount: u64, guard: &Guard) {
        if node.freq.load(Ordering::Acquire) == 0 {
            // Admission of a new element.
            let admit = match self.policy {
                Policy::LossyRounds { width } => {
                    // Lossy Counting admits unconditionally; Δ is the
                    // current round minus one.
                    let round = self.total.load(Ordering::Acquire) / width + 1;
                    node.error.store(round - 1, Ordering::Release);
                    self.monitored.fetch_add(1, Ordering::AcqRel);
                    true
                }
                Policy::SpaceSaving => self
                    .monitored
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                        (c < self.capacity).then_some(c + 1)
                    })
                    .is_ok(),
            };
            if admit {
                node.freq.store(amount, Ordering::Release);
                self.enqueue_head(Request::Add(NodePtr::new(node)), guard);
            } else {
                self.enqueue_head(Request::Overwrite(NodePtr::new(node), amount), guard);
            }
        } else {
            // The node sits in a bucket and is stationary (we exclusively
            // own its processing), so routing to `node.bucket` is safe.
            let b = node.bucket.load(Ordering::Acquire, guard);
            debug_assert!(!b.is_null(), "admitted node must have a bucket");
            self.enqueue(b, Request::Increment(NodePtr::new(node), amount), guard);
        }
    }

    /// Release exclusive rights on `node`, converting any logged mass into
    /// a bulk increment (the CAS/swap protocol of §5.2.1).
    fn relinquish(&self, node: &Node<K>, guard: &Guard) {
        if node
            .pending
            .compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return;
        }
        let s = node.pending.swap(1, Ordering::AcqRel);
        debug_assert!((2..TOMB).contains(&s), "relinquish saw pending={s}");
        let extra = s - 1;
        // Ownership continues through this bulk request; whoever processes
        // it relinquishes again.
        let b = node.bucket.load(Ordering::Acquire, guard);
        debug_assert!(!b.is_null());
        self.enqueue(b, Request::Increment(NodePtr::new(node), extra), guard);
    }

    // ==================================================================
    // Bucket-level delegation: enqueue + drain
    // ==================================================================

    /// Log a request on `b`'s queue and try to become its processor.
    fn enqueue(&self, b: Shared<'_, Bucket<K>>, req: Request<K>, guard: &Guard) {
        // NB: `b` may be retired (unlinked + deferred) — the epoch pin
        // keeps it valid and the `is_gc` check below rescues the request.
        // SAFETY: the caller loaded `b` under `guard`; even if concurrently
        // retired, reclamation is deferred past this pin.
        let bucket = unsafe { b.deref() };
        bucket.queue.push(req);
        if bucket.is_gc() {
            // The bucket was logically removed; rescue everything.
            self.forward_gc_queue(bucket, guard);
            return;
        }
        if let Some(a) = self.adaptive {
            let len = bucket.queue.len();
            if len > a.sigma {
                if let Some(h) = self.hook.get() {
                    h.on_congestion();
                }
            } else if len > a.rho && !bucket.owner.load(Ordering::Relaxed) {
                if let Some(h) = self.hook.get() {
                    h.on_starvation();
                }
            }
        }
        self.try_drain(b, self.scan_neighbors, guard);
    }

    /// Route a request to the head sentinel, whose owner dispatches it to
    /// the (current) minimum bucket. The sentinel always exists and is
    /// never garbage-collected, so the paper's "delegate to the minimum
    /// frequency bucket" has a stable, race-free target.
    fn enqueue_head(&self, req: Request<K>, guard: &Guard) {
        let head = self.head.load(Ordering::Acquire, guard);
        debug_assert!(!head.is_null(), "sentinel installed at construction");
        self.enqueue(head, req, guard);
    }

    /// First live (non-GC) bucket after the sentinel — the minimum bucket —
    /// or null when the summary is empty. Lock-free read.
    fn first_alive<'g>(&self, guard: &'g Guard) -> Shared<'g, Bucket<K>> {
        let head = self.head.load(Ordering::Acquire, guard);
        // SAFETY: the sentinel head is never retired; it is freed only by
        // `Drop`, which has exclusive access.
        let mut cur = unsafe { head.deref() }.next.load(Ordering::Acquire, guard);
        // SAFETY: chain pointers are loaded under `guard`; retired buckets
        // are reclaimed via `defer_destroy` only after every pin is released.
        while let Some(b) = unsafe { cur.as_ref() } {
            if !b.is_gc() {
                return cur;
            }
            cur = b.next.load(Ordering::Acquire, guard);
        }
        Shared::null()
    }

    /// Acquire-and-drain loop (bucket-level delegation with the
    /// release-recheck pattern, so no logged request is ever lost).
    fn try_drain(&self, b: Shared<'_, Bucket<K>>, scan: bool, guard: &Guard) {
        // NB: `b` may be retired — handled by the leading `is_gc` check.
        // SAFETY: the caller loaded `b` under `guard`; even if concurrently
        // retired, reclamation is deferred past this pin.
        let bucket = unsafe { b.deref() };
        loop {
            if bucket.is_gc() {
                self.forward_gc_queue(bucket, guard);
                return;
            }
            if !bucket.try_own() {
                // Delegated: the current owner is bound to process our
                // request before releasing.
                self.tally.delegated_requests(1);
                return;
            }
            if bucket.is_gc() {
                // TOCTOU: the previous owner retired the bucket between
                // our entry check and the ownership CAS. A retired bucket
                // must never be treated as owned (its links are frozen and
                // its successors may belong to someone else now) — rescue
                // the queue and leave.
                bucket.release();
                self.forward_gc_queue(bucket, guard);
                return;
            }
            // Owners keep the list tidy: unlink retired successors so
            // traversals (and the dead prefix after the sentinel) stay
            // short.
            self.gc_successors(b, guard);
            let mut progressed = false;
            let mut stash: Vec<Request<K>> = Vec::new();
            while let Some(req) = bucket.queue.pop() {
                if bucket.is_gc() {
                    // We GC'd the bucket ourselves mid-drain (minimum
                    // advanced); everything left re-routes.
                    self.redispatch(req, guard);
                    continue;
                }
                match self.process_request(b, req, guard) {
                    Outcome::Done => progressed = true,
                    Outcome::Deferred(r) => {
                        self.tally.overwrite_deferrals(1);
                        stash.push(r);
                    }
                }
            }
            if bucket.is_gc() {
                for r in stash {
                    self.redispatch(r, guard);
                }
                self.forward_gc_queue(bucket, guard);
                return;
            }
            let restashed = stash.len();
            for r in stash {
                bucket.queue.push(r);
            }
            // Empty buckets are retired here (Algorithm 5's empty-bucket
            // marking). The sentinel (freq 0) is permanent; everything
            // else, including an emptied minimum bucket, is collected
            // uniformly — the next live successor simply becomes the new
            // minimum, with no pointer to update.
            if restashed == 0
                && bucket.freq != 0
                && bucket.len.load(Ordering::Acquire) == 0
                && bucket.queue.is_empty()
            {
                if bucket.mark_gc() {
                    self.tally.gc_buckets(1);
                }
                bucket.release();
                self.forward_gc_queue(bucket, guard);
                // Trim the dead prefix promptly — an emptied minimum
                // bucket would otherwise linger linked after the sentinel
                // until the next admission.
                let head = self.head.load(Ordering::Acquire, guard);
                if head != b {
                    self.try_drain(head, false, guard);
                }
                return;
            }
            bucket.release();
            // Release-recheck: requests pushed after our last pop whose
            // enqueuers failed the ownership CAS would otherwise strand.
            if bucket.queue.is_empty() {
                break;
            }
            if !progressed && bucket.queue.len() <= restashed {
                // Only deferred overwrites remain; they become processable
                // when new work (increments on the blocking elements)
                // arrives, which re-enters this loop.
                break;
            }
        }
        if scan {
            self.neighbor_scan(b, guard);
        }
    }

    /// §5.2.3: after finishing a bucket, help successors that have pending
    /// requests and no owner, stopping at the first owned bucket.
    fn neighbor_scan(&self, b: Shared<'_, Bucket<K>>, guard: &Guard) {
        // SAFETY: `b` was loaded under `guard` by the caller; deferred
        // reclamation keeps it valid while pinned.
        let mut cur = unsafe { b.deref() }.next.load(Ordering::Acquire, guard);
        let mut hops = 0;
        // SAFETY: chain pointers are loaded under `guard`; retired buckets
        // are reclaimed via `defer_destroy` only after every pin is released.
        while let Some(bucket) = unsafe { cur.as_ref() } {
            if bucket.owner.load(Ordering::Relaxed) {
                break;
            }
            if !bucket.is_gc() && !bucket.queue.is_empty() {
                self.try_drain(cur, false, guard);
            }
            cur = bucket.next.load(Ordering::Acquire, guard);
            hops += 1;
            if hops > 64 {
                break; // bounded help; return to the stream
            }
        }
    }

    /// Rescue all requests logged on a garbage-collected bucket.
    fn forward_gc_queue(&self, bucket: &Bucket<K>, guard: &Guard) {
        while let Some(req) = bucket.queue.pop() {
            self.redispatch(req, guard);
        }
    }

    /// Re-route a request whose target bucket disappeared.
    fn redispatch(&self, req: Request<K>, guard: &Guard) {
        match req {
            Request::Increment(node, by) => {
                let b = node.get().bucket.load(Ordering::Acquire, guard);
                debug_assert!(!b.is_null());
                self.enqueue(b, Request::Increment(node, by), guard);
            }
            other => self.enqueue_head(other, guard),
        }
    }

    // ==================================================================
    // Request processing (Algorithms 3, 5, 6 + §5.3 prune)
    // ==================================================================

    fn process_request(
        &self,
        b: Shared<'_, Bucket<K>>,
        req: Request<K>,
        guard: &Guard,
    ) -> Outcome<K> {
        self.tally.summary_ops(1);
        // SAFETY: requests are only dispatched to buckets loaded under
        // `guard`; deferred reclamation keeps `b` valid.
        if unsafe { b.deref() }.freq == 0 {
            // Sentinel dispatch: Adds fall through the normal destination
            // search (the sentinel's frequency 0 is below every real
            // count); minimum-bucket requests are delegated to the first
            // live successor.
            return self.process_at_sentinel(b, req, guard);
        }
        match req {
            Request::Add(node) => {
                self.process_add(b, node, guard);
                Outcome::Done
            }
            Request::Increment(node, by) => {
                self.process_increment(b, node, by, guard);
                Outcome::Done
            }
            Request::Overwrite(node, by) => self.process_overwrite(b, node, by, guard),
            Request::PruneMin { threshold } => {
                self.process_prune(b, threshold, guard);
                Outcome::Done
            }
        }
    }

    /// Request processing at the head sentinel: Adds run the ordinary
    /// destination search (the sentinel's frequency 0 is below every real
    /// count, so sorted insertion just works — including into an empty
    /// summary); minimum-bucket requests are delegated to the first live
    /// successor.
    fn process_at_sentinel(
        &self,
        b: Shared<'_, Bucket<K>>,
        req: Request<K>,
        guard: &Guard,
    ) -> Outcome<K> {
        match req {
            Request::Add(node_ptr) => {
                self.find_dest(b, node_ptr, guard);
                Outcome::Done
            }
            Request::Overwrite(node_ptr, by) => {
                self.gc_successors(b, guard);
                // SAFETY: we hold `b`'s drain rights and `guard` is pinned;
                // the bucket stays allocated even if concurrently retired.
                let first = unsafe { b.deref() }.next.load(Ordering::Acquire, guard);
                if first.is_null() {
                    // Empty summary. Unreachable for a correctly sized
                    // Space Saving instance (a full structure is never
                    // empty), but handled for robustness: admit directly.
                    debug_assert!(false, "overwrite against an empty summary");
                    self.monitored.fetch_add(1, Ordering::AcqRel);
                    let node = node_ptr.get();
                    node.freq.store(by, Ordering::Release);
                    self.find_dest(b, node_ptr, guard);
                } else {
                    self.enqueue(first, Request::Overwrite(node_ptr, by), guard);
                }
                Outcome::Done
            }
            Request::PruneMin { threshold } => {
                self.gc_successors(b, guard);
                // SAFETY: we hold `b`'s drain rights and `guard` is pinned;
                // the bucket stays allocated even if concurrently retired.
                let first = unsafe { b.deref() }.next.load(Ordering::Acquire, guard);
                if !first.is_null() {
                    self.enqueue(first, Request::PruneMin { threshold }, guard);
                }
                Outcome::Done
            }
            Request::Increment(..) => unreachable!("increments route to the node's bucket"),
        }
    }

    /// Algorithm 3: AddElementToBucket.
    fn process_add(&self, b: Shared<'_, Bucket<K>>, node_ptr: NodePtr<K>, guard: &Guard) {
        // SAFETY: we hold `b`'s drain rights and `guard` is pinned; the
        // bucket stays allocated even if concurrently retired.
        let bucket = unsafe { b.deref() };
        let node = node_ptr.get();
        let freq = node.freq.load(Ordering::Acquire);
        if freq == bucket.freq {
            self.link(b, node, guard);
            self.relinquish(node, guard);
        } else if freq < bucket.freq {
            // This bucket is no longer the right landing spot (a lower
            // bucket must exist or be created); route through the sentinel,
            // whose destination search inserts in sorted position.
            self.enqueue_head(Request::Add(node_ptr), guard);
        } else {
            self.find_dest(b, node_ptr, guard);
        }
    }

    /// Algorithm 5: IncrementCounter.
    fn process_increment(
        &self,
        b: Shared<'_, Bucket<K>>,
        node_ptr: NodePtr<K>,
        by: u64,
        guard: &Guard,
    ) {
        // SAFETY: we hold `b`'s drain rights and `guard` is pinned; the
        // bucket stays allocated even if concurrently retired.
        let bucket = unsafe { b.deref() };
        let node = node_ptr.get();
        debug_assert!(
            node.bucket.load(Ordering::Acquire, guard) == b,
            "increment routed to a stale bucket"
        );
        self.unlink(b, node, guard);
        let new_freq = bucket.freq + by;
        node.freq.store(new_freq, Ordering::Release);
        self.find_dest(b, node_ptr, guard);
        // If this emptied the bucket, the drain-exit garbage collection of
        // `try_drain` retires it once its queue runs dry.
    }

    /// Algorithm 4: FindDestBucket. `node` is unlinked, its `freq` holds
    /// the target; we own `b` and `node.freq > b.freq`.
    fn find_dest(&self, b: Shared<'_, Bucket<K>>, node_ptr: NodePtr<K>, guard: &Guard) {
        // SAFETY: we hold `b`'s drain rights and `guard` is pinned; the
        // bucket stays allocated even if concurrently retired.
        let bucket = unsafe { b.deref() };
        let node = node_ptr.get();
        let target = node.freq.load(Ordering::Acquire);
        debug_assert!(target > bucket.freq);
        // Garbage-collect retired buckets immediately after us (we own the
        // predecessor, so the unlink is safe).
        self.gc_successors(b, guard);
        let next = bucket.next.load(Ordering::Acquire, guard);
        // SAFETY: successor pointer loaded under `guard`; retired buckets are
        // reclaimed only after every pin is released.
        let next_ref = unsafe { next.as_ref() };
        match next_ref {
            None => self.insert_bucket_after(b, next, node, guard),
            Some(nb) if nb.freq > target => self.insert_bucket_after(b, next, node, guard),
            Some(nb) if nb.freq == target => {
                // Delegate the linking to the destination bucket.
                self.enqueue(next, Request::Add(node_ptr), guard);
            }
            Some(_) => {
                // Bulk increment: walk forward to the last bucket whose
                // frequency does not exceed the target and delegate there
                // (it will either link us or insert a fresh bucket next to
                // itself).
                let mut prev = next;
                // SAFETY: `next` was observed non-null above and remains
                // valid under `guard`.
                let mut cur = unsafe { next.deref() }.next.load(Ordering::Acquire, guard);
                let mut steps = 0usize;
                // SAFETY: chain pointers are loaded under `guard`; retired
                // buckets are reclaimed via `defer_destroy` only after every
                // pin is released.
                while let Some(cb) = unsafe { cur.as_ref() } {
                    if cb.freq > target {
                        break;
                    }
                    if !cb.is_gc() {
                        prev = cur;
                    }
                    cur = cb.next.load(Ordering::Acquire, guard);
                    steps += 1;
                    if steps > self.capacity * 4 + 4096 {
                        // Excessive walk: a long chain of retired buckets
                        // (e.g. after a bulk-increment storm) that only
                        // their predecessors' owners may unlink. Break the
                        // walk by delegating to the furthest *live* bucket
                        // reached — its owner garbage-collects the dead
                        // chain right behind it and continues from there,
                        // guaranteeing progress. (Restarting from the head
                        // instead would repeat this exact walk and
                        // livelock.)
                        self.tally.read_restarts(1);
                        break;
                    }
                }
                self.enqueue(prev, Request::Add(node_ptr), guard);
            }
        }
    }

    /// Insert a new bucket holding `node` between owned bucket `b` and its
    /// successor `next`.
    fn insert_bucket_after(
        &self,
        b: Shared<'_, Bucket<K>>,
        next: Shared<'_, Bucket<K>>,
        node: &Node<K>,
        guard: &Guard,
    ) {
        #[cfg(debug_assertions)]
        destroy_registry::assert_alive(b.as_raw() as usize, "insert_bucket_after");
        // SAFETY: we hold `b`'s drain rights and `guard` is pinned; the
        // bucket stays allocated even if concurrently retired.
        let bucket = unsafe { b.deref() };
        let target = node.freq.load(Ordering::Acquire);
        let new_bucket = Owned::new(Bucket::new(target));
        new_bucket.next.store(next, Ordering::Relaxed);
        let node_sh = Shared::from(node as *const Node<K>);
        new_bucket.elems.store(node_sh, Ordering::Relaxed);
        new_bucket.len.store(1, Ordering::Relaxed);
        node.list_prev.store(Shared::null(), Ordering::Relaxed);
        node.list_next.store(Shared::null(), Ordering::Relaxed);
        let installed = new_bucket.into_shared(guard);
        #[cfg(debug_assertions)]
        destroy_registry::forget(installed.as_raw() as usize);
        bucket.next.store(installed, Ordering::Release);
        node.bucket.store(installed, Ordering::Release);
        self.relinquish(node, guard);
    }

    /// Algorithm 6: OverwriteElement. We own `b`; `node` is a new element
    /// that must replace a minimum-frequency victim.
    fn process_overwrite(
        &self,
        b: Shared<'_, Bucket<K>>,
        node_ptr: NodePtr<K>,
        by: u64,
        guard: &Guard,
    ) -> Outcome<K> {
        // SAFETY: we hold `b`'s drain rights and `guard` is pinned; the
        // bucket stays allocated even if concurrently retired.
        let bucket = unsafe { b.deref() };
        // Overwrites apply to the *minimum* bucket; if a lower bucket has
        // appeared (or this one was retired), chase the real minimum
        // through the sentinel.
        if self.first_alive(guard) != b {
            self.enqueue_head(Request::Overwrite(node_ptr, by), guard);
            return Outcome::Done;
        }
        let node = node_ptr.get();
        // Hunt for a victim with no pending requests (non-blocking
        // `try_remove`; busy candidates are skipped, never waited on —
        // Minimal Existence).
        let mut cur = bucket.elems.load(Ordering::Acquire, guard);
        // SAFETY: element-list nodes are unlinked before retirement and
        // reclaimed via `defer_destroy`; `guard` keeps them valid.
        while let Some(cand) = unsafe { cur.as_ref() } {
            if !std::ptr::eq(cand as *const _, node as *const _) && self.table.try_remove(cand) {
                // Victim secured: inherit its count as the error bound.
                self.unlink(b, cand, guard);
                node.error.store(bucket.freq, Ordering::Release);
                node.freq.store(bucket.freq + by, Ordering::Release);
                self.tally.overwrites(1);
                self.find_dest(b, node_ptr, guard);
                return Outcome::Done;
            }
            cur = cand.list_next.load(Ordering::Acquire, guard);
        }
        if bucket.len.load(Ordering::Acquire) == 0 {
            // The minimum bucket emptied under us. If nothing else is
            // queued, retire it ourselves and retry at the new minimum;
            // otherwise the queued work (Adds that will repopulate it)
            // goes first.
            if bucket.queue.is_empty() {
                if bucket.mark_gc() {
                    self.tally.gc_buckets(1);
                }
                self.enqueue_head(Request::Overwrite(node_ptr, by), guard);
                return Outcome::Done;
            }
            return Outcome::Deferred(Request::Overwrite(node_ptr, by));
        }
        // Every candidate has pending increments; defer until those are
        // processed (they are queued on this same bucket).
        Outcome::Deferred(Request::Overwrite(node_ptr, by))
    }

    /// §5.3 Lossy Counting maintenance: evict idle minimum-bucket elements
    /// whose upper bound does not exceed the round id.
    fn process_prune(&self, b: Shared<'_, Bucket<K>>, threshold: u64, guard: &Guard) {
        // SAFETY: we hold `b`'s drain rights and `guard` is pinned; the
        // bucket stays allocated even if concurrently retired.
        let bucket = unsafe { b.deref() };
        let mut cur = bucket.elems.load(Ordering::Acquire, guard);
        // SAFETY: element-list nodes are unlinked before retirement and
        // reclaimed via `defer_destroy`; `guard` keeps them valid.
        while let Some(cand) = unsafe { cur.as_ref() } {
            let next = cand.list_next.load(Ordering::Acquire, guard);
            let bound = cand.freq.load(Ordering::Acquire) + cand.error.load(Ordering::Acquire);
            if bound <= threshold && self.table.try_remove(cand) {
                self.unlink(b, cand, guard);
                self.monitored.fetch_sub(1, Ordering::AcqRel);
            }
            cur = next;
        }
        // An emptied bucket is retired by the drain-exit garbage
        // collection once its queue runs dry.
    }

    // ==================================================================
    // Bucket-list maintenance (owner-side)
    // ==================================================================

    /// Link `node` at the head of owned bucket `b`'s element list.
    fn link(&self, b: Shared<'_, Bucket<K>>, node: &Node<K>, guard: &Guard) {
        #[cfg(debug_assertions)]
        destroy_registry::assert_alive(b.as_raw() as usize, "link");
        // SAFETY: we hold `b`'s drain rights and `guard` is pinned; the
        // bucket stays allocated even if concurrently retired.
        let bucket = unsafe { b.deref() };
        let head = bucket.elems.load(Ordering::Acquire, guard);
        let node_sh = Shared::from(node as *const Node<K>);
        node.list_prev.store(Shared::null(), Ordering::Relaxed);
        node.list_next.store(head, Ordering::Relaxed);
        // SAFETY: `head` was loaded from the owned bucket under `guard`.
        if let Some(h) = unsafe { head.as_ref() } {
            h.list_prev.store(node_sh, Ordering::Release);
        }
        bucket.elems.store(node_sh, Ordering::Release);
        bucket.len.fetch_add(1, Ordering::AcqRel);
        node.bucket.store(b, Ordering::Release);
    }

    /// Unlink `node` from owned bucket `b`'s element list.
    fn unlink(&self, b: Shared<'_, Bucket<K>>, node: &Node<K>, guard: &Guard) {
        // SAFETY: we hold `b`'s drain rights and `guard` is pinned; the
        // bucket stays allocated even if concurrently retired.
        let bucket = unsafe { b.deref() };
        let prev = node.list_prev.load(Ordering::Acquire, guard);
        let next = node.list_next.load(Ordering::Acquire, guard);
        // SAFETY: list neighbours of a node in an owned bucket, loaded under
        // `guard`.
        match unsafe { prev.as_ref() } {
            Some(p) => p.list_next.store(next, Ordering::Release),
            None => bucket.elems.store(next, Ordering::Release),
        }
        // SAFETY: list neighbours of a node in an owned bucket, loaded under
        // `guard`.
        if let Some(n) = unsafe { next.as_ref() } {
            n.list_prev.store(prev, Ordering::Release);
        }
        bucket.len.fetch_sub(1, Ordering::AcqRel);
    }

    /// Unlink (and retire) garbage-collected buckets directly after owned
    /// bucket `b`.
    fn gc_successors(&self, b: Shared<'_, Bucket<K>>, guard: &Guard) {
        // SAFETY: the caller owns `b` and holds `guard`; the bucket stays
        // allocated.
        let bucket = unsafe { b.deref() };
        loop {
            let next = bucket.next.load(Ordering::Acquire, guard);
            // SAFETY: successor loaded under `guard`; reclamation is deferred
            // past all pins.
            match unsafe { next.as_ref() } {
                Some(nb) if nb.is_gc() => {
                    let after = nb.next.load(Ordering::Acquire, guard);
                    bucket.next.store(after, Ordering::Release);
                    // Rescue any late-logged requests, then retire.
                    self.forward_gc_queue(nb, guard);
                    #[cfg(debug_assertions)]
                    destroy_registry::record_destroy(
                        next.as_raw() as usize,
                        format!(
                            "gc_successors: owner of freq={} (gc={}, owner_flag={}) unlinked freq={} on {:?}",
                            bucket.freq,
                            bucket.is_gc(),
                            bucket.owner.load(Ordering::Relaxed),
                            nb.freq,
                            std::thread::current().id()
                        ),
                    );
                    // SAFETY: unreachable from the list now; late holders
                    // are protected by their epoch pins.
                    unsafe { guard.defer_destroy(next) };
                }
                _ => return,
            }
        }
    }

    // ==================================================================
    // Quiescence and queries
    // ==================================================================

    /// Drain every queue to quiescence. Call after all producer threads
    /// have finished; afterwards every logged request has been applied and
    /// `Σ counts == N` holds exactly (Space Saving policy).
    pub fn finalize(&self) {
        let guard = epoch::pin();
        for round in 0..1_000_000 {
            let mut any = false;
            let mut cur = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: chain pointers are loaded under `guard`; retired
            // buckets are reclaimed via `defer_destroy` only after every pin
            // is released.
            while let Some(bucket) = unsafe { cur.as_ref() } {
                if !bucket.queue.is_empty() {
                    any = true;
                    self.try_drain(cur, false, &guard);
                } else if round == 0
                    && bucket.freq != 0
                    && !bucket.is_gc()
                    && bucket.len.load(Ordering::Acquire) == 0
                {
                    // Quiet empty bucket: drain once so the exit GC
                    // retires it.
                    self.try_drain(cur, false, &guard);
                }
                cur = bucket.next.load(Ordering::Acquire, &guard);
            }
            if !any && round > 0 {
                return;
            }
        }
        panic!("finalize failed to reach quiescence");
    }

    /// Exhaustively verify structural invariants. Only meaningful at
    /// quiescence (after [`CotsEngine::finalize`] with no concurrent
    /// producers); test support.
    ///
    /// # Panics
    /// On any violation.
    pub fn check_quiescent_invariants(&self) {
        let violations = self.collect_violations();
        assert!(
            violations.is_empty(),
            "CotsEngine invariants violated: {}",
            violations
                .iter()
                .map(|(name, detail)| format!("[{name}] {detail}"))
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    /// Walk the whole structure and collect every violated invariant as a
    /// `(name, detail)` pair. Only meaningful at quiescence. Backs both
    /// [`CotsEngine::check_quiescent_invariants`] and the feature-gated
    /// `CheckInvariants` impl.
    ///
    /// Runs a hash-table GC pass first (tombstoned entries are collected
    /// lazily, so freshly evicted nodes may linger in the chains until the
    /// next insert) and then requires that *no* dead node remains
    /// reachable.
    fn collect_violations(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        let guard = epoch::pin();
        // Tombstones are unlinked lazily; force the pass so the
        // no-dead-reachable invariant below is exact, not eventual.
        self.table.gc_all_chains(&guard);
        let dead = self.table.dead_reachable(&guard);
        if dead != 0 {
            out.push((
                "tombstone-gc",
                format!("{dead} tombstoned node(s) reachable after a GC pass"),
            ));
        }
        let mut prev_freq = 0u64;
        let mut reachable = 0usize;
        let mut total_mass = 0u64;
        let mut idx = 0usize;
        let mut cur = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: chain pointers are loaded under `guard`; retired buckets
        // are reclaimed via `defer_destroy` only after every pin is released.
        while let Some(bucket) = unsafe { cur.as_ref() } {
            if !bucket.queue.is_empty() {
                out.push((
                    "queue-drained",
                    format!("bucket {idx} (freq {}) has queued requests", bucket.freq),
                ));
            }
            if !bucket.is_gc() && bucket.freq != 0 {
                if bucket.freq <= prev_freq {
                    out.push((
                        "bucket-order",
                        format!("bucket {idx}: freq {} after {prev_freq}", bucket.freq),
                    ));
                }
                prev_freq = bucket.freq;
                let mut n = bucket.elems.load(Ordering::Acquire, &guard);
                let mut count = 0usize;
                let mut prev_node: Shared<'_, Node<K>> = Shared::null();
                // SAFETY: element-list nodes are unlinked before retirement
                // and reclaimed via `defer_destroy`; `guard` keeps them
                // valid.
                while let Some(node) = unsafe { n.as_ref() } {
                    if node.is_dead() {
                        out.push((
                            "no-dead-linked",
                            format!("bucket {idx}: tombstoned node still linked"),
                        ));
                    }
                    let pending = node.pending.load(Ordering::Acquire);
                    if pending != 0 && pending < TOMB {
                        out.push((
                            "pending-drained",
                            format!("bucket {idx}: node with pending {pending}"),
                        ));
                    }
                    let freq = node.freq.load(Ordering::Acquire);
                    if freq != bucket.freq {
                        out.push((
                            "freq-match",
                            format!("bucket {idx} (freq {}): node freq {freq}", bucket.freq),
                        ));
                    }
                    if node.bucket.load(Ordering::Acquire, &guard) != cur {
                        out.push((
                            "node-backpointer",
                            format!("bucket {idx}: node bucket back-pointer astray"),
                        ));
                    }
                    if node.list_prev.load(Ordering::Acquire, &guard) != prev_node {
                        out.push((
                            "node-backlink",
                            format!("bucket {idx}: doubly-linked prev astray"),
                        ));
                    }
                    let error = node.error.load(Ordering::Acquire);
                    if error > bucket.freq {
                        out.push((
                            "error-bound",
                            format!("bucket {idx}: error {error} > count {}", bucket.freq),
                        ));
                    }
                    prev_node = n;
                    n = node.list_next.load(Ordering::Acquire, &guard);
                    count += 1;
                    total_mass += bucket.freq;
                }
                let len = bucket.len.load(Ordering::Acquire);
                if count != len {
                    out.push((
                        "len-field",
                        format!("bucket {idx}: len {len} but {count} reachable"),
                    ));
                }
                if count == 0 {
                    out.push((
                        "bucket-nonempty",
                        format!("bucket {idx} (freq {}) is live but empty", bucket.freq),
                    ));
                }
                reachable += count;
            } else if bucket.freq != 0 && bucket.len.load(Ordering::Acquire) != 0 {
                out.push((
                    "gc-empty",
                    format!("retired bucket {idx} still holds elements"),
                ));
            }
            cur = bucket.next.load(Ordering::Acquire, &guard);
            idx += 1;
        }
        if reachable != self.monitored() {
            out.push((
                "monitored-count",
                format!("{reachable} reachable but monitored() = {}", self.monitored()),
            ));
        }
        let live = self.table.live_count(&guard);
        if reachable != live {
            out.push((
                "table-agreement",
                format!("{reachable} reachable but hash table holds {live}"),
            ));
        }
        if matches!(self.policy, Policy::SpaceSaving) {
            let total = self.total.load(Ordering::Acquire);
            if total_mass != total {
                out.push((
                    "count-conservation",
                    format!("Σ counts = {total_mass} ≠ N = {total}"),
                ));
            }
        }
        out
    }

    /// Best-effort single pass over the bucket list draining whatever is
    /// currently queued. Unlike [`CotsEngine::finalize`] this never loops
    /// to full quiescence, so it is safe to call while producers are still
    /// running (used by windowed readers to freshen a snapshot).
    pub fn drain_pending(&self) {
        let guard = epoch::pin();
        for _ in 0..8 {
            let mut any = false;
            let mut cur = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: chain pointers are loaded under `guard`; retired
            // buckets are reclaimed via `defer_destroy` only after every pin
            // is released.
            while let Some(bucket) = unsafe { cur.as_ref() } {
                if !bucket.queue.is_empty() {
                    any = true;
                    self.try_drain(cur, false, &guard);
                }
                cur = bucket.next.load(Ordering::Acquire, &guard);
            }
            if !any {
                return;
            }
        }
    }

    /// Render the live bucket chain for diagnostics: frequency, state,
    /// owner flag, element count and queue length per bucket.
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let guard = epoch::pin();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "total={} monitored={} capacity={}",
            self.total.load(Ordering::Acquire),
            self.monitored(),
            self.capacity
        );
        let mut cur = self.head.load(Ordering::Acquire, &guard);
        let mut i = 0;
        // SAFETY: chain pointers are loaded under `guard`; retired buckets
        // are reclaimed via `defer_destroy` only after every pin is released.
        while let Some(bucket) = unsafe { cur.as_ref() } {
            let _ = writeln!(
                out,
                "  [{}] freq={} gc={} owner={} len={} queue={}",
                i,
                bucket.freq,
                bucket.is_gc(),
                bucket.owner.load(Ordering::Relaxed),
                bucket.len.load(Ordering::Relaxed),
                bucket.queue.len()
            );
            cur = bucket.next.load(Ordering::Acquire, &guard);
            i += 1;
            if i > 64 {
                let _ = writeln!(out, "  ... (truncated)");
                break;
            }
        }
        out
    }

    /// Point estimate `(count, error)` via the search structure (§5.2.4:
    /// "answered directly from the Search Structure").
    pub fn estimate_point(&self, item: &K) -> Option<(u64, u64)> {
        let guard = epoch::pin();
        let node_sh = self.table.lookup(item, &guard)?;
        // SAFETY: `lookup` returned this pointer under `guard`; node
        // reclamation is deferred past the pin.
        let node = unsafe { node_sh.deref() };
        let freq = node.freq.load(Ordering::Acquire);
        if freq == 0 || node.is_dead() {
            return None;
        }
        Some((freq, node.error.load(Ordering::Acquire).min(freq)))
    }

    /// The frequency of the k-th most frequent element, from a lock-free
    /// traversal of the bucket list (used by `IsElementInTopk`).
    pub fn kth_frequency(&self, k: usize) -> Option<u64> {
        if k == 0 {
            return None;
        }
        let guard = epoch::pin();
        // Collect (freq, len) ascending, then walk from the top.
        let mut counts: Vec<(u64, usize)> = Vec::new();
        let mut cur = self.head.load(Ordering::Acquire, &guard);
        let mut steps = 0usize;
        // SAFETY: chain pointers are loaded under `guard`; retired buckets
        // are reclaimed via `defer_destroy` only after every pin is released.
        while let Some(bucket) = unsafe { cur.as_ref() } {
            if !bucket.is_gc() && bucket.freq != 0 {
                counts.push((bucket.freq, bucket.len.load(Ordering::Acquire)));
            }
            if !bucket.is_gc() {
                steps += 1;
                if steps > self.capacity * 4 + 1024 {
                    break; // torn read; report best effort
                }
            }
            cur = bucket.next.load(Ordering::Acquire, &guard);
        }
        let mut remaining = k;
        for &(freq, len) in counts.iter().rev() {
            if len >= remaining {
                return Some(freq);
            }
            remaining -= len;
        }
        None
    }

    /// A best-effort consistent snapshot (exact at quiescence).
    fn snapshot_inner(&self) -> Snapshot<K> {
        let guard = epoch::pin();
        let cap = self.monitored().max(self.capacity) * 2 + 1024;
        let mut best: HashMap<K, CounterEntry<K>> = HashMap::new();
        let mut cur = self.head.load(Ordering::Acquire, &guard);
        let mut steps = 0usize;
        // SAFETY: chain pointers are loaded under `guard`; retired buckets
        // are reclaimed via `defer_destroy` only after every pin is released.
        'walk: while let Some(bucket) = unsafe { cur.as_ref() } {
            if !bucket.is_gc() && bucket.freq != 0 {
                let mut n = bucket.elems.load(Ordering::Acquire, &guard);
                let mut in_bucket = 0usize;
                // SAFETY: element-list nodes are unlinked before retirement
                // and reclaimed via `defer_destroy`; `guard` keeps them
                // valid.
                while let Some(node) = unsafe { n.as_ref() } {
                    let freq = node.freq.load(Ordering::Acquire);
                    if !node.is_dead() && freq > 0 {
                        let entry = CounterEntry::new(
                            node.key,
                            freq,
                            node.error.load(Ordering::Acquire).min(freq),
                        );
                        best.entry(node.key)
                            .and_modify(|e| {
                                if entry.count > e.count {
                                    *e = entry;
                                }
                            })
                            .or_insert(entry);
                    }
                    n = node.list_next.load(Ordering::Acquire, &guard);
                    in_bucket += 1;
                    if in_bucket > cap {
                        self.tally.read_restarts(1);
                        break 'walk; // torn list; report what we have
                    }
                }
            }
            if !bucket.is_gc() {
                steps += 1;
                if steps > cap {
                    self.tally.read_restarts(1);
                    break;
                }
            }
            cur = bucket.next.load(Ordering::Acquire, &guard);
        }
        Snapshot::new(
            best.into_values().collect(),
            self.total.load(Ordering::Acquire),
        )
    }
}

impl<K: Element> ConcurrentCounter<K> for CotsEngine<K> {
    fn process(&self, item: K) {
        self.delegate(item);
    }

    fn process_slice(&self, items: &[K]) {
        self.delegate_batch(items);
    }

    fn ingest_batch(&self, items: &[K]) {
        self.delegate_batch(items);
    }

    fn processed(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }
}

impl<K: Element> QueryableSummary<K> for CotsEngine<K> {
    fn snapshot(&self) -> Snapshot<K> {
        self.snapshot_inner()
    }

    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        self.estimate_point(item)
    }
}

#[cfg(feature = "invariants")]
impl<K: Element> cots_core::CheckInvariants for CotsEngine<K> {
    /// Audit the full structure. Only meaningful at quiescence (after
    /// [`CotsEngine::finalize`] with no concurrent producers): a mid-run
    /// audit observes in-flight delegations as violations by design.
    fn violations(&self) -> Vec<cots_core::Violation> {
        self.collect_violations()
            .into_iter()
            .map(|(name, detail)| cots_core::Violation::new(name, detail))
            .collect()
    }
}

impl<K: Element> Drop for CotsEngine<K> {
    fn drop(&mut self) {
        // Exclusive access: free the bucket list (nodes are owned and freed
        // by the hash table's Drop).
        // SAFETY: `&mut self` proves no concurrent accessors or live pins
        // remain.
        let guard = unsafe { epoch::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, guard);
        while !cur.is_null() {
            #[cfg(debug_assertions)]
            destroy_registry::assert_alive(cur.as_raw() as usize, "Drop");
            #[cfg(debug_assertions)]
            destroy_registry::forget(cur.as_raw() as usize);
            // SAFETY: `cur` is non-null (loop condition) and `&mut self`
            // excludes concurrent mutation.
            let next = unsafe { cur.deref() }.next.load(Ordering::Relaxed, guard);
            // SAFETY: each bucket appears exactly once in the chain, so this
            // is the unique owner.
            drop(unsafe { cur.into_owned() });
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cots_core::CotsConfig;
    use std::sync::Barrier;

    fn engine(capacity: usize) -> CotsEngine<u64> {
        CotsEngine::new(CotsConfig::for_capacity(capacity).unwrap()).unwrap()
    }

    fn checked_sum(e: &CotsEngine<u64>) -> u64 {
        e.finalize();
        e.check_quiescent_invariants();
        e.snapshot().entries().iter().map(|x| x.count).sum()
    }

    #[test]
    fn sequential_exact_counting() {
        let e = engine(16);
        for item in [1u64, 2, 2, 3, 3, 3, 1] {
            e.delegate(item);
        }
        e.finalize();
        assert_eq!(e.estimate_point(&1), Some((2, 0)));
        assert_eq!(e.estimate_point(&2), Some((2, 0)));
        assert_eq!(e.estimate_point(&3), Some((3, 0)));
        assert_eq!(e.estimate_point(&9), None);
        assert_eq!(e.processed(), 7);
        assert_eq!(checked_sum(&e), 7);
    }

    #[test]
    fn sequential_overwrite_semantics() {
        let e = engine(2);
        for item in [1u64, 1, 2, 3] {
            e.delegate(item);
        }
        e.finalize();
        // {1:2, 2:1}; 3 overwrites 2 -> {1:2, 3:2 (err 1)}.
        assert_eq!(e.estimate_point(&2), None);
        assert_eq!(e.estimate_point(&3), Some((2, 1)));
        assert_eq!(e.monitored(), 2);
        assert_eq!(checked_sum(&e), 4);
        assert!(e.work().overwrites >= 1);
    }

    #[test]
    fn bucket_reuse_and_min_advance() {
        let e = engine(8);
        // Push counts up so the min bucket empties repeatedly.
        for round in 0..5 {
            for item in 0..4u64 {
                e.delegate(item);
            }
            let _ = round;
        }
        e.finalize();
        for item in 0..4u64 {
            assert_eq!(e.estimate_point(&item), Some((5, 0)));
        }
        assert_eq!(checked_sum(&e), 20);
        assert!(e.work().gc_buckets > 0, "empty buckets must be collected");
    }

    #[test]
    fn concurrent_count_conservation_small_alphabet() {
        let e = Arc::new(engine(64));
        let threads = 8;
        let per = 10_000u64;
        let barrier = Arc::new(Barrier::new(threads));
        std::thread::scope(|s| {
            for t in 0..threads {
                let e = e.clone();
                let b = barrier.clone();
                s.spawn(move || {
                    b.wait();
                    for i in 0..per {
                        e.delegate((t as u64 + i) % 32);
                    }
                });
            }
        });
        let n = threads as u64 * per;
        assert_eq!(e.processed(), n);
        assert_eq!(checked_sum(&e), n);
        let snap = e.snapshot();
        assert!(snap.len() <= 32);
        // Exact counts: alphabet fits the budget, so every count must
        // equal the ground truth regardless of interleaving.
        let mut truth = std::collections::HashMap::new();
        for t in 0..threads as u64 {
            for i in 0..per {
                *truth.entry((t + i) % 32).or_insert(0u64) += 1;
            }
        }
        for entry in snap.entries() {
            assert_eq!(entry.count, truth[&entry.item], "item {:?}", entry.item);
            assert_eq!(entry.error, 0);
        }
    }

    #[test]
    fn concurrent_hot_element_combining() {
        // All threads hammer one element: delegation must combine.
        let e = Arc::new(engine(4));
        let threads = 8;
        let per = 20_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let e = e.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        e.delegate(7u64);
                    }
                });
            }
        });
        e.finalize();
        assert_eq!(e.estimate_point(&7), Some((threads as u64 * per, 0)));
        let w = e.work();
        assert_eq!(w.elements, threads as u64 * per);
        // Combining must have happened: far fewer crossings than elements.
        assert!(
            w.boundary_crossings < w.elements,
            "no combining: {} crossings for {} elements",
            w.boundary_crossings,
            w.elements
        );
        assert!(w.delegated_increments > 0);
    }

    #[test]
    fn concurrent_churn_with_overwrites() {
        let e = Arc::new(engine(16));
        let threads = 6;
        let per = 8_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let e = e.clone();
                s.spawn(move || {
                    let mut x = 0x9E3779B97F4A7C15u64 ^ t as u64;
                    for _ in 0..per {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let item = if x & 1 == 0 { x % 8 } else { 1000 + (x % 4000) };
                        e.delegate(item);
                    }
                });
            }
        });
        let n = threads as u64 * per;
        assert_eq!(e.processed(), n);
        assert_eq!(
            checked_sum(&e),
            n,
            "count conservation under eviction churn"
        );
        let snap = e.snapshot();
        assert_eq!(snap.len(), 16);
        for entry in snap.entries() {
            assert!(entry.error <= entry.count);
        }
        assert!(e.work().overwrites > 0);
    }

    #[test]
    fn estimates_visible_during_concurrent_updates() {
        let e = Arc::new(engine(32));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let e = e.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        e.delegate(i % 16);
                        i += 1;
                    }
                });
            }
            // Reader thread: estimates and snapshots must never panic or
            // violate basic sanity.
            let e2 = e.clone();
            let stop2 = stop.clone();
            s.spawn(move || {
                for _ in 0..2_000 {
                    if let Some((c, err)) = e2.estimate_point(&3) {
                        assert!(err <= c);
                    }
                    let snap = e2.snapshot();
                    assert!(snap.len() <= 64);
                    let _ = e2.kth_frequency(5);
                }
                stop2.store(true, Ordering::Relaxed);
            });
        });
        e.finalize();
        let sum: u64 = e.snapshot().entries().iter().map(|x| x.count).sum();
        assert_eq!(sum, e.processed());
    }

    #[test]
    fn kth_frequency_matches_snapshot() {
        let e = engine(32);
        for (item, reps) in [(1u64, 10), (2, 7), (3, 7), (4, 2)] {
            for _ in 0..reps {
                e.delegate(item);
            }
        }
        e.finalize();
        assert_eq!(e.kth_frequency(1), Some(10));
        assert_eq!(e.kth_frequency(2), Some(7));
        assert_eq!(e.kth_frequency(3), Some(7));
        assert_eq!(e.kth_frequency(4), Some(2));
        assert_eq!(e.kth_frequency(5), None);
        assert_eq!(e.kth_frequency(0), None);
    }

    #[test]
    fn combined_batches_match_per_element_no_eviction() {
        // Alphabet fits the budget, so nothing is ever evicted and the
        // front-end must reproduce the per-element run exactly.
        let cfg = CotsConfig::for_capacity(64).unwrap();
        let on = CotsEngine::<u64>::new(cfg).unwrap();
        let off = CotsEngine::<u64>::new(cfg.without_combiner()).unwrap();
        let mut x = 3u64;
        let stream: Vec<u64> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x % 48
            })
            .collect();
        for chunk in stream.chunks(512) {
            on.delegate_batch(chunk);
            off.delegate_batch(chunk);
        }
        on.finalize();
        off.finalize();
        on.check_quiescent_invariants();
        off.check_quiescent_invariants();
        assert_eq!(on.processed(), off.processed());
        for k in 0..48u64 {
            assert_eq!(on.estimate_point(&k), off.estimate_point(&k), "key {k}");
        }
        let (w_on, w_off) = (on.work(), off.work());
        assert!(w_on.combiner_flushes > 0, "front-end never engaged");
        assert!(w_on.combined_increments > 0);
        assert_eq!(w_off.combined_increments, 0);
        assert!(
            w_on.boundary_crossings < w_off.boundary_crossings,
            "combining must reduce crossings: {} vs {}",
            w_on.boundary_crossings,
            w_off.boundary_crossings
        );
        // Every occurrence is accounted for exactly once.
        assert_eq!(w_on.elements, 10_000);
        assert_eq!(w_off.boundary_crossings + w_off.delegated_increments, 10_000);
    }

    #[test]
    fn combined_lossy_matches_per_element() {
        // Single-threaded Lossy runs are deterministic: segment-wise
        // flushing before each round prune must reproduce the per-element
        // run exactly, evictions included.
        let cfg = CotsConfig::for_capacity(512).unwrap();
        let width = 16u64;
        let on =
            CotsEngine::<u64>::with_policy(cfg, Policy::LossyRounds { width }).unwrap();
        let off = CotsEngine::<u64>::with_policy(
            cfg.without_combiner(),
            Policy::LossyRounds { width },
        )
        .unwrap();
        let mut x = 11u64;
        let stream: Vec<u64> = (0..4_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x % 64).min(x % 8)
            })
            .collect();
        for chunk in stream.chunks(100) {
            // Odd chunk size: segments straddle round boundaries.
            on.delegate_batch(chunk);
            off.delegate_batch(chunk);
        }
        on.finalize();
        off.finalize();
        assert_eq!(on.monitored(), off.monitored());
        for k in 0..64u64 {
            assert_eq!(on.estimate_point(&k), off.estimate_point(&k), "key {k}");
        }
    }

    #[test]
    fn work_counters_sane() {
        let e = engine(8);
        for i in 0..1000u64 {
            e.delegate(i % 4);
        }
        e.finalize();
        let w = e.work();
        assert_eq!(w.elements, 1000);
        assert_eq!(w.boundary_crossings, 1000); // single-threaded: no combining
        assert!(w.summary_ops >= 1000);
        assert!((w.combining_factor() - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod lossy_tests {
    use super::*;
    use crate::policy::Policy;
    use cots_core::CotsConfig;

    fn lossy(width: u64) -> CotsEngine<u64> {
        CotsEngine::with_policy(
            CotsConfig::for_capacity(1024).unwrap(),
            Policy::LossyRounds { width },
        )
        .unwrap()
    }

    #[test]
    fn rejects_zero_width() {
        assert!(CotsEngine::<u64>::with_policy(
            CotsConfig::for_capacity(8).unwrap(),
            Policy::LossyRounds { width: 0 },
        )
        .is_err());
    }

    #[test]
    fn prunes_infrequent_at_round_boundaries() {
        let e = lossy(8);
        // Round 1: eight distinct singletons. At the boundary the prune
        // evicts idle elements with freq + delta <= 1.
        for item in 0..8u64 {
            e.delegate(item);
        }
        e.finalize();
        assert!(
            e.monitored() < 8,
            "round-boundary prune must evict singletons, still monitoring {}",
            e.monitored()
        );
        // A heavy element survives rounds.
        for _ in 0..20 {
            e.delegate(100);
        }
        for item in 200..204u64 {
            e.delegate(item);
        }
        e.finalize();
        let (count, _) = e.estimate_point(&100).expect("heavy element kept");
        assert_eq!(count, 20);
    }

    #[test]
    fn lossy_bounds_hold_like_sequential() {
        // Compare against the sequential Lossy Counting bounds: count
        // upper-bounds truth; count - error lower-bounds it.
        let e = lossy(16);
        let mut truth = std::collections::HashMap::new();
        let mut x = 5u64;
        for _ in 0..4_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (x % 64).min(x % 8);
            e.delegate(item);
            *truth.entry(item).or_insert(0u64) += 1;
        }
        e.finalize();
        let snap = e.snapshot();
        for entry in snap.entries() {
            let t = truth[&entry.item];
            // The CoTS adaptation prunes only the minimum bucket per
            // boundary (the paper's simplification), so counts can lag the
            // sequential algorithm's but bounds must stay sound.
            assert!(entry.count >= entry.error);
            assert!(entry.count - entry.error <= t, "guarantee exceeded truth");
            assert!(entry.count <= t + entry.error, "upper bound violated");
        }
        // Heavy elements (> N/16 = 250) must be monitored.
        let n = e.processed();
        for (&item, &t) in &truth {
            if t > n / 16 {
                assert!(snap.get(&item).is_some(), "{item} ({t}) missing");
            }
        }
    }

    #[test]
    fn concurrent_lossy_does_not_lose_heavy_elements() {
        let e = std::sync::Arc::new(lossy(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let e = e.clone();
                s.spawn(move || {
                    let mut x = 7u64 ^ (t as u64) << 32;
                    for i in 0..5_000u64 {
                        // Half the stream is the hot element 42.
                        let item = if i % 2 == 0 {
                            42
                        } else {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            1_000 + (x % 2_000)
                        };
                        e.delegate(item);
                    }
                });
            }
        });
        e.finalize();
        let (count, error) = e.estimate_point(&42).expect("hot element kept");
        assert!(count >= 10_000, "hot element count {count} too low");
        assert!(count - error <= 10_000);
    }
}
