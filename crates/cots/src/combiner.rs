//! Thread-local combining front-end: batch-scoped pre-aggregation of
//! `(key, count)` pairs in front of the shared search structure.
//!
//! CoTS's whole advantage is the *combining factor* — how many logged
//! increments each boundary crossing absorbs (§5.2). The delegation
//! protocol combines across threads, but inside one thread's batch every
//! occurrence still pays a full `lookup_or_insert` + `fetch_add` on the
//! shared table. On a skewed stream most of those occurrences repeat a
//! handful of hot keys, so a small open-addressing buffer local to the
//! batch collapses them first: one table operation and one
//! `pending.fetch_add(count)` per distinct hot key instead of one per
//! occurrence.
//!
//! ## Determinism and invariants
//!
//! The combiner is **batch-scoped**, not a persistent thread-local: it is
//! created on entry to `delegate_batch` and fully drained before the call
//! returns (and, under the Lossy policy, before every round-boundary
//! prune). No stream mass ever survives the call inside private state, so
//! count conservation (`Σ counts == N` at quiescence) and the
//! overestimate bound are preserved exactly; the only observable change
//! is that a batch's occurrences of one key reach the summary as one
//! aggregated increment instead of many unit increments.
//!
//! ## Eviction
//!
//! The buffer is fixed-capacity open addressing with a short linear-probe
//! window. When a new key lands in a full window, the *smallest-count*
//! entry in the window (first such, scanning from the home slot —
//! deterministic) is evicted and handed back to the caller for immediate
//! flush through the delegation protocol. Hot keys accumulate; cold keys
//! stream through with count 1, which is exactly the non-combined path.

/// One occupied combiner slot.
struct Slot<K> {
    key: K,
    /// The key's full hash, computed once; reused by the flush path so the
    /// shared-table lookup never rehashes.
    hash: u64,
    count: u64,
}

/// Number of slots inspected from the home slot before evicting.
const PROBE: usize = 8;

/// A fixed-capacity open-addressing `(key, count)` buffer.
///
/// Capacity must be a non-zero power of two (enforced by
/// `CotsConfig::validate`; asserted here).
pub struct BatchCombiner<K> {
    slots: Box<[Option<Slot<K>>]>,
    mask: usize,
    occupied: usize,
}

impl<K: Copy + PartialEq> BatchCombiner<K> {
    /// A combiner with `slots` slots (non-zero power of two).
    pub fn new(slots: usize) -> Self {
        assert!(
            slots != 0 && slots.is_power_of_two(),
            "combiner slots must be a non-zero power of two, got {slots}"
        );
        Self {
            slots: (0..slots).map(|_| None).collect(),
            mask: slots - 1,
            occupied: 0,
        }
    }

    /// Record one occurrence of `key` (whose hash is `hash`).
    ///
    /// Returns `None` when the occurrence was absorbed locally, or
    /// `Some((victim_key, victim_hash, victim_count))` when the probe
    /// window was full and the smallest-count resident was evicted to make
    /// room — the caller must flush the victim immediately.
    pub fn add(&mut self, key: K, hash: u64) -> Option<(K, u64, u64)> {
        let start = hash as usize & self.mask;
        let window = PROBE.min(self.slots.len());
        let mut free: Option<usize> = None;
        for i in 0..window {
            let idx = (start + i) & self.mask;
            match &mut self.slots[idx] {
                Some(s) if s.hash == hash && s.key == key => {
                    s.count += 1;
                    return None;
                }
                Some(_) => {}
                None => {
                    if free.is_none() {
                        free = Some(idx);
                    }
                }
            }
        }
        if let Some(idx) = free {
            self.slots[idx] = Some(Slot { key, hash, count: 1 });
            self.occupied += 1;
            return None;
        }
        // Window full of other keys: evict the first smallest-count entry.
        let mut victim = start;
        let mut victim_count = u64::MAX;
        for i in 0..window {
            let idx = (start + i) & self.mask;
            // Every window slot is occupied here (no `free` was found).
            let c = self.slots[idx].as_ref().map_or(u64::MAX, |s| s.count);
            if c < victim_count {
                victim = idx;
                victim_count = c;
            }
        }
        self.slots[victim]
            .replace(Slot { key, hash, count: 1 })
            .map(|s| (s.key, s.hash, s.count))
    }

    /// Flush every buffered entry through `f` (slot-index order —
    /// deterministic for a given insertion history) and reset.
    pub fn drain(&mut self, mut f: impl FnMut(K, u64, u64)) {
        if self.occupied == 0 {
            return;
        }
        for slot in self.slots.iter_mut() {
            if let Some(s) = slot.take() {
                f(s.key, s.hash, s.count);
            }
        }
        self.occupied = 0;
    }

    /// Number of distinct keys currently buffered.
    pub fn distinct(&self) -> usize {
        self.occupied
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(c: &mut BatchCombiner<u64>) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        c.drain(|k, h, n| out.push((k, h, n)));
        out
    }

    #[test]
    fn hot_key_aggregates_into_one_entry() {
        let mut c = BatchCombiner::new(64);
        for _ in 0..1000 {
            assert!(c.add(7, 0x1234).is_none());
        }
        assert_eq!(c.distinct(), 1);
        assert_eq!(collect(&mut c), vec![(7, 0x1234, 1000)]);
        assert!(c.is_empty());
    }

    #[test]
    fn distinct_keys_occupy_distinct_slots() {
        let mut c = BatchCombiner::new(64);
        for k in 0..32u64 {
            // Spread hashes so windows don't fill.
            assert!(c.add(k, k.wrapping_mul(0x9E37_79B9)).is_none());
        }
        assert_eq!(c.distinct(), 32);
        let mut out = collect(&mut c);
        out.sort_unstable();
        assert_eq!(out.len(), 32);
        for (i, &(k, _, n)) in out.iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(n, 1);
        }
    }

    #[test]
    fn full_window_evicts_smallest_count() {
        let mut c = BatchCombiner::new(8); // window == capacity
        // Fill all 8 slots with colliding keys; key 0 gets extra mass.
        for k in 0..8u64 {
            assert!(c.add(k, 0).is_none());
        }
        for _ in 0..5 {
            assert!(c.add(0, 0).is_none());
        }
        // Ninth key: some count-1 resident is evicted, never the hot key.
        let (vk, vh, vn) = c.add(99, 0).expect("window full: must evict");
        assert_ne!(vk, 0);
        assert_eq!(vh, 0);
        assert_eq!(vn, 1);
        // Total buffered mass is conserved minus the evicted unit.
        let total: u64 = collect(&mut c).iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total + vn, 8 + 5 + 1);
    }

    #[test]
    fn eviction_is_deterministic() {
        let build = || {
            let mut c = BatchCombiner::new(8);
            for k in 0..8u64 {
                c.add(k, 0);
            }
            c.add(0, 0);
            let victim = c.add(99, 0);
            (victim, collect(&mut c))
        };
        assert_eq!(build().0, build().0);
        assert_eq!(build().1, build().1);
    }

    #[test]
    fn drain_resets_for_reuse() {
        let mut c = BatchCombiner::new(16);
        c.add(1, 1);
        c.add(1, 1);
        assert_eq!(collect(&mut c), vec![(1, 1, 2)]);
        c.add(2, 2);
        assert_eq!(collect(&mut c), vec![(2, 2, 1)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = BatchCombiner::<u64>::new(12);
    }
}
