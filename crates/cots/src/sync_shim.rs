//! Atomics facade for model checking: `std::sync::atomic` in normal
//! builds, `loom`'s schedule-exploring atomics under `RUSTFLAGS="--cfg
//! loom"`.
//!
//! Production code is untouched by model checking — the engine keeps using
//! `std`/`crossbeam` directly. What this shim enables is writing the
//! *protocol models* in `tests/loom_models.rs` once, against one set of
//! names, and running them both ways:
//!
//! * `cargo test` — the models compile away (`#![cfg(loom)]`);
//! * `RUSTFLAGS="--cfg loom" cargo test --test loom_models` — the models
//!   run under the `loom` checker (the vendored stand-in explores
//!   randomized schedules; the registry crate explores all of them).
//!
//! See `docs/correctness.md` for what the models cover and why.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub use loom::thread;

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub use std::thread;

/// Run `f` as a checked model: under `--cfg loom` every execution is
/// schedule-explored by the checker; otherwise it simply runs once (so the
/// same model doubles as a plain unit test).
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) {
    #[cfg(loom)]
    loom::model(f);
    #[cfg(not(loom))]
    f();
}
