//! The shared node: a monitored element's record, which is simultaneously
//! the hash-table entry (search structure) and the Stream Summary element.
//!
//! In the paper's implementation "the hash table points to the element in
//! the Stream Summary structure, and the element in turn points to the
//! bucket to which it belongs" (§5.2); collapsing entry and element into one
//! node realizes exactly that.
//!
//! ## The `pending` counter — element-level delegation (Algorithm 2)
//!
//! `pending` encodes ownership and logged requests:
//!
//! * `0` — idle: the element is inside the summary, nobody is operating on
//!   it, no requests are logged.
//! * `n >= 1` — owned: some thread has crossed the boundary for this
//!   element, and `n - 1` further increments have been logged by other
//!   threads (the *bulk increment* mass).
//! * `>= TOMB` — tombstoned: the element has been evicted (`try_remove`
//!   CASed `0 → TOMB`); threads that raced their `fetch_add` onto a dying
//!   node observe a value above `TOMB`, undo their contribution and retry
//!   the lookup.
//!
//! ## Lifetime invariant (what makes [`NodePtr`] sound)
//!
//! A node is retired (unlinked from its hash chain and handed to
//! `crossbeam::epoch` for destruction) only after it has been tombstoned.
//! Tombstoning requires `pending == 0`, and any in-flight request for the
//! node holds a unit of `pending` (the crossing thread's own unit persists
//! until the relinquish CAS). Therefore **a queued request keeps its node
//! alive**, and dereferencing the raw pointer inside a request is safe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crossbeam::epoch::Atomic;

use crate::bucket::Bucket;

/// Tombstone threshold for the `pending` counter.
pub const TOMB: u64 = 1 << 62;

/// A monitored element: hash entry + summary element in one allocation.
#[derive(Debug)]
pub struct Node<K> {
    /// The monitored element.
    pub key: K,
    /// The key's full 64-bit hash, computed once at insertion. Chain walks
    /// compare this word before touching `key` (cheap rejection of
    /// colliding-bucket neighbours) and chain maintenance never rehashes.
    pub hash: u64,
    /// Ownership / delegation counter (see module docs).
    pub pending: AtomicU64,
    /// Current frequency estimate. `0` means "not yet admitted to the
    /// summary"; written only by the thread that owns the element inside
    /// the summary, read lock-free by point queries.
    pub freq: AtomicU64,
    /// Over-estimation bound (set at overwrite time).
    pub error: AtomicU64,
    /// The bucket currently holding this node. Written by the bucket owner
    /// that links the node; read when routing increment requests (always at
    /// a moment when the node is stationary — see `engine`).
    pub bucket: Atomic<Bucket<K>>,
    /// Next entry in the hash chain (insert-locked, read lock-free).
    pub chain_next: Atomic<Node<K>>,
    /// Fast dead flag mirroring `pending >= TOMB`; lets chain readers and
    /// garbage collection skip tombstoned entries without touching
    /// `pending`.
    pub dead: AtomicBool,
    /// Intrusive back-link inside the owning bucket's element list; mutated
    /// only by the owner of that bucket, read by lock-free traversals.
    pub list_prev: Atomic<Node<K>>,
    /// Intrusive forward link inside the owning bucket's element list.
    pub list_next: Atomic<Node<K>>,
}

impl<K: std::hash::Hash> Node<K> {
    /// Fresh node for `key`, not yet in the summary, hashing the key with
    /// the table's hash function.
    pub fn new(key: K) -> Self {
        let hash = cots_core::MulHash::hash(&key);
        Self::with_hash(key, hash)
    }
}

impl<K> Node<K> {
    /// Fresh node for `key` whose hash the caller already computed.
    pub fn with_hash(key: K, hash: u64) -> Self {
        Self {
            key,
            hash,
            pending: AtomicU64::new(0),
            freq: AtomicU64::new(0),
            error: AtomicU64::new(0),
            bucket: Atomic::null(),
            chain_next: Atomic::null(),
            dead: AtomicBool::new(false),
            list_prev: Atomic::null(),
            list_next: Atomic::null(),
        }
    }

    /// Whether the node has been tombstoned.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }
}

/// A raw reference to a [`Node`] carried inside a queued request.
///
/// # Safety
///
/// Constructed only from nodes whose `pending` count is held (≥ 1) by the
/// request being queued; per the lifetime invariant above, such nodes
/// cannot be retired, so the pointer stays valid until the request is
/// processed and the count is released.
pub struct NodePtr<K>(*const Node<K>);

// SAFETY: the pointee is kept alive by the pending-count protocol (module
// docs), and `Node` itself is Sync (all fields atomic or immutable).
unsafe impl<K: Send + Sync> Send for NodePtr<K> {}
unsafe impl<K: Send + Sync> Sync for NodePtr<K> {}

impl<K> NodePtr<K> {
    /// Wrap a node reference whose pending count the caller holds.
    pub fn new(node: &Node<K>) -> Self {
        Self(node as *const _)
    }

    /// Dereference. Safe per the pending-count lifetime invariant.
    #[inline]
    pub fn get(&self) -> &Node<K> {
        // SAFETY: see `NodePtr` docs — a queued request pins its node.
        unsafe { &*self.0 }
    }
}

impl<K> Clone for NodePtr<K> {
    fn clone(&self) -> Self {
        Self(self.0)
    }
}

impl<K: std::fmt::Debug> std::fmt::Debug for NodePtr<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("NodePtr").field(&self.get().key).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_is_idle_and_unadmitted() {
        let n = Node::new(7u64);
        assert_eq!(n.pending.load(Ordering::Relaxed), 0);
        assert_eq!(n.freq.load(Ordering::Relaxed), 0);
        assert!(!n.is_dead());
        assert_eq!(n.hash, cots_core::MulHash::hash(&7u64));
    }

    #[test]
    fn with_hash_stores_caller_hash() {
        let n = Node::with_hash(9u64, 0xDEAD_BEEF);
        assert_eq!(n.hash, 0xDEAD_BEEF);
        assert_eq!(n.key, 9);
    }

    #[test]
    fn node_ptr_round_trip() {
        let n = Node::new(42u64);
        let p = NodePtr::new(&n);
        assert_eq!(p.get().key, 42);
        let q = p.clone();
        assert_eq!(q.get().key, 42);
    }

    #[test]
    fn tomb_leaves_headroom() {
        // A stream of 2^62 elements would be needed to push a legitimate
        // pending count into tombstone territory.
        const { assert!(TOMB > u64::MAX / 8) };
        const { assert!(TOMB < u64::MAX / 2) };
    }
}
