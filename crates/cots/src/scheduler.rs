//! Dynamic auto configuration (§5.2.3): the thread pool and the σ/ρ
//! scheduling thresholds.
//!
//! The engine reports two conditions while enqueueing:
//!
//! * **congestion** — a bucket queue grew beyond σ, meaning delegation is
//!   out-pacing draining and extra producers only pile up requests ⇒ the
//!   gate lowers its active-thread target, and surplus workers park back
//!   into the pool at their next pause point;
//! * **starvation** — an unowned bucket queue exceeded ρ ⇒ the gate raises
//!   the target and wakes a parked worker to drain it.
//!
//! Workers call [`ThreadGate::pause_point`] between stream batches; workers
//! whose id is at or above the current target block there until the target
//! rises again or the run shuts down.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

/// Callbacks the engine raises toward the scheduler.
pub trait SchedulerHook: Send + Sync {
    /// A bucket queue exceeded σ while a thread enqueued.
    fn on_congestion(&self);
    /// An unowned bucket queue exceeded ρ.
    fn on_starvation(&self);
}

/// Adaptive worker gate: workers `0..target` run, the rest park.
pub struct ThreadGate {
    max_threads: usize,
    min_threads: usize,
    target: AtomicUsize,
    /// Cooldown so bursts of signals do not thrash the target.
    signals: AtomicU64,
    cooldown: u64,
    done: AtomicBool,
    lock: Mutex<()>,
    condvar: Condvar,
    /// Times the target was lowered (σ congestion events acted upon).
    pub parks: AtomicU64,
    /// Times the target was raised (ρ starvation events acted upon).
    pub wakes: AtomicU64,
}

impl ThreadGate {
    /// Gate over `max_threads` workers, never dropping below
    /// `min_threads`; at most one target adjustment per `cooldown` signals.
    pub fn new(max_threads: usize, min_threads: usize, cooldown: u64) -> Self {
        assert!(max_threads >= 1 && min_threads >= 1 && min_threads <= max_threads);
        Self {
            max_threads,
            min_threads,
            target: AtomicUsize::new(max_threads),
            signals: AtomicU64::new(0),
            cooldown: cooldown.max(1),
            done: AtomicBool::new(false),
            lock: Mutex::new(()),
            condvar: Condvar::new(),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
        }
    }

    /// The current active-thread target.
    pub fn active_target(&self) -> usize {
        self.target.load(Ordering::Acquire)
    }

    /// True once the run has been shut down.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Block worker `id` while it is above the active target. Returns
    /// immediately once the run is done.
    pub fn pause_point(&self, id: usize) {
        if self.is_done() || id < self.active_target() {
            return;
        }
        let mut guard = self.lock.lock();
        while !self.is_done() && id >= self.active_target() {
            self.condvar.wait(&mut guard);
        }
    }

    /// Release every parked worker permanently (end of run).
    pub fn shutdown(&self) {
        self.done.store(true, Ordering::Release);
        let _g = self.lock.lock();
        self.condvar.notify_all();
    }

    fn due(&self) -> bool {
        self.signals
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.cooldown)
    }

    fn adjust(&self, up: bool) {
        let _ = self
            .target
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
                if up {
                    (t < self.max_threads).then_some(t + 1)
                } else {
                    (t > self.min_threads).then_some(t - 1)
                }
            })
            .map(|_| {
                if up {
                    self.wakes.fetch_add(1, Ordering::Relaxed);
                    let _g = self.lock.lock();
                    self.condvar.notify_all();
                } else {
                    self.parks.fetch_add(1, Ordering::Relaxed);
                }
            });
    }
}

impl SchedulerHook for ThreadGate {
    fn on_congestion(&self) {
        if self.due() {
            self.adjust(false);
        }
    }

    fn on_starvation(&self) {
        if self.due() {
            self.adjust(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn target_moves_within_bounds() {
        let g = ThreadGate::new(4, 1, 1);
        assert_eq!(g.active_target(), 4);
        for _ in 0..10 {
            g.on_congestion();
        }
        assert_eq!(g.active_target(), 1, "never below min");
        for _ in 0..10 {
            g.on_starvation();
        }
        assert_eq!(g.active_target(), 4, "never above max");
    }

    #[test]
    fn cooldown_rate_limits() {
        let g = ThreadGate::new(8, 1, 4);
        // Only every 4th signal adjusts (the first one fires at counter 0).
        for _ in 0..8 {
            g.on_congestion();
        }
        assert_eq!(g.active_target(), 6);
    }

    #[test]
    fn workers_park_and_wake() {
        let g = Arc::new(ThreadGate::new(2, 1, 1));
        g.on_congestion(); // target 1: worker 1 must park
        assert_eq!(g.active_target(), 1);
        let g2 = g.clone();
        let h = std::thread::spawn(move || {
            g2.pause_point(1); // blocks until target rises or shutdown
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!h.is_finished(), "worker 1 should be parked");
        g.on_starvation(); // target back to 2 -> wake
        assert!(h.join().unwrap());
        assert_eq!(g.wakes.load(Ordering::Relaxed), 1);
        assert_eq!(g.parks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_releases_everyone() {
        let g = Arc::new(ThreadGate::new(2, 1, 1));
        g.on_congestion();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || g.pause_point(1))
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        g.shutdown();
        for h in handles {
            h.join().unwrap();
        }
        // pause_point after shutdown is a no-op.
        g.pause_point(5);
    }

    #[test]
    fn active_workers_never_block() {
        let g = ThreadGate::new(4, 1, 1);
        g.pause_point(0);
        g.pause_point(3);
    }
}
