//! Counting policies — the §5.3 generalization.
//!
//! "The framework is general enough to be able to accommodate other counter
//! based algorithms […] for adaptation into the CoTS framework, only the
//! Overwrite request in Space Saving has to be replaced by a request that
//! removes the minimum frequency bucket at round boundaries, everything
//! else remains unchanged."
//!
//! [`Policy::SpaceSaving`] caps the monitored set at the counter budget and
//! evicts via `Overwrite`; [`Policy::LossyRounds`] admits unconditionally
//! and prunes the minimum bucket at every round boundary.

use cots_core::json::{FromJson, Json, JsonError, JsonResult, ToJson};

/// The frequency-counting policy run inside the CoTS framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Space Saving (§3.3): bounded counters, minimum-element overwrite.
    SpaceSaving,
    /// Lossy Counting (§5.3): rounds of `width` elements; the minimum
    /// bucket is pruned at each round boundary.
    LossyRounds {
        /// Round width `w = ⌈1/ε⌉`.
        width: u64,
    },
}

impl Policy {
    /// Lossy Counting policy from an error bound.
    pub fn lossy_from_epsilon(epsilon: f64) -> cots_core::Result<Self> {
        let cfg = cots_core::SummaryConfig::with_epsilon(epsilon)?;
        Ok(Policy::LossyRounds {
            width: cfg.capacity as u64,
        })
    }
}

impl ToJson for Policy {
    fn to_json(&self) -> Json {
        match self {
            Policy::SpaceSaving => Json::Str("SpaceSaving".into()),
            Policy::LossyRounds { width } => Json::Obj(vec![(
                "LossyRounds".into(),
                Json::obj(vec![("width", width.to_json())]),
            )]),
        }
    }
}

impl FromJson for Policy {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match v {
            Json::Str(s) if s == "SpaceSaving" => Ok(Policy::SpaceSaving),
            Json::Obj(members) if members.len() == 1 && members[0].0 == "LossyRounds" => {
                Ok(Policy::LossyRounds {
                    width: u64::from_json(members[0].1.field("width")?)?,
                })
            }
            _ => Err(JsonError("unknown Policy variant".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_from_epsilon_widths() {
        assert_eq!(
            Policy::lossy_from_epsilon(0.01).unwrap(),
            Policy::LossyRounds { width: 100 }
        );
        assert!(Policy::lossy_from_epsilon(0.0).is_err());
    }

    #[test]
    fn json_round_trip() {
        for p in [Policy::SpaceSaving, Policy::LossyRounds { width: 7 }] {
            let s = cots_core::json::to_string(&p);
            let back: Policy = cots_core::json::from_str(&s).unwrap();
            assert_eq!(p, back);
        }
    }
}
