//! Jumping-window frequency counting on top of the CoTS engine.
//!
//! The paper's motivating applications (click accounting, fraud and
//! network monitoring, §1) usually ask about *recent* traffic — "the top-25
//! most clicked ads today", "sources exceeding 1% of the last million
//! packets" — rather than all history. The standard bounded-memory answer
//! is a **jumping window**: the stream is cut into sub-windows of `W/2`
//! elements, counted by two engines in a rotation; queries merge the
//! active pair, covering between `W/2` and `W` of the most recent elements
//! at all times.
//!
//! The rotation is coordinated with an atomic element budget, so any
//! number of threads can feed the window concurrently; rotation swaps in a
//! pre-built spare engine and retires the oldest one out of band.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use cots_core::merge::merge_snapshots;
use cots_core::{CotsConfig, CotsError, Element, Result, Snapshot};

use crate::engine::CotsEngine;

/// A window snapshot stamped with the rotation count it was taken at, so
/// clients polling the window can detect turnover between two reads.
///
/// Derefs to the underlying [`Snapshot`], so all query helpers
/// (`get`, `entries`, `frequent`, `top_k`, …) work directly on it.
#[derive(Debug, Clone)]
pub struct WindowSnapshot<K: Element> {
    /// The merged previous+current sub-window summary.
    pub snapshot: Snapshot<K>,
    /// Rotations completed when this snapshot was captured.
    pub rotations: u64,
    /// Whether the rotation count was unchanged across the capture — a
    /// `stable` snapshot is guaranteed to merge one consistent engine pair;
    /// an unstable one may straddle a rotation (still a valid summary of
    /// recent traffic, just with a fuzzier cut).
    pub stable: bool,
}

impl<K: Element> std::ops::Deref for WindowSnapshot<K> {
    type Target = Snapshot<K>;

    fn deref(&self) -> &Snapshot<K> {
        &self.snapshot
    }
}

/// A jumping window of (at most) `window` elements over a CoTS engine pair.
///
/// # Example
///
/// ```
/// use cots::JumpingWindow;
/// use cots_core::CotsConfig;
///
/// let w = JumpingWindow::<u64>::new(CotsConfig::for_capacity(16)?, 100)?;
/// for _ in 0..40 { w.process(7); }   // old traffic
/// for _ in 0..110 { w.process(9); }  // two rotations later...
/// let snap = w.snapshot();
/// assert!(snap.get(&7).is_none(), "old element aged out");
/// assert!(snap.get(&9).is_some());
/// # Ok::<(), cots_core::CotsError>(())
/// ```
pub struct JumpingWindow<K: Element> {
    config: CotsConfig,
    /// Elements per sub-window (`window / 2`).
    sub: u64,
    /// The engine pair: `[previous, current]`.
    engines: RwLock<[Arc<CotsEngine<K>>; 2]>,
    /// Elements admitted into the current sub-window.
    fill: AtomicU64,
    /// Total processed over the window's lifetime.
    total: AtomicU64,
    /// Elements whose `process` call has returned (trails `total`, which
    /// counts up front). See [`JumpingWindow::applied`].
    applied: AtomicU64,
    /// Rotations performed.
    rotations: AtomicU64,
}

impl<K: Element> JumpingWindow<K> {
    /// Build a window of `window` elements (two sub-windows of half that),
    /// each sub-window counted by an engine with `config`.
    pub fn new(config: CotsConfig, window: u64) -> Result<Self> {
        if window < 2 {
            return Err(CotsError::InvalidConfig("window must be at least 2".into()));
        }
        config.validate()?;
        Ok(Self {
            config,
            sub: window / 2,
            engines: RwLock::new([
                Arc::new(CotsEngine::new(config)?),
                Arc::new(CotsEngine::new(config)?),
            ]),
            fill: AtomicU64::new(0),
            total: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
        })
    }

    /// Process one element into the current sub-window, rotating when it
    /// fills.
    pub fn process(&self, item: K) {
        self.total.fetch_add(1, Ordering::AcqRel);
        loop {
            let ticket = self.fill.fetch_add(1, Ordering::AcqRel);
            if ticket < self.sub {
                let current = self.engines.read()[1].clone();
                current.delegate(item);
                self.applied.fetch_add(1, Ordering::AcqRel);
                return;
            }
            if ticket == self.sub {
                // We drew the rotation ticket: swap in a fresh engine.
                self.rotate();
                // Fall through and retry (fill was reset by rotate).
                continue;
            }
            // Rotation in progress on another thread; help by spinning
            // briefly — rotation is O(1) (an engine swap).
            std::hint::spin_loop();
            if self.fill.load(Ordering::Acquire) > self.sub {
                std::thread::yield_now();
            }
        }
    }

    /// Force a rotation (end the current sub-window early). Also used
    /// internally when the sub-window fills. Concurrent rotations are
    /// permitted (each retires one more sub-window early); elements
    /// delegated while a rotation is in flight land in whichever
    /// sub-window their engine handle belongs to — the window covers
    /// between `W/2` and `W` recent elements by construction, so this only
    /// shifts where inside that range the cut falls.
    pub fn rotate(&self) {
        let fresh = Arc::new(CotsEngine::new(self.config).expect("validated config"));
        {
            let mut engines = self.engines.write();
            engines[0] = engines[1].clone(); // current becomes previous
            engines[1] = fresh; // old previous is dropped
        }
        self.rotations.fetch_add(1, Ordering::AcqRel);
        self.fill.store(0, Ordering::Release);
    }

    /// Process a slice of elements into the window (rotating as sub-windows
    /// fill). Convenience wrapper over [`process`](Self::process) for batch
    /// ingest paths such as `cots-serve`.
    pub fn process_slice(&self, items: &[K]) {
        for item in items {
            self.process(*item);
        }
    }

    /// Snapshot covering the window: the merge of the previous and current
    /// sub-windows (between `W/2` and `W` most-recent elements), stamped
    /// with the rotation count so clients can detect window turnover.
    ///
    /// Like every query in the suite this is best-effort while producers
    /// are running and exact at quiescence (after all `process` calls have
    /// returned). The capture retries once if a rotation lands mid-merge;
    /// if rotations are arriving faster than the merge completes it gives
    /// up and marks the result `stable: false`.
    pub fn snapshot(&self) -> WindowSnapshot<K> {
        for _ in 0..2 {
            let before = self.rotations.load(Ordering::Acquire);
            let snapshot = self.capture();
            let after = self.rotations.load(Ordering::Acquire);
            if before == after {
                return WindowSnapshot {
                    snapshot,
                    rotations: after,
                    stable: true,
                };
            }
        }
        let rotations = self.rotations.load(Ordering::Acquire);
        WindowSnapshot {
            snapshot: self.capture(),
            rotations,
            stable: false,
        }
    }

    /// Merge the active engine pair into one summary.
    fn capture(&self) -> Snapshot<K> {
        let engines = self.engines.read();
        let (prev, cur) = (engines[0].clone(), engines[1].clone());
        drop(engines);
        // Apply any logged-but-unapplied requests so quiescent snapshots
        // are exact. `drain_pending` is safe (and cheap) concurrently with
        // producers; it simply drains whatever is queued at this moment.
        prev.drain_pending();
        cur.drain_pending();
        let snaps = [
            cots_core::QueryableSummary::snapshot(&*prev),
            cots_core::QueryableSummary::snapshot(&*cur),
        ];
        merge_snapshots(&snaps, self.config.summary.capacity)
    }

    /// Elements processed over the window's lifetime.
    pub fn processed(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }

    /// Elements whose `process` call has returned — each is flushed into
    /// its sub-window engine, so a snapshot taken *after* reading this
    /// covers at least this much lifetime mass. `processed() − applied()`
    /// bounds the in-flight mass a concurrent snapshot may be missing.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Completed rotations.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Acquire)
    }

    /// Upper bound on the number of elements the snapshot covers.
    pub fn window(&self) -> u64 {
        self.sub * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(capacity: usize, w: u64) -> JumpingWindow<u64> {
        JumpingWindow::new(CotsConfig::for_capacity(capacity).unwrap(), w).unwrap()
    }

    #[test]
    fn rejects_degenerate_windows() {
        assert!(JumpingWindow::<u64>::new(CotsConfig::for_capacity(8).unwrap(), 1).is_err());
    }

    #[test]
    fn forgets_old_traffic() {
        let w = window(64, 1_000);
        // Phase 1: element 1 dominates.
        for _ in 0..600 {
            w.process(1);
        }
        // Phase 2: element 2 dominates; phase 1 traffic ages out after two
        // sub-windows.
        for _ in 0..1_100 {
            w.process(2);
        }
        let snap = w.snapshot();
        let c1 = snap.get(&1).map(|e| e.count).unwrap_or(0);
        let c2 = snap.get(&2).map(|e| e.count).unwrap_or(0);
        assert!(c2 > c1 * 3, "recent element must dominate: c1={c1} c2={c2}");
        assert!(w.rotations() >= 2);
        // The window never reports more than W elements' worth of mass.
        let sum: u64 = snap.entries().iter().map(|e| e.count).sum();
        assert!(sum <= w.window());
    }

    #[test]
    fn explicit_rotation() {
        let w = window(16, 100);
        for i in 0..30u64 {
            w.process(i % 3);
        }
        w.rotate();
        w.rotate();
        // After two forced rotations everything has aged out.
        assert_eq!(w.snapshot().entries().len(), 0);
        assert_eq!(w.processed(), 30);
    }

    #[test]
    fn snapshot_carries_rotation_stamp() {
        let w = window(16, 100);
        let s0 = w.snapshot();
        assert_eq!(s0.rotations, 0);
        assert!(s0.stable);
        w.process_slice(&[1u64; 120]);
        let s1 = w.snapshot();
        assert!(s1.rotations >= 2, "120 items over W=100 must rotate twice");
        assert!(s1.stable, "no producers running: capture must be stable");
        // A client comparing stamps detects the turnover.
        assert_ne!(s0.rotations, s1.rotations);
        // Deref gives full Snapshot access.
        assert!(s1.get(&1).is_some());
        assert_eq!(s1.rotations, w.rotations());
    }

    #[test]
    fn concurrent_feeding_conserves_window_mass() {
        let w = Arc::new(window(128, 10_000));
        let threads = 4;
        let per = 20_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let w = w.clone();
                s.spawn(move || {
                    for i in 0..per {
                        w.process((t as u64 + i) % 64);
                    }
                });
            }
        });
        assert_eq!(w.processed(), threads as u64 * per);
        let snap = w.snapshot();
        let sum: u64 = snap.entries().iter().map(|e| e.count).sum();
        // The active pair holds between W/2 and W elements (modulo the
        // rotation in flight at the end).
        assert!(sum <= w.window(), "sum {sum} beyond window {}", w.window());
        assert!(sum > 0);
        assert!(w.rotations() >= 10);
    }
}
