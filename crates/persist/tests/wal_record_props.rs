//! Property tests for the WAL record grammar: the multi-batch *run*
//! record must be observationally identical to the legacy per-batch
//! form under `scan_wal`, and recovery must stay total — arbitrary,
//! truncated, or bit-flipped record payloads produce torn-frame
//! accounting, never a panic and never partial runs.

use std::path::PathBuf;

use proptest::prelude::*;

use cots_persist::{encode_record, scan_wal, FsyncPolicy, WalWriter, DEFAULT_SEGMENT_BYTES};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cots-persist-props-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A hand-built single-segment WAL directory: magic plus one CRC-framed
/// record holding `payload`.
fn dir_with_record_payload(tag: &str, payload: &[u8]) -> PathBuf {
    let dir = temp_dir(tag);
    let mut bytes = cots_persist::WAL_MAGIC.to_vec();
    encode_record(payload, &mut bytes);
    std::fs::write(dir.join("wal-0000000000000000.wal"), bytes).unwrap();
    dir
}

/// Batches biased toward the edges: empty, single-key, bulky.
fn batches() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Vec::new()),
            proptest::collection::vec(any::<u64>(), 1..=1),
            proptest::collection::vec(any::<u64>(), 2..64),
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn run_records_scan_identically_to_per_batch_records(
        batches in batches(),
        first_seq in 0u64..1 << 40,
    ) {
        let run_dir = temp_dir("run");
        let mut w =
            WalWriter::open(&run_dir, first_seq, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append_run(first_seq, &batches);
        let run_stats = w.commit().unwrap();
        drop(w);

        let legacy_dir = temp_dir("legacy");
        let mut w =
            WalWriter::open(&legacy_dir, first_seq, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES)
                .unwrap();
        for (i, batch) in batches.iter().enumerate() {
            w.append(first_seq + i as u64, batch);
        }
        let legacy_stats = w.commit().unwrap();
        drop(w);

        prop_assert_eq!(run_stats.records, legacy_stats.records);
        prop_assert_eq!(run_stats.keys, legacy_stats.keys);
        let run_scan = scan_wal(&run_dir, 0).unwrap();
        let legacy_scan = scan_wal(&legacy_dir, 0).unwrap();
        prop_assert_eq!(&run_scan.batches, &legacy_scan.batches);
        prop_assert_eq!(run_scan.records, legacy_scan.records);
        prop_assert_eq!(run_scan.max_seq, legacy_scan.max_seq);
        prop_assert_eq!(run_scan.torn_frames, 0);
        std::fs::remove_dir_all(&run_dir).unwrap();
        std::fs::remove_dir_all(&legacy_dir).unwrap();
    }

    #[test]
    fn arbitrary_record_payloads_never_panic_recovery(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // A CRC-valid frame around arbitrary bytes: the payload grammar
        // either parses or the frame is counted torn — recovery is total.
        let dir = dir_with_record_payload("garbage", &payload);
        let scan = scan_wal(&dir, 0).unwrap();
        prop_assert!(scan.records > 0 || scan.torn_frames == 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_run_records_never_panic_and_never_leak_partial_runs(
        batches in batches(),
        bit in any::<usize>(),
    ) {
        let dir = temp_dir("flip");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append_run(0, &batches);
        w.commit().unwrap();
        let path = w.segment_path().to_path_buf();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let start = cots_persist::WAL_MAGIC.len() * 8;
        let bit = start + bit % (bytes.len() * 8 - start);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();

        let n = batches.len() as u64;
        let scan = scan_wal(&dir, 0).unwrap();
        // The CRC catches nearly every flip (torn frame, nothing
        // recovered); a flip the CRC itself absorbs is impossible for a
        // single bit, so the only alternative is a clean full run.
        prop_assert!(
            scan.records == 0 || scan.records == n,
            "partial run surfaced: {} of {} records",
            scan.records,
            n
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_run_records_recover_nothing_not_partial_runs(
        batches in batches(),
        cut in any::<usize>(),
    ) {
        let dir = temp_dir("cut");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append_run(0, &batches);
        w.commit().unwrap();
        let path = w.segment_path().to_path_buf();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        // Cut strictly inside the record (past the segment magic).
        let keep = cots_persist::WAL_MAGIC.len()
            + cut % (bytes.len() - cots_persist::WAL_MAGIC.len());
        std::fs::write(&path, &bytes[..keep]).unwrap();

        let scan = scan_wal(&dir, 0).unwrap();
        prop_assert_eq!(scan.records, 0, "a torn run must be all-or-nothing");
        prop_assert!(scan.batches.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
