//! Fault-injection property tests: arbitrary corruption of a valid data
//! directory must never panic, never invent or inflate mass, and must
//! account for what it dropped.
//!
//! Three properties, per the durability contract:
//!
//! 1. **Total decode** — truncation, bit rot, or appended garbage
//!    produce a smaller recovery, never a panic or a decode loop.
//! 2. **Never over-report** — every recovered WAL batch is byte-equal to
//!    a batch that was actually committed (matched by sequence number),
//!    with strictly increasing sequences; a corrupted checkpoint either
//!    fails to load or loads identical to what was written.
//! 3. **Conservative accounting** — when committed batches go missing,
//!    the scan flags it (`torn_frames`/`dropped_bytes`), except for the
//!    one inherently silent case: a truncation that lands exactly on a
//!    frame boundary, which is indistinguishable from a shorter log.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use cots_core::{CounterEntry, Snapshot};
use cots_persist::{
    find_checkpoints, load_checkpoint, recover, scan_wal, write_checkpoint, Checkpoint,
    FsyncPolicy, WalWriter,
};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cots-fault-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One corruption to inflict on a chosen file.
#[derive(Debug, Clone)]
enum Fault {
    /// Cut the file to `frac` of its length.
    Truncate { frac: f64 },
    /// Flip one bit at relative position `frac`.
    FlipBit { frac: f64, bit: u8 },
    /// Append raw bytes after the end.
    Garbage { bytes: Vec<u8> },
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0.0..1.0f64).prop_map(|frac| Fault::Truncate { frac }),
        ((0.0..1.0f64), 0u8..8).prop_map(|(frac, bit)| Fault::FlipBit { frac, bit }),
        proptest::collection::vec(any::<u8>(), 1..64).prop_map(|bytes| Fault::Garbage { bytes }),
    ]
}

/// Apply `fault` to `path`. Returns `true` if the file actually changed
/// (an empty file cannot have a bit flipped, and `Truncate { frac: ~1.0 }`
/// may be a no-op).
fn inflict(path: &Path, fault: &Fault) -> bool {
    let mut bytes = std::fs::read(path).unwrap();
    let before = bytes.clone();
    match fault {
        Fault::Truncate { frac } => {
            let keep = ((bytes.len() as f64) * frac) as usize;
            bytes.truncate(keep);
        }
        Fault::FlipBit { frac, bit } => {
            if !bytes.is_empty() {
                let pos = (((bytes.len() - 1) as f64) * frac) as usize;
                bytes[pos] ^= 1 << bit;
            }
        }
        Fault::Garbage { bytes: tail } => bytes.extend_from_slice(tail),
    }
    let changed = bytes != before;
    if changed {
        std::fs::write(path, &bytes).unwrap();
    }
    changed
}

/// Commit `batches` to a fresh WAL under `dir` with tiny segments so
/// multi-segment behavior is exercised; sequence numbers are the batch
/// indices.
fn build_wal(dir: &Path, batches: &[Vec<u64>]) {
    let mut writer = WalWriter::open(dir, 0, FsyncPolicy::Off, 128).unwrap();
    for (seq, keys) in batches.iter().enumerate() {
        writer.append(seq as u64, keys);
        writer.commit().unwrap();
    }
}

fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| cots_persist::parse_segment_name(p).is_some())
        .collect();
    found.sort();
    found
}

/// A semantically valid checkpoint over `counts` (item = index).
fn make_checkpoint(counts: &[u64], watermark: u64, epoch: u64) -> Checkpoint {
    let mut sorted = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    let entries: Vec<CounterEntry<u64>> = sorted
        .iter()
        .enumerate()
        .map(|(i, &c)| CounterEntry::new(i as u64, c, c / 2))
        .collect();
    let capacity = entries.len().max(1);
    Checkpoint::from_snapshot(watermark, epoch, capacity, &Snapshot::new(entries, total))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corrupting one WAL file anywhere leaves a scan that recovers only
    /// genuine batches and owns up to what it lost.
    #[test]
    fn corrupted_wal_never_over_reports(
        batches in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..24), 1..16),
        which in 0.0..1.0f64,
        fault in fault_strategy(),
    ) {
        let dir = temp_dir("wal");
        build_wal(&dir, &batches);

        // Control: an untouched directory recovers everything exactly.
        let clean = scan_wal(&dir, 0).unwrap();
        prop_assert_eq!(clean.batches.len(), batches.len());
        for b in &clean.batches {
            prop_assert_eq!(&b.keys, &batches[b.seq as usize]);
        }
        prop_assert_eq!(clean.torn_frames, 0);
        prop_assert_eq!(clean.dropped_bytes, 0);

        let segments = wal_segments(&dir);
        let target = &segments[((segments.len() - 1) as f64 * which) as usize];
        let changed = inflict(target, &fault);

        let scan = scan_wal(&dir, 0).unwrap();
        // Never over-report: every batch is one we committed, unaltered,
        // in strictly increasing sequence order.
        let mut last: Option<u64> = None;
        for b in &scan.batches {
            prop_assert!((b.seq as usize) < batches.len(), "invented seq {}", b.seq);
            prop_assert_eq!(&b.keys, &batches[b.seq as usize], "altered payload at seq {}", b.seq);
            prop_assert!(last.is_none_or(|l| b.seq > l), "non-monotone seq {}", b.seq);
            last = Some(b.seq);
        }
        prop_assert!(scan.batches.len() <= batches.len());
        prop_assert!(scan.dropped_bytes <= scan.bytes_scanned);

        // Conservative accounting: losing a committed batch is flagged,
        // except for a truncation that lands exactly on a frame boundary
        // (indistinguishable from a shorter log by construction).
        let missing = batches.len() - scan.batches.len();
        if missing > 0 && changed {
            prop_assert!(
                scan.torn_frames > 0
                    || scan.dropped_bytes > 0
                    || matches!(fault, Fault::Truncate { .. }),
                "{missing} batches vanished silently under {fault:?}"
            );
        }
        if !changed {
            prop_assert_eq!(missing, 0, "no-op fault must not lose batches");
        }

        // The full pipeline tolerates the same directory.
        let rec = recover(&dir).unwrap();
        prop_assert_eq!(rec.batches.len(), scan.batches.len());
        let replayed: u64 = rec.batches.iter().map(|b| b.keys.len() as u64).sum();
        prop_assert_eq!(rec.report.replayed_items, replayed);
        prop_assert_eq!(rec.report.recovered_items, replayed);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A corrupted checkpoint either refuses to load or loads exactly
    /// what was written — never a plausible-but-different summary.
    #[test]
    fn corrupted_checkpoint_loads_exact_or_errors(
        counts in proptest::collection::vec(1u64..1_000, 1..32),
        watermark in 0u64..1 << 40,
        epoch in 0u64..1 << 30,
        fault in fault_strategy(),
    ) {
        let dir = temp_dir("ckpt");
        let original = make_checkpoint(&counts, watermark, epoch);
        let (path, _) = write_checkpoint(&dir, &original).unwrap();

        prop_assert_eq!(&load_checkpoint(&path).unwrap(), &original);
        inflict(&path, &fault);

        match load_checkpoint(&path) {
            Ok(loaded) => prop_assert_eq!(&loaded, &original, "corruption slipped through"),
            Err(_) => {}
        }

        // recover() falls back to "no checkpoint" rather than failing,
        // and counts the rejected file.
        let rec = recover(&dir).unwrap();
        match &rec.base {
            Some(base) => prop_assert_eq!(base, &original),
            None => prop_assert!(rec.report.corrupt_checkpoints > 0 ||
                find_checkpoints(&dir).unwrap().is_empty()),
        }

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
