//! Length-prefixed, CRC-framed record codec shared by checkpoints and the
//! WAL.
//!
//! On-disk layout of one record:
//!
//! ```text
//! [len: u32 le][crc32(payload): u32 le][payload: len bytes]
//! ```
//!
//! Decoding is **total**: any byte sequence maps to either a record or a
//! [`RecordError`], never a panic. A decoder that hits `Incomplete` at the
//! end of a file has found a torn tail (the record was being written when
//! the process died); `Corrupt` and `TooLarge` indicate bit rot or garbage.
//! Callers recover the valid prefix and account the rest as dropped bytes.
//!
//! AUDIT: total — enforced by `cargo xtask audit` (lint-totality).

use crate::crc::crc32;

/// Hard ceiling on a single record's payload. Keeps a corrupted length
/// prefix from driving a multi-gigabyte allocation.
pub const MAX_RECORD: usize = 64 * 1024 * 1024;

/// Why a record failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The buffer ends before the framed record does (torn tail).
    Incomplete,
    /// The length prefix exceeds [`MAX_RECORD`] (garbage framing).
    TooLarge(usize),
    /// The payload checksum does not match (bit rot / partial overwrite).
    Corrupt {
        /// CRC stored in the frame.
        expected: u32,
        /// CRC computed over the payload bytes actually present.
        actual: u32,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Incomplete => write!(f, "record truncated"),
            RecordError::TooLarge(n) => write!(f, "record length {n} exceeds {MAX_RECORD}"),
            RecordError::Corrupt { expected, actual } => {
                write!(f, "record crc mismatch: stored {expected:#010x}, computed {actual:#010x}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Frame `payload` into `out`. Returns the number of bytes appended.
pub fn encode_record(payload: &[u8], out: &mut Vec<u8>) -> usize {
    debug_assert!(payload.len() <= MAX_RECORD);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    8 + payload.len()
}

/// Read a little-endian `u32` at byte offset `off`, if all four bytes are
/// present. Total: out-of-range offsets (overflow included) yield `None`.
pub fn read_u32_le(buf: &[u8], off: usize) -> Option<u32> {
    let bytes = buf.get(off..off.checked_add(4)?)?;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

/// Read a little-endian `u64` at byte offset `off`; see [`read_u32_le`].
pub fn read_u64_le(buf: &[u8], off: usize) -> Option<u64> {
    let bytes = buf.get(off..off.checked_add(8)?)?;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

/// Decode one record from the front of `buf`.
///
/// On success returns the payload slice and the total number of bytes
/// consumed (framing included). Never panics on any input.
pub fn decode_record(buf: &[u8]) -> Result<(&[u8], usize), RecordError> {
    let len = read_u32_le(buf, 0).ok_or(RecordError::Incomplete)? as usize;
    if len > MAX_RECORD {
        return Err(RecordError::TooLarge(len));
    }
    let expected = read_u32_le(buf, 4).ok_or(RecordError::Incomplete)?;
    let end = 8usize.checked_add(len).ok_or(RecordError::TooLarge(len))?;
    let payload = buf.get(8..end).ok_or(RecordError::Incomplete)?;
    let actual = crc32(payload);
    if actual != expected {
        return Err(RecordError::Corrupt { expected, actual });
    }
    Ok((payload, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        let n = encode_record(b"hello", &mut buf);
        assert_eq!(n, 13);
        let (payload, consumed) = decode_record(&buf).unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(consumed, 13);
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut buf = Vec::new();
        encode_record(b"", &mut buf);
        let (payload, consumed) = decode_record(&buf).unwrap();
        assert!(payload.is_empty());
        assert_eq!(consumed, 8);
    }

    #[test]
    fn truncation_is_incomplete() {
        let mut buf = Vec::new();
        encode_record(b"payload bytes", &mut buf);
        for cut in 0..buf.len() {
            match decode_record(&buf[..cut]) {
                Err(RecordError::Incomplete) => {}
                other => panic!("cut at {cut}: expected Incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut base = Vec::new();
        encode_record(b"some payload worth protecting", &mut base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut buf = base.clone();
                buf[byte] ^= 1 << bit;
                // Any single-bit flip must not decode to the original
                // payload: it either fails, or (for a flip inside the
                // length prefix that still frames a valid CRC — impossible
                // here, but we stay total) yields different bytes.
                if let Ok((p, _)) = decode_record(&buf) {
                    assert_ne!(p, b"some payload worth protecting".as_slice());
                }
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0; 4]);
        assert!(matches!(decode_record(&buf), Err(RecordError::TooLarge(_))));
    }

    #[test]
    fn consecutive_records_stream() {
        let mut buf = Vec::new();
        encode_record(b"first", &mut buf);
        encode_record(b"second", &mut buf);
        let (p1, n1) = decode_record(&buf).unwrap();
        assert_eq!(p1, b"first");
        let (p2, n2) = decode_record(&buf[n1..]).unwrap();
        assert_eq!(p2, b"second");
        assert_eq!(n1 + n2, buf.len());
    }
}
