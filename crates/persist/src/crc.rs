//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Used to frame every on-disk record so that torn writes, bit rot, and
//! garbage tails are detected instead of decoded. The table is generated
//! at compile time; no dependencies.
//!
//! AUDIT: total — enforced by `cargo xtask audit` (lint-totality).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one byte of input per step.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        // PANIC-OK: `i < 256` is the loop condition and the table has
        // exactly 256 entries; a miss is a compile error (const fn).
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (initial value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`;
/// the common "crc32" as computed by zlib, gzip, and PNG).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        // PANIC-OK: the index is masked to `& 0xFF`, so it is always in
        // range for the 256-entry table.
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worlc");
        assert_ne!(a, b);
    }
}
