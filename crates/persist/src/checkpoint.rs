//! Epoch-consistent checkpoint files.
//!
//! A checkpoint captures one merged summary of the whole service —
//! entries, total processed mass, publisher epoch — together with the WAL
//! **watermark**: the first batch sequence number *not* contained in the
//! snapshot. Recovery loads the newest valid checkpoint and replays WAL
//! batches with `seq >= watermark`; the pair is exact because the capture
//! runs under the ingest freeze gate (see `cots-serve`).
//!
//! ## File format
//!
//! ```text
//! [magic "COTSCKP1": 8 bytes][one CRC record: JSON-encoded Checkpoint]
//! ```
//!
//! Files are named `ckpt-{watermark:016x}.ckpt` and committed by writing
//! to a temporary name, `fsync`ing the file, atomically renaming into
//! place, and `fsync`ing the directory. A reader therefore never observes
//! a partially written checkpoint under a committed name; anything that
//! slips through anyway (bit rot, manual tampering) is caught by the CRC
//! and by [`Checkpoint::validate`], and recovery falls back to the next
//! older file.
//!
//! AUDIT: total — the load path decodes arbitrary disk bytes; enforced by
//! `cargo xtask audit` (lint-totality).

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use cots_core::json::{FromJson, Json, JsonError, JsonResult, ToJson};
use cots_core::{CotsError, CounterEntry, Result, Snapshot};

use crate::codec::{decode_record, encode_record};

/// Magic prefix of every checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"COTSCKP1";

/// File extension of committed checkpoints.
pub const CKPT_EXT: &str = "ckpt";

/// A decoded checkpoint: one consistent summary of the service plus the
/// WAL position it corresponds to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// First WAL batch sequence number *not* reflected in `entries`.
    /// Recovery replays `seq >= watermark`.
    pub watermark: u64,
    /// Snapshot-publisher epoch at capture time; the restarted publisher
    /// resumes from here so client-visible epochs stay monotone.
    pub epoch: u64,
    /// Summary capacity the entries were produced under.
    pub capacity: usize,
    /// Total stream mass the summary accounts for.
    pub total: u64,
    /// Summary entries, sorted by descending count.
    pub entries: Vec<CounterEntry<u64>>,
}

impl Checkpoint {
    /// Build a checkpoint from a captured snapshot.
    pub fn from_snapshot(watermark: u64, epoch: u64, capacity: usize, snap: &Snapshot<u64>) -> Self {
        Self {
            watermark,
            epoch,
            capacity,
            total: snap.total(),
            entries: snap.entries().to_vec(),
        }
    }

    /// View the checkpoint's summary as a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot<u64> {
        Snapshot::new(self.entries.clone(), self.total)
    }

    /// Semantic validation beyond the CRC: a CRC-valid file whose contents
    /// violate the Space-Saving envelope must be rejected, otherwise a
    /// recovered service would advertise bounds it cannot honor.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.capacity == 0 {
            return Err("capacity is zero".into());
        }
        if self.entries.len() > self.capacity {
            return Err(format!(
                "{} entries exceed capacity {}",
                self.entries.len(),
                self.capacity
            ));
        }
        let mut guaranteed: u64 = 0;
        for e in &self.entries {
            if e.error > e.count {
                return Err(format!(
                    "entry {} has error {} > count {}",
                    e.item, e.error, e.count
                ));
            }
            guaranteed = guaranteed
                .checked_add(e.count - e.error)
                .ok_or_else(|| "guaranteed mass overflows u64".to_string())?;
        }
        if guaranteed > self.total {
            return Err(format!(
                "guaranteed mass {} exceeds recorded total {}",
                guaranteed, self.total
            ));
        }
        Ok(())
    }

    /// The committed file name for this checkpoint.
    pub fn file_name(&self) -> String {
        format!("ckpt-{:016x}.{CKPT_EXT}", self.watermark)
    }
}

impl ToJson for Checkpoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("watermark", self.watermark.to_json()),
            ("epoch", self.epoch.to_json()),
            ("capacity", self.capacity.to_json()),
            ("total", self.total.to_json()),
            ("entries", self.entries.to_json()),
        ])
    }
}

impl FromJson for Checkpoint {
    fn from_json(v: &Json) -> JsonResult<Self> {
        let ckpt = Self {
            watermark: u64::from_json(v.field("watermark")?)?,
            epoch: u64::from_json(v.field("epoch")?)?,
            capacity: usize::from_json(v.field("capacity")?)?,
            total: u64::from_json(v.field("total")?)?,
            entries: Vec::from_json(v.field("entries")?)?,
        };
        ckpt.validate().map_err(|e| JsonError(format!("invalid checkpoint: {e}")))?;
        Ok(ckpt)
    }
}

/// Serialize and commit `ckpt` into `dir`, atomically.
///
/// Returns the committed path and the file size in bytes.
pub fn write_checkpoint(dir: &Path, ckpt: &Checkpoint) -> Result<(PathBuf, u64)> {
    let mut buf = Vec::with_capacity(64 + ckpt.entries.len() * 48);
    buf.extend_from_slice(CKPT_MAGIC);
    let payload = cots_core::json::to_string(ckpt);
    encode_record(payload.as_bytes(), &mut buf);

    let final_path = dir.join(ckpt.file_name());
    let tmp_path = dir.join(format!("{}.tmp", ckpt.file_name()));
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok((final_path, buf.len() as u64))
}

/// Load and fully validate the checkpoint at `path`.
///
/// Total: any file content yields `Ok` or a [`CotsError::Report`], never a
/// panic.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.get(..CKPT_MAGIC.len()) != Some(CKPT_MAGIC.as_slice()) {
        return Err(CotsError::Report(format!(
            "{}: not a checkpoint file (bad magic)",
            path.display()
        )));
    }
    let (payload, consumed) = decode_record(bytes.get(CKPT_MAGIC.len()..).unwrap_or(&[]))
        .map_err(|e| CotsError::Report(format!("{}: {e}", path.display())))?;
    if CKPT_MAGIC.len() + consumed != bytes.len() {
        return Err(CotsError::Report(format!(
            "{}: trailing garbage after checkpoint record",
            path.display()
        )));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| CotsError::Report(format!("{}: payload not UTF-8: {e}", path.display())))?;
    // FromJson runs `validate()`, so a CRC-valid but semantically broken
    // checkpoint is rejected here.
    cots_core::json::from_str(text)
        .map_err(|e| CotsError::Report(format!("{}: {e}", path.display())))
}

/// List committed checkpoint files in `dir`, newest first (by the
/// watermark encoded in the file name).
pub fn find_checkpoints(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(watermark) = parse_checkpoint_name(&path) {
            found.push((watermark, path));
        }
    }
    found.sort_by_key(|&(watermark, _)| std::cmp::Reverse(watermark));
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

/// Delete all but the newest `keep` committed checkpoints. Keeping more
/// than one lets recovery fall back when the newest file is damaged.
/// Removal errors are ignored — pruning is an optimization. Returns the
/// number of files removed.
pub fn prune_checkpoints(dir: &Path, keep: usize) -> Result<u64> {
    let found = find_checkpoints(dir)?;
    let mut removed = 0;
    for path in found.iter().skip(keep.max(1)) {
        if fs::remove_file(path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Parse `ckpt-{watermark:016x}.ckpt`; `None` for anything else
/// (including `.tmp` leftovers from a crashed commit).
pub fn parse_checkpoint_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_prefix("ckpt-")?.strip_suffix(&format!(".{CKPT_EXT}"))?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

/// `fsync` a directory so a just-committed rename survives power loss.
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    // Opening a directory read-only and calling sync_all is the portable
    // std spelling of fsync(dirfd); on platforms where directories cannot
    // be synced this degrades to a no-op error we swallow.
    match File::open(dir) {
        Ok(d) => d.sync_all().or(Ok(())),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "cots-persist-ckpt-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            watermark: 42,
            epoch: 7,
            capacity: 4,
            total: 100,
            entries: vec![
                CounterEntry::new(1, 50, 0),
                CounterEntry::new(2, 30, 10),
                CounterEntry::new(3, 20, 20),
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let c = sample();
        let back: Checkpoint = cots_core::json::from_str(&cots_core::json::to_string(&c)).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn write_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let c = sample();
        let (path, bytes) = write_checkpoint(&dir, &c).unwrap();
        assert!(path.ends_with("ckpt-000000000000002a.ckpt"));
        assert_eq!(bytes, fs::metadata(&path).unwrap().len());
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(c, back);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn find_orders_newest_first_and_skips_tmp() {
        let dir = temp_dir("find");
        for wm in [3u64, 1, 2] {
            let mut c = sample();
            c.watermark = wm;
            write_checkpoint(&dir, &c).unwrap();
        }
        fs::write(dir.join("ckpt-00000000000000ff.ckpt.tmp"), b"junk").unwrap();
        fs::write(dir.join("wal-0000000000000000.wal"), b"junk").unwrap();
        let found = find_checkpoints(&dir).unwrap();
        let wms: Vec<u64> = found.iter().map(|p| parse_checkpoint_name(p).unwrap()).collect();
        assert_eq!(wms, vec![3, 2, 1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_error_not_panic() {
        let dir = temp_dir("corrupt");
        let (path, _) = write_checkpoint(&dir, &sample()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(load_checkpoint(&path).is_err());
        // Truncations at every length are also errors, never panics.
        let full = {
            let (p, _) = write_checkpoint(&dir, &sample()).unwrap();
            fs::read(p).unwrap()
        };
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(load_checkpoint(&path).is_err(), "cut at {cut} decoded");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn semantically_invalid_checkpoint_is_rejected() {
        // error > count violates the envelope even if the CRC is intact.
        // CounterEntry::new asserts, so the hostile file is crafted as raw
        // JSON — exactly what an attacker or bit-rot-past-the-CRC would
        // present to the loader.
        let payload = r#"{"watermark": 42, "epoch": 7, "capacity": 4, "total": 100,
            "entries": [{"item": 9, "count": 5, "error": 6}]}"#;
        let dir = temp_dir("semantic");
        let mut buf = Vec::new();
        buf.extend_from_slice(CKPT_MAGIC);
        encode_record(payload.as_bytes(), &mut buf);
        let path = dir.join("ckpt-000000000000002a.ckpt");
        fs::write(&path, &buf).unwrap();
        assert!(load_checkpoint(&path).is_err());

        // Claiming less total mass than the guaranteed counts also fails.
        let mut c2 = sample();
        c2.total = 10;
        assert!(c2.validate().is_err());
        // As does more entries than capacity.
        let mut c3 = sample();
        c3.capacity = 2;
        assert!(c3.validate().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
