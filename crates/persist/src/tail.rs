//! Incremental WAL tailing and replication ack watermarks.
//!
//! [`WalTailer`] is the read side of the replication shipper: it follows
//! the segmented log *while a writer is still appending*, returning each
//! committed batch exactly once, in sequence order. Unlike
//! [`scan_wal`](crate::wal::scan_wal) (which reads a quiescent directory
//! once, at recovery), the tailer keeps a cursor per segment and treats
//! an incomplete frame at the end of the newest segment as "not written
//! yet, retry later" rather than as a torn tail.
//!
//! The same rules as recovery apply to damage: a bad frame in a segment
//! that is no longer the newest ends that segment's contribution (the
//! framing beyond it is untrusted) and the remaining bytes are counted
//! as dropped — shipping then under-ships exactly the mass recovery
//! would have dropped, never something else.
//!
//! [`load_ack`] / [`store_ack`] persist the standby's acknowledged
//! sequence number on the primary, CRC-framed. The primary uses it as a
//! *prune floor*: segments holding batches the standby has not yet
//! acknowledged survive checkpoint pruning, so a slow or briefly
//! disconnected standby can always catch up from the log instead of
//! needing a full snapshot resync.
//!
//! AUDIT: total — the tail path decodes arbitrary disk bytes while they
//! are being written; enforced by `cargo xtask audit` (lint-totality).

use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use cots_core::Result;

use crate::codec::{decode_record, encode_record, read_u64_le, RecordError};
use crate::wal::{parse_segment_name, WalBatch, WAL_MAGIC};

/// File name of the persisted replication ack watermark.
pub const ACK_FILE: &str = "repl-ack";

/// File name of the persisted replication lineage (promotion
/// generation) — see [`store_lineage`].
pub const LINEAGE_FILE: &str = "repl-lineage";

/// Cumulative accounting of everything a tailer has read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailStats {
    /// Valid records decoded (including ones below the start sequence).
    pub records: u64,
    /// Keys inside batches actually returned to the caller.
    pub keys: u64,
    /// Frames abandoned to framing damage or malformed payloads.
    pub torn_frames: u64,
    /// Bytes those abandoned regions spanned.
    pub dropped_bytes: u64,
    /// Segments fully consumed (read to their final frame).
    pub segments_done: u64,
}

/// Per-segment read cursor.
#[derive(Debug)]
struct SegCursor {
    first_seq: u64,
    path: PathBuf,
    /// Next byte offset to decode from.
    offset: u64,
    /// No more frames will ever be taken from this segment.
    done: bool,
}

/// Follows a live WAL directory, yielding each committed batch once.
///
/// Batches are returned in strictly increasing sequence order starting
/// at `from_seq`; duplicates and regressions (which a restarted writer
/// can produce) are skipped exactly as in recovery.
#[derive(Debug)]
pub struct WalTailer {
    dir: PathBuf,
    from_seq: u64,
    last_seq: Option<u64>,
    segments: Vec<SegCursor>,
    /// Cumulative read accounting.
    pub stats: TailStats,
}

impl WalTailer {
    /// Tail `dir`, returning batches with `seq >= from_seq`.
    pub fn new(dir: &Path, from_seq: u64) -> Self {
        Self {
            dir: dir.to_path_buf(),
            from_seq,
            last_seq: None,
            segments: Vec::new(),
            stats: TailStats::default(),
        }
    }

    /// The highest sequence number handed out so far, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Re-list the directory, keeping existing cursors and appending
    /// newly appeared segments in scan order.
    fn refresh(&mut self) -> Result<()> {
        let mut found: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if let Some(first) = parse_segment_name(&path) {
                found.push((first, path));
            }
        }
        found.sort();
        // Cursors for files that disappeared (pruned) are dropped; any
        // unread frames they held are gone for recovery too, so the
        // shipper and a restart agree on what was lost.
        self.segments
            .retain(|c| found.iter().any(|(_, p)| *p == c.path));
        for (first_seq, path) in found {
            if !self.segments.iter().any(|c| c.path == path) {
                self.segments.push(SegCursor {
                    first_seq,
                    path,
                    offset: 0,
                    done: false,
                });
            }
        }
        self.segments
            .sort_by(|a, b| (a.first_seq, &a.path).cmp(&(b.first_seq, &b.path)));
        Ok(())
    }

    /// Read every complete, committed batch currently available, up to
    /// roughly `max_keys` keys (at least one batch is returned when any
    /// is available). An empty vec means "caught up, poll again later".
    pub fn poll(&mut self, max_keys: usize) -> Result<Vec<WalBatch>> {
        self.refresh()?;
        let mut out: Vec<WalBatch> = Vec::new();
        let mut out_keys = 0usize;
        let mut parsed: Vec<WalBatch> = Vec::new();
        let n = self.segments.len();
        for i in 0..n {
            if out_keys >= max_keys && !out.is_empty() {
                break;
            }
            // PANIC-OK: `i < n == self.segments.len()` and nothing in the
            // loop changes the vec's length.
            if self.segments[i].done {
                continue;
            }
            let is_last = i + 1 == n;
            let (path, offset) = {
                // PANIC-OK: same in-bounds `i` as above.
                let c = &self.segments[i];
                (c.path.clone(), c.offset)
            };
            let bytes = match read_from(&path, offset) {
                Ok(b) => b,
                // The file can vanish between listing and reading
                // (pruned); treat as done, a refresh will drop it.
                Err(_) => {
                    // PANIC-OK: same in-bounds `i` as above.
                    self.segments[i].done = true;
                    continue;
                }
            };
            let mut off = 0usize;
            // The magic prefix is consumed once per segment.
            if offset == 0 {
                if bytes.len() < WAL_MAGIC.len() {
                    if !is_last {
                        // A newer segment exists: this stub will never
                        // grow into a valid segment.
                        self.finish_segment(i, bytes.len() as u64);
                    }
                    continue;
                }
                // PANIC-OK: the branch above returned unless
                // `bytes.len() >= WAL_MAGIC.len()`.
                if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC.as_slice() {
                    self.finish_segment(i, bytes.len() as u64);
                    continue;
                }
                off = WAL_MAGIC.len();
            }
            while off < bytes.len() {
                if out_keys >= max_keys && !out.is_empty() {
                    break;
                }
                match decode_record(bytes.get(off..).unwrap_or(&[])) {
                    Ok((payload, consumed)) => {
                        off += consumed;
                        // PANIC-OK: same in-bounds `i` as above.
                        self.segments[i].offset = offset + off as u64;
                        parsed.clear();
                        if crate::wal::parse_record_payload(payload, &mut parsed) {
                            for batch in parsed.drain(..) {
                                self.stats.records += 1;
                                let fresh = batch.seq >= self.from_seq
                                    && self.last_seq.is_none_or(|l| batch.seq > l);
                                if fresh {
                                    self.last_seq = Some(batch.seq);
                                    self.stats.keys += batch.keys.len() as u64;
                                    out_keys += batch.keys.len();
                                    out.push(batch);
                                }
                            }
                        } else {
                            // CRC-valid frame, malformed payload:
                            // framing is trustworthy, skip just it.
                            self.stats.torn_frames += 1;
                            self.stats.dropped_bytes += consumed as u64;
                        }
                    }
                    Err(RecordError::Incomplete) if is_last => {
                        // Mid-write tail of the active segment: the
                        // writer will finish it; re-decode next poll.
                        break;
                    }
                    Err(_) => {
                        // Permanent damage (or a rotation left a torn
                        // tail behind): recovery would stop here too.
                        self.finish_segment(i, (bytes.len() - off) as u64);
                        break;
                    }
                }
            }
            // A sealed (non-newest) segment read cleanly to EOF will
            // never grow again: retire its cursor.
            // PANIC-OK: same in-bounds `i` as above.
            if !is_last
                && !self.segments[i].done
                && self.segments[i].offset == offset + bytes.len() as u64
            {
                self.segments[i].done = true;
                self.stats.segments_done += 1;
            }
        }
        Ok(out)
    }

    /// Mark segment `i` consumed, accounting `dropped` abandoned bytes.
    fn finish_segment(&mut self, i: usize, dropped: u64) {
        if dropped > 0 {
            self.stats.torn_frames += 1;
            self.stats.dropped_bytes += dropped;
        }
        // PANIC-OK: callers pass an `i` bounded by the poll loop.
        self.segments[i].done = true;
        self.stats.segments_done += 1;
    }
}

/// Read `path` from byte `offset` to EOF.
fn read_from(path: &Path, offset: u64) -> std::io::Result<Vec<u8>> {
    let mut f = File::open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    Ok(buf)
}

/// The first sequence number still available in the log under `dir`:
/// the smallest segment start. `None` when no segments exist.
pub fn oldest_segment_seq(dir: &Path) -> Result<Option<u64>> {
    let mut oldest: Option<u64> = None;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(first) = parse_segment_name(&path) {
            oldest = Some(oldest.map_or(first, |o| o.min(first)));
        }
    }
    Ok(oldest)
}

/// Durably record the standby's acknowledged sequence number.
///
/// Written via temp file + atomic rename, CRC-framed; [`load_ack`]
/// treats any damage as "never acked" (sequence 0), which only makes
/// the primary retain more log than strictly needed — never less.
pub fn store_ack(dir: &Path, ack_seq: u64) -> Result<()> {
    store_watermark_file(dir, ACK_FILE, ack_seq)
}

/// Load the persisted ack watermark; 0 when absent or damaged (total:
/// arbitrary file contents never panic).
pub fn load_ack(dir: &Path) -> u64 {
    load_watermark_file(dir, ACK_FILE)
}

/// Whether a [`store_ack`] watermark file exists under `dir` — i.e.
/// whether a replication peer has ever acknowledged anything here.
/// Damage does not matter for this question (a damaged file still
/// proves a peer existed), only absence does.
pub fn has_ack(dir: &Path) -> bool {
    dir.join(ACK_FILE).exists()
}

/// Durably record this instance's replication lineage: the promotion
/// generation of the history it follows. A pair starts at lineage 0;
/// every standby → primary promotion increments it. The lineage is
/// carried on every `REPL_*` stream operation so a standby can refuse
/// a primary whose history diverged from its own (a dead ex-primary's
/// un-acked tail) instead of silently acknowledging unseen data.
///
/// Same temp-file + atomic-rename + CRC discipline as [`store_ack`].
pub fn store_lineage(dir: &Path, lineage: u64) -> Result<()> {
    store_watermark_file(dir, LINEAGE_FILE, lineage)
}

/// Load the persisted lineage; 0 when absent or damaged (total:
/// arbitrary file contents never panic). Damage degrading to lineage 0
/// is the conservative direction: a zeroed lineage makes this node
/// look *older*, so peers refuse it rather than trusting it.
pub fn load_lineage(dir: &Path) -> u64 {
    load_watermark_file(dir, LINEAGE_FILE)
}

/// Shared writer for the small CRC-framed u64 watermark files.
fn store_watermark_file(dir: &Path, name: &str, value: u64) -> Result<()> {
    let mut framed = Vec::new();
    encode_record(&value.to_le_bytes(), &mut framed);
    let tmp = dir.join(format!("{name}.tmp"));
    let path = dir.join(name);
    let mut f = File::create(&tmp)?;
    f.write_all(&framed)?;
    f.sync_data()?;
    fs::rename(&tmp, &path)?;
    Ok(())
}

/// Shared reader for the small CRC-framed u64 watermark files.
fn load_watermark_file(dir: &Path, name: &str) -> u64 {
    let Ok(bytes) = fs::read(dir.join(name)) else {
        return 0;
    };
    match decode_record(&bytes) {
        Ok((payload, _)) => read_u64_le(payload, 0).unwrap_or(0),
        Err(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{scan_wal, FsyncPolicy, WalWriter, DEFAULT_SEGMENT_BYTES};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "cots-persist-tail-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tailer_follows_a_live_writer() {
        let dir = temp_dir("live");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        let mut t = WalTailer::new(&dir, 0);
        assert!(t.poll(usize::MAX).unwrap().is_empty(), "nothing committed yet");

        w.append(0, &[1, 2]);
        w.append(1, &[3]);
        w.commit().unwrap();
        let got = t.poll(usize::MAX).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], WalBatch { seq: 0, keys: vec![1, 2] });
        assert_eq!(t.last_seq(), Some(1));

        // Nothing new: caught up.
        assert!(t.poll(usize::MAX).unwrap().is_empty());

        w.append(2, &[4, 5, 6]);
        w.commit().unwrap();
        let got = t.poll(usize::MAX).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 2);
        assert_eq!(t.stats.keys, 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tailer_crosses_segment_rotation() {
        let dir = temp_dir("rotate");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, 16).unwrap();
        let mut t = WalTailer::new(&dir, 0);
        let mut seen = Vec::new();
        for seq in 0..6u64 {
            w.append(seq, &[seq * 10, seq * 10 + 1]);
            w.commit().unwrap();
            for b in t.poll(usize::MAX).unwrap() {
                seen.push(b.seq);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert!(t.stats.segments_done >= 1, "old segments consumed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tailer_matches_scan_on_quiescent_log() {
        let dir = temp_dir("parity");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, 64).unwrap();
        for seq in 0..20u64 {
            w.append(seq, &[seq, seq + 1, seq + 2]);
            if seq % 3 == 0 {
                w.commit().unwrap();
            }
        }
        w.commit().unwrap();
        drop(w);
        let scan = scan_wal(&dir, 4).unwrap();
        let mut t = WalTailer::new(&dir, 4);
        let mut tailed = Vec::new();
        loop {
            let got = t.poll(7).unwrap(); // tiny budget: many polls
            if got.is_empty() {
                break;
            }
            tailed.extend(got);
        }
        assert_eq!(tailed, scan.batches);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_of_active_segment_waits_then_resumes() {
        let dir = temp_dir("midwrite");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(0, &[1]);
        w.commit().unwrap();
        let path = w.segment_path().to_path_buf();
        let mut t = WalTailer::new(&dir, 0);
        assert_eq!(t.poll(usize::MAX).unwrap().len(), 1);

        // Simulate a half-written record: append a torn frame by hand.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&9u64.to_le_bytes());
        let mut framed = Vec::new();
        encode_record(&payload, &mut framed);
        let full = fs::read(&path).unwrap();
        let torn = [&full[..], &framed[..framed.len() - 4]].concat();
        fs::write(&path, &torn).unwrap();
        assert!(t.poll(usize::MAX).unwrap().is_empty(), "waits for the rest");
        assert_eq!(t.stats.torn_frames, 0, "not damage yet");

        // The writer finishes the record: the tailer picks it up.
        fs::write(&path, [&full[..], &framed[..]].concat()).unwrap();
        let got = t.poll(usize::MAX).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], WalBatch { seq: 1, keys: vec![9] });
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_in_sealed_segment_is_skipped_like_recovery() {
        let dir = temp_dir("damage");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, 16).unwrap();
        for seq in 0..6u64 {
            w.append(seq, &[seq]);
            w.commit().unwrap();
        }
        drop(w);
        let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| parse_segment_name(p).is_some())
            .collect();
        segs.sort();
        assert!(segs.len() >= 3);
        // Flip a payload byte mid-segment: CRC damage in a sealed file.
        let mut bytes = fs::read(&segs[1]).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0xFF;
        fs::write(&segs[1], &bytes).unwrap();

        let mut t = WalTailer::new(&dir, 0);
        let mut tailed = Vec::new();
        loop {
            let got = t.poll(usize::MAX).unwrap();
            if got.is_empty() {
                break;
            }
            tailed.extend(got.into_iter().map(|b| b.seq));
        }
        let scan = scan_wal(&dir, 0).unwrap();
        let scanned: Vec<u64> = scan.batches.iter().map(|b| b.seq).collect();
        assert_eq!(tailed, scanned, "tailer under-ships exactly what recovery drops");
        assert!(t.stats.torn_frames >= 1);
        assert!(t.stats.dropped_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ack_watermark_round_trips_and_tolerates_damage() {
        let dir = temp_dir("ack");
        assert_eq!(load_ack(&dir), 0, "absent file reads as never-acked");
        store_ack(&dir, 42).unwrap();
        assert_eq!(load_ack(&dir), 42);
        store_ack(&dir, 43).unwrap();
        assert_eq!(load_ack(&dir), 43, "overwrite advances");
        let path = dir.join(ACK_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(load_ack(&dir), 0, "damage degrades to never-acked");
        fs::write(&path, b"").unwrap();
        assert_eq!(load_ack(&dir), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lineage_round_trips_and_tolerates_damage() {
        let dir = temp_dir("lineage");
        assert_eq!(load_lineage(&dir), 0, "absent file reads as lineage 0");
        assert!(!has_ack(&dir));
        store_lineage(&dir, 3).unwrap();
        assert_eq!(load_lineage(&dir), 3);
        assert!(!has_ack(&dir), "lineage file is not the ack file");
        store_ack(&dir, 7).unwrap();
        assert!(has_ack(&dir));
        assert_eq!(load_ack(&dir), 7, "the two files never alias");
        let path = dir.join(LINEAGE_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(load_lineage(&dir), 0, "damage degrades to lineage 0");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oldest_segment_seq_tracks_pruning() {
        let dir = temp_dir("oldest");
        assert_eq!(oldest_segment_seq(&dir).unwrap(), None);
        let mut w = WalWriter::open(&dir, 3, FsyncPolicy::Off, 16).unwrap();
        for seq in 3..9u64 {
            w.append(seq, &[seq, seq]);
            w.commit().unwrap();
        }
        drop(w);
        assert_eq!(oldest_segment_seq(&dir).unwrap(), Some(3));
        crate::wal::prune_wal(&dir, 100).unwrap();
        let oldest = oldest_segment_seq(&dir).unwrap().unwrap();
        assert!(oldest > 3, "pruning advances the oldest available seq");
        fs::remove_dir_all(&dir).unwrap();
    }
}
