//! Crash-recovery pipeline: newest valid checkpoint + WAL tail.
//!
//! [`recover`] turns a data directory into (a) an optional **base
//! summary** (the newest checkpoint that passed both CRC and semantic
//! validation), (b) the ordered WAL batches with `seq >= watermark` to
//! replay through the engine, and (c) a [`RecoveryReport`] quantifying
//! what was recovered and what was lost.
//!
//! ## Soundness
//!
//! The serving stack keeps the checkpoint as an immutable base snapshot
//! and replays the WAL tail into a *fresh* engine; every published answer
//! merges base + live through the Space-Saving merge algebra
//! (`cots_core::merge`), so the `count ≥ true ≥ count − error` envelope
//! is preserved by construction. Loss is one-sided: a torn or corrupt
//! frame can only *remove* mass from the recovered state (under-count),
//! never add it, and the removed mass is surfaced as `torn_frames` /
//! `dropped_bytes` so operators and tests can bound the gap versus the
//! true stream.
//!
//! AUDIT: total — recovery must survive arbitrary directory contents;
//! enforced by `cargo xtask audit` (lint-totality).

use std::path::Path;
use std::time::Instant;

use cots_core::{RecoveryReport, Result};

use crate::checkpoint::{find_checkpoints, load_checkpoint, Checkpoint};
use crate::wal::{scan_wal, WalBatch};

/// The outcome of scanning a data directory.
#[derive(Debug)]
pub struct Recovery {
    /// Newest checkpoint that decoded and validated, if any.
    pub base: Option<Checkpoint>,
    /// WAL batches not covered by `base`, in sequence order.
    pub batches: Vec<WalBatch>,
    /// First unused sequence number: the restarted WAL writer starts here.
    pub next_seq: u64,
    /// Accounting for the stats endpoint and the recovery tests.
    pub report: RecoveryReport,
}

/// Recover the durable state under `dir`, creating the directory if this
/// is a first boot.
///
/// Checkpoints are tried newest-first; every file that fails CRC or
/// semantic validation is counted in `corrupt_checkpoints` and the next
/// older one is tried. A directory with no usable checkpoint recovers
/// from the WAL alone (from sequence 0). Never panics on any directory
/// contents; I/O errors (unreadable directory) are returned as errors.
pub fn recover(dir: &Path) -> Result<Recovery> {
    let start = Instant::now();
    std::fs::create_dir_all(dir)?;

    let mut base: Option<Checkpoint> = None;
    let mut corrupt_checkpoints = 0u64;
    for path in find_checkpoints(dir)? {
        match load_checkpoint(&path) {
            Ok(ckpt) => {
                // With the `invariants` feature the recovered summary also
                // has to pass the full structural audit (sort order, error
                // bounds, guaranteed mass); a failure demotes the file to
                // corrupt and recovery falls back to the next older one.
                #[cfg(feature = "invariants")]
                {
                    use cots_core::CheckInvariants;
                    if !ckpt.snapshot().violations().is_empty() {
                        corrupt_checkpoints += 1;
                        continue;
                    }
                }
                base = Some(ckpt);
                break;
            }
            Err(_) => corrupt_checkpoints += 1,
        }
    }

    let watermark = base.as_ref().map_or(0, |c| c.watermark);
    let scan = scan_wal(dir, watermark)?;

    let replayed_batches = scan.batches.len() as u64;
    let replayed_items: u64 = scan.batches.iter().map(|b| b.keys.len() as u64).sum();
    let base_items = base.as_ref().map_or(0, |c| c.total);
    let next_seq = scan
        .max_seq
        .map_or(watermark, |m| m.saturating_add(1).max(watermark));

    let report = RecoveryReport {
        checkpoint_watermark: base.as_ref().map(|c| c.watermark),
        base_items,
        replayed_batches,
        replayed_items,
        recovered_items: base_items + replayed_items,
        segments_scanned: scan.segments,
        bytes_scanned: scan.bytes_scanned,
        torn_frames: scan.torn_frames,
        dropped_bytes: scan.dropped_bytes,
        corrupt_checkpoints,
        elapsed_secs: start.elapsed().as_secs_f64(),
    };

    Ok(Recovery {
        base,
        batches: scan.batches,
        next_seq,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{prune_checkpoints, write_checkpoint};
    use crate::wal::{FsyncPolicy, WalWriter, DEFAULT_SEGMENT_BYTES};
    use cots_core::CounterEntry;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "cots-persist-rec-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        // recover() itself creates the directory.
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ckpt(watermark: u64, total: u64) -> Checkpoint {
        Checkpoint {
            watermark,
            epoch: 1,
            capacity: 8,
            total,
            entries: vec![CounterEntry::new(1, total, 0)],
        }
    }

    #[test]
    fn empty_directory_is_a_clean_boot() {
        let dir = temp_dir("empty");
        let rec = recover(&dir).unwrap();
        assert!(rec.base.is_none());
        assert!(rec.batches.is_empty());
        assert_eq!(rec.next_seq, 0);
        assert_eq!(rec.report, RecoveryReport {
            elapsed_secs: rec.report.elapsed_secs,
            ..RecoveryReport::default()
        });
        assert!(dir.is_dir(), "recover creates the data dir");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_plus_tail() {
        let dir = temp_dir("tail");
        fs::create_dir_all(&dir).unwrap();
        write_checkpoint(&dir, &ckpt(3, 30)).unwrap();
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        for seq in 0..5u64 {
            w.append(seq, &[seq, seq]);
        }
        w.commit().unwrap();
        drop(w);

        let rec = recover(&dir).unwrap();
        let base = rec.base.as_ref().unwrap();
        assert_eq!(base.watermark, 3);
        // Only seq 3 and 4 are past the watermark.
        let seqs: Vec<u64> = rec.batches.iter().map(|b| b.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(rec.next_seq, 5);
        assert_eq!(rec.report.checkpoint_watermark, Some(3));
        assert_eq!(rec.report.base_items, 30);
        assert_eq!(rec.report.replayed_batches, 2);
        assert_eq!(rec.report.replayed_items, 4);
        assert_eq!(rec.report.recovered_items, 34);
        assert_eq!(rec.report.corrupt_checkpoints, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older() {
        let dir = temp_dir("fallback");
        fs::create_dir_all(&dir).unwrap();
        write_checkpoint(&dir, &ckpt(2, 20)).unwrap();
        let (newest, _) = write_checkpoint(&dir, &ckpt(7, 70)).unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.base.as_ref().unwrap().watermark, 2);
        assert_eq!(rec.report.corrupt_checkpoints, 1);
        assert_eq!(rec.next_seq, 2, "next_seq falls back with the checkpoint");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_checkpoints_corrupt_recovers_from_wal_alone() {
        let dir = temp_dir("wal-only");
        fs::create_dir_all(&dir).unwrap();
        let (p, _) = write_checkpoint(&dir, &ckpt(4, 40)).unwrap();
        fs::write(&p, b"not a checkpoint at all").unwrap();
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(0, &[9]);
        w.append(1, &[9, 9]);
        w.commit().unwrap();
        drop(w);

        let rec = recover(&dir).unwrap();
        assert!(rec.base.is_none());
        assert_eq!(rec.report.corrupt_checkpoints, 1);
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.report.recovered_items, 3);
        assert_eq!(rec.next_seq, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_prune_recover_is_stable() {
        let dir = temp_dir("prune");
        fs::create_dir_all(&dir).unwrap();
        for wm in 1..=4u64 {
            write_checkpoint(&dir, &ckpt(wm, wm * 10)).unwrap();
        }
        assert_eq!(prune_checkpoints(&dir, 2).unwrap(), 2);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.base.as_ref().unwrap().watermark, 4);
        // Newest two survive: damaging the newest still leaves a fallback.
        assert_eq!(find_checkpoints(&dir).unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
