//! # cots-persist
//!
//! Durable checkpoints, a batch write-ahead log, and crash recovery for
//! the CoTS serving stack — std-only, no external dependencies.
//!
//! The in-memory CoTS engine loses every counter on a crash. This crate
//! makes a `cots-serve` deployment restartable with *quantified* loss:
//!
//! * [`codec`] — length-prefixed, CRC-32-framed records. Decoding is
//!   total: any byte sequence is a record or a typed error, never a
//!   panic.
//! * [`checkpoint`] — epoch-consistent snapshots of the merged service
//!   summary, committed by atomic rename; semantic validation rejects
//!   CRC-valid files that violate the Space-Saving envelope.
//! * [`wal`] — segmented batch log, group-committed per ring drain with a
//!   configurable [`FsyncPolicy`]; the scanner recovers the valid prefix
//!   of every segment and accounts the rest as dropped mass.
//! * [`recover`] — loads the newest valid checkpoint (falling back on
//!   corruption), collects the WAL tail past its watermark, and emits a
//!   [`RecoveryReport`](cots_core::RecoveryReport).
//!
//! Soundness rests on the merge algebra already shipped in
//! `cots_core::merge`: the checkpoint acts as an immutable base snapshot,
//! the WAL tail replays into a fresh engine, and every published answer
//! merges the two — so the `count ≥ true ≥ count − error` guarantee
//! survives the crash, and any unrecoverable tail only *under*-counts,
//! by an amount the report states.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod recover;
pub mod tail;
pub mod wal;

pub use checkpoint::{
    find_checkpoints, load_checkpoint, parse_checkpoint_name, prune_checkpoints, write_checkpoint,
    Checkpoint,
};
pub use codec::{decode_record, encode_record, RecordError, MAX_RECORD};
pub use crc::crc32;
pub use recover::{recover, Recovery};
pub use tail::{
    has_ack, load_ack, load_lineage, oldest_segment_seq, store_ack, store_lineage, TailStats,
    WalTailer, ACK_FILE, LINEAGE_FILE,
};
pub use wal::{
    parse_segment_name, prune_wal, scan_wal, CommitStats, FsyncPolicy, WalBatch, WalScan,
    WalWriter, DEFAULT_SEGMENT_BYTES, RUN_MAGIC, WAL_MAGIC,
};
