//! Segmented batch write-ahead log.
//!
//! Every ingested batch is assigned a sequence number and appended as one
//! CRC record *before* it is applied to the in-memory engine. Records are
//! group-committed: a shard worker appends the batches of one ring drain
//! and then calls [`WalWriter::commit`] once, so the syscall (and optional
//! `fsync`) cost is paid per drain, not per batch.
//!
//! ## Segment format
//!
//! ```text
//! [magic "COTSWAL1": 8 bytes][CRC record]*
//! record payload := batch | run
//! batch := [seq: u64 le][nkeys: u32 le][key: u64 le]*nkeys
//! run   := [magic "COTSRUN\xB1": 8 bytes][nbatches: u32 le][batch]*nbatches
//! ```
//!
//! A *run* record ([`WalWriter::append_run`]) packs a whole ring drain
//! of consecutive batches into one CRC frame: one checksum and one
//! length prefix per drain instead of per batch, which is the log-side
//! twin of the BIN1 wire encoding (same per-batch byte layout). Legacy
//! per-batch records and run records coexist freely in one directory —
//! recovery and tailing parse both — so data directories written by
//! older builds replay unchanged. The run magic's little-endian `u64`
//! value has its top bit set (> 2⁶³), which no monotone batch sequence
//! number ever reaches, so the two payload forms cannot be confused.
//!
//! Segments are named `wal-{first_seq:016x}.wal` after the first sequence
//! number they may contain. After a crash the scanner recovers the valid
//! prefix of every segment; a torn or corrupt frame ends that segment's
//! contribution (framing beyond it cannot be trusted) and the remaining
//! bytes are accounted as dropped. Restarted writers always open a *new*
//! segment at the next sequence number — they never append to a
//! possibly-torn file.
//!
//! AUDIT: total — the scan path decodes arbitrary disk bytes; enforced by
//! `cargo xtask audit` (lint-totality).

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

use cots_core::{CotsError, Result};

use crate::codec::{decode_record, encode_record, read_u32_le, read_u64_le, RecordError};

/// Magic prefix of every WAL segment.
pub const WAL_MAGIC: &[u8; 8] = b"COTSWAL1";

/// Magic prefix of a multi-batch *run* record payload. Sits where a
/// legacy record's `seq` field would: its little-endian value exceeds
/// 2⁶³, unreachable for a monotone sequence counter, so legacy and run
/// payloads are unambiguous.
pub const RUN_MAGIC: &[u8; 8] = b"COTSRUN\xB1";

/// File extension of WAL segments.
pub const WAL_EXT: &str = "wal";

/// Default segment rotation threshold (8 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// When the log is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every group commit. Survives power loss at the cost
    /// of one device flush per ring drain.
    Always,
    /// Write to the OS per group commit; `fsync` only at segment rotation
    /// and checkpoints. Survives process death (`kill -9`) — the page
    /// cache outlives the process — but an OS crash can lose the tail.
    #[default]
    Grouped,
    /// Never `fsync`. Still survives process death; fastest.
    Off,
}

impl FromStr for FsyncPolicy {
    type Err = CotsError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "grouped" => Ok(FsyncPolicy::Grouped),
            "off" => Ok(FsyncPolicy::Off),
            other => Err(CotsError::InvalidConfig(format!(
                "unknown fsync policy {other:?} (expected always|grouped|off)"
            ))),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Grouped => "grouped",
            FsyncPolicy::Off => "off",
        })
    }
}

/// One logged batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// Batch sequence number (monotone across the whole log).
    pub seq: u64,
    /// The keys of the batch, in ingest order.
    pub keys: Vec<u64>,
}

/// What one [`WalWriter::commit`] wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Records written by this commit.
    pub records: u64,
    /// Keys across those records.
    pub keys: u64,
    /// Bytes written (framing included).
    pub bytes: u64,
    /// Whether this commit ended in an `fsync`.
    pub synced: bool,
}

/// Appender for the active WAL segment.
///
/// Not internally synchronized: `cots-serve` wraps it in a mutex and
/// performs `append*`+`commit` as one group per ring drain.
pub struct WalWriter {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    file: File,
    segment_path: PathBuf,
    written: u64,
    buf: Vec<u8>,
    pending_records: u64,
    pending_keys: u64,
    pending_first_seq: Option<u64>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("segment", &self.segment_path)
            .field("policy", &self.policy)
            .field("written", &self.written)
            .finish()
    }
}

impl WalWriter {
    /// Open a fresh segment in `dir` whose first record will carry
    /// `next_seq`. Always creates a new file — a restarted writer must
    /// never append to a possibly-torn segment.
    pub fn open(dir: &Path, next_seq: u64, policy: FsyncPolicy, segment_bytes: u64) -> Result<Self> {
        fs::create_dir_all(dir)?;
        let (file, segment_path) = new_segment(dir, next_seq)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            policy,
            segment_bytes: segment_bytes.max(1),
            file,
            segment_path,
            written: WAL_MAGIC.len() as u64,
            buf: Vec::new(),
            pending_records: 0,
            pending_keys: 0,
            pending_first_seq: None,
        })
    }

    /// Stage one batch. Nothing reaches the OS until [`commit`].
    ///
    /// [`commit`]: WalWriter::commit
    pub fn append(&mut self, seq: u64, keys: &[u64]) {
        let mut payload = Vec::with_capacity(12 + keys.len() * 8);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for k in keys {
            payload.extend_from_slice(&k.to_le_bytes());
        }
        encode_record(&payload, &mut self.buf);
        self.pending_records += 1;
        self.pending_keys += keys.len() as u64;
        self.pending_first_seq.get_or_insert(seq);
    }

    /// Stage a whole drain of consecutive batches as one *run* record:
    /// batch `i` carries sequence `first_seq + i`. One CRC frame per
    /// drain instead of one per batch. Nothing reaches the OS until
    /// [`commit`]; an empty slice stages nothing.
    ///
    /// [`commit`]: WalWriter::commit
    pub fn append_run(&mut self, first_seq: u64, batches: &[Vec<u64>]) {
        if batches.is_empty() {
            return;
        }
        let keys: usize = batches.iter().map(|b| b.len()).sum();
        let mut payload = Vec::with_capacity(12 + batches.len() * 12 + keys * 8);
        payload.extend_from_slice(RUN_MAGIC);
        payload.extend_from_slice(&(batches.len() as u32).to_le_bytes());
        for (i, batch) in batches.iter().enumerate() {
            payload.extend_from_slice(&(first_seq + i as u64).to_le_bytes());
            payload.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for k in batch {
                payload.extend_from_slice(&k.to_le_bytes());
            }
        }
        encode_record(&payload, &mut self.buf);
        self.pending_records += batches.len() as u64;
        self.pending_keys += keys as u64;
        self.pending_first_seq.get_or_insert(first_seq);
    }

    /// Group-commit everything staged since the last commit: rotate the
    /// segment if it is over the threshold, write the staged bytes, and
    /// apply the fsync policy.
    pub fn commit(&mut self) -> Result<CommitStats> {
        if self.buf.is_empty() {
            return Ok(CommitStats::default());
        }
        if self.written >= self.segment_bytes {
            // Rotation boundary: seal the old segment (it must be durable
            // before pruning can ever consider it complete) and start a
            // new one named after the first staged sequence number.
            if self.policy != FsyncPolicy::Off {
                self.file.sync_data()?;
            }
            // PANIC-OK: `buf` is non-empty (checked on entry), and every
            // append that fills `buf` also sets `pending_first_seq`; both
            // are cleared together below.
            let first = self.pending_first_seq.expect("buf non-empty");
            let (file, path) = new_segment(&self.dir, first)?;
            self.file = file;
            self.segment_path = path;
            self.written = WAL_MAGIC.len() as u64;
        }
        self.file.write_all(&self.buf)?;
        let synced = self.policy == FsyncPolicy::Always;
        if synced {
            self.file.sync_data()?;
        }
        let stats = CommitStats {
            records: self.pending_records,
            keys: self.pending_keys,
            bytes: self.buf.len() as u64,
            synced,
        };
        self.written += self.buf.len() as u64;
        self.buf.clear();
        self.pending_records = 0;
        self.pending_keys = 0;
        self.pending_first_seq = None;
        Ok(stats)
    }

    /// Force everything committed so far to stable storage, regardless of
    /// policy. Called before a checkpoint commits so the watermark never
    /// runs ahead of the durable log.
    pub fn sync(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            self.commit()?;
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// Bytes written to the active segment so far.
    pub fn segment_len(&self) -> u64 {
        self.written
    }

    /// Path of the active segment.
    pub fn segment_path(&self) -> &Path {
        &self.segment_path
    }
}

fn new_segment(dir: &Path, first_seq: u64) -> Result<(File, PathBuf)> {
    let mut path = dir.join(format!("wal-{first_seq:016x}.{WAL_EXT}"));
    // A restart at the same sequence number (e.g. recovery recovered 0
    // batches twice in a row) must not clobber existing data: bump until
    // free. Suffixedless names are the common case.
    let mut bump = 0u32;
    while path.exists() {
        bump += 1;
        path = dir.join(format!("wal-{first_seq:016x}-{bump}.{WAL_EXT}"));
    }
    let mut file = File::create(&path)?;
    file.write_all(WAL_MAGIC)?;
    Ok((file, path))
}

/// Parse a segment file name back to its first sequence number; `None`
/// for non-WAL files.
pub fn parse_segment_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_prefix("wal-")?.strip_suffix(&format!(".{WAL_EXT}"))?;
    let hex = stem.split('-').next()?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Everything a scan of the log directory recovered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalScan {
    /// Recovered batches with `seq >= from_seq`, in sequence order.
    pub batches: Vec<WalBatch>,
    /// Segments visited.
    pub segments: u64,
    /// Valid records seen (including ones below `from_seq`).
    pub records: u64,
    /// Total bytes read across segments.
    pub bytes_scanned: u64,
    /// Frames that failed to decode (torn tails, bit rot, garbage).
    pub torn_frames: u64,
    /// Bytes abandoned after the first bad frame of each segment.
    pub dropped_bytes: u64,
    /// Highest sequence number observed in any valid record.
    pub max_seq: Option<u64>,
}

/// Scan every WAL segment in `dir` and recover the valid prefix of each.
///
/// Total: arbitrary file contents produce a [`WalScan`], never a panic.
/// Decoding stops at the first bad frame *per segment* (framing beyond it
/// is untrusted) but continues with the next segment — losing a middle
/// segment only under-counts, which the recovery report accounts for as
/// dropped bytes. Batches with `seq < from_seq` are already covered by
/// the checkpoint and are skipped; duplicate or regressing sequence
/// numbers are skipped too so a scan can never double-apply a batch.
pub fn scan_wal(dir: &Path, from_seq: u64) -> Result<WalScan> {
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(first) = parse_segment_name(&path) {
            segments.push((first, path));
        }
    }
    segments.sort();

    let mut scan = WalScan::default();
    let mut last_kept: Option<u64> = None;
    for (_, path) in segments {
        scan.segments += 1;
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        scan.bytes_scanned += bytes.len() as u64;
        if bytes.get(..WAL_MAGIC.len()) != Some(WAL_MAGIC.as_slice()) {
            scan.torn_frames += 1;
            scan.dropped_bytes += bytes.len() as u64;
            continue;
        }
        let mut off = WAL_MAGIC.len();
        let mut parsed: Vec<WalBatch> = Vec::new();
        while off < bytes.len() {
            match decode_record(bytes.get(off..).unwrap_or(&[])) {
                Ok((payload, consumed)) => {
                    off += consumed;
                    parsed.clear();
                    if parse_record_payload(payload, &mut parsed) {
                        for batch in parsed.drain(..) {
                            scan.records += 1;
                            scan.max_seq =
                                Some(scan.max_seq.map_or(batch.seq, |m| m.max(batch.seq)));
                            let fresh = batch.seq >= from_seq
                                && last_kept.is_none_or(|l| batch.seq > l);
                            if fresh {
                                last_kept = Some(batch.seq);
                                scan.batches.push(batch);
                            }
                        }
                    } else {
                        // CRC-valid frame with a malformed payload:
                        // count it as corruption but keep framing —
                        // the CRC says the frame boundary is sound.
                        scan.torn_frames += 1;
                        scan.dropped_bytes += consumed as u64;
                    }
                }
                Err(RecordError::Incomplete)
                | Err(RecordError::TooLarge(_))
                | Err(RecordError::Corrupt { .. }) => {
                    scan.torn_frames += 1;
                    scan.dropped_bytes += (bytes.len() - off) as u64;
                    break;
                }
            }
        }
    }
    Ok(scan)
}

/// Decode one batch at byte offset `off`; returns the batch and the
/// offset just past it. `None` on any layout violation.
fn parse_one_batch(payload: &[u8], off: usize) -> Option<(WalBatch, usize)> {
    let seq = read_u64_le(payload, off)?;
    let nkeys = read_u32_le(payload, off.checked_add(8)?)? as usize;
    let start = off.checked_add(12)?;
    let end = start.checked_add(nkeys.checked_mul(8)?)?;
    let keys: Vec<u64> = payload
        .get(start..end)?
        .chunks_exact(8)
        .filter_map(|c| read_u64_le(c, 0))
        .collect();
    Some((WalBatch { seq, keys }, end))
}

/// Decode one CRC-valid record payload — a legacy single-batch record
/// or a multi-batch run record — appending its batches to `out` in
/// order. Returns `false` (and appends nothing) on a malformed payload:
/// a record decodes all-or-nothing, mirroring its all-or-nothing CRC.
pub(crate) fn parse_record_payload(payload: &[u8], out: &mut Vec<WalBatch>) -> bool {
    if payload.get(..RUN_MAGIC.len()) == Some(RUN_MAGIC.as_slice()) {
        let Some(nbatches) = read_u32_le(payload, 8) else {
            return false;
        };
        let mut off = 12usize;
        let mut run = Vec::new();
        for _ in 0..nbatches {
            match parse_one_batch(payload, off) {
                Some((batch, next)) => {
                    run.push(batch);
                    off = next;
                }
                None => return false,
            }
        }
        if off != payload.len() {
            return false;
        }
        out.extend(run);
        return true;
    }
    match parse_one_batch(payload, 0) {
        Some((batch, end)) if end == payload.len() => {
            out.push(batch);
            true
        }
        _ => false,
    }
}

/// Delete WAL segments made wholly redundant by a checkpoint at
/// `watermark`: a segment can go once its *successor* starts at or below
/// the watermark (every record it holds is then `< watermark`). Returns
/// the number of files removed. Removal errors are ignored — pruning is
/// an optimization, not a correctness requirement.
pub fn prune_wal(dir: &Path, watermark: u64) -> Result<u64> {
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(first) = parse_segment_name(&path) {
            segments.push((first, path));
        }
    }
    segments.sort();
    let mut removed = 0;
    for pair in segments.windows(2) {
        if let [(_, path), (next_first, _)] = pair {
            if *next_first <= watermark && fs::remove_file(path).is_ok() {
                removed += 1;
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "cots-persist-wal-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!("always".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Always);
        assert_eq!("grouped".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Grouped);
        assert_eq!("off".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Off);
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Grouped);
        assert_eq!(FsyncPolicy::Always.to_string(), "always");
    }

    #[test]
    fn append_commit_scan_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Grouped, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(0, &[1, 2, 3]);
        w.append(1, &[4]);
        let s1 = w.commit().unwrap();
        assert_eq!((s1.records, s1.keys), (2, 4));
        assert!(!s1.synced);
        w.append(2, &[]);
        w.commit().unwrap();
        assert_eq!(w.commit().unwrap(), CommitStats::default(), "empty commit is a no-op");

        let scan = scan_wal(&dir, 0).unwrap();
        assert_eq!(scan.segments, 1);
        assert_eq!(scan.records, 3);
        assert_eq!(scan.torn_frames, 0);
        assert_eq!(scan.dropped_bytes, 0);
        assert_eq!(scan.max_seq, Some(2));
        assert_eq!(
            scan.batches,
            vec![
                WalBatch { seq: 0, keys: vec![1, 2, 3] },
                WalBatch { seq: 1, keys: vec![4] },
                WalBatch { seq: 2, keys: vec![] },
            ]
        );
        // from_seq skips the checkpointed prefix.
        let tail = scan_wal(&dir, 2).unwrap();
        assert_eq!(tail.batches.len(), 1);
        assert_eq!(tail.batches[0].seq, 2);
        assert_eq!(tail.records, 3, "records counts everything scanned");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_creates_segments_and_scan_merges_them() {
        let dir = temp_dir("rotate");
        // Tiny threshold: every commit after the first rotates.
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, 16).unwrap();
        for seq in 0..5u64 {
            w.append(seq, &[seq * 10, seq * 10 + 1]);
            w.commit().unwrap();
        }
        let n_segments = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| parse_segment_name(&e.as_ref().unwrap().path()).is_some())
            .count();
        assert!(n_segments >= 2, "expected rotation, got {n_segments} segment(s)");
        let scan = scan_wal(&dir, 0).unwrap();
        assert_eq!(scan.batches.len(), 5);
        assert_eq!(scan.segments as usize, n_segments);
        assert!(scan.batches.windows(2).all(|w| w[0].seq < w[1].seq));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_valid_prefix() {
        let dir = temp_dir("torn");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        for seq in 0..4u64 {
            w.append(seq, &[seq; 3]);
        }
        w.commit().unwrap();
        let path = w.segment_path().to_path_buf();
        drop(w);
        let full = fs::read(&path).unwrap();
        // Tear mid-way through the last record.
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        let scan = scan_wal(&dir, 0).unwrap();
        assert_eq!(scan.batches.len(), 3, "valid prefix only");
        assert_eq!(scan.torn_frames, 1);
        assert!(scan.dropped_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_segment_is_skipped_not_fatal() {
        let dir = temp_dir("middle");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, 16).unwrap();
        for seq in 0..6u64 {
            w.append(seq, &[seq]);
            w.commit().unwrap();
        }
        drop(w);
        // Trash the magic of the second segment.
        let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| parse_segment_name(p).is_some())
            .collect();
        segs.sort();
        assert!(segs.len() >= 3);
        fs::write(&segs[1], b"garbage that is not a wal segment").unwrap();
        let scan = scan_wal(&dir, 0).unwrap();
        assert!(scan.torn_frames >= 1);
        assert!(scan.dropped_bytes > 0);
        // Batches from the surviving segments are still recovered, in order.
        assert!(!scan.batches.is_empty());
        assert!(scan.batches.windows(2).all(|w| w[0].seq < w[1].seq));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_sequences_never_double_apply() {
        let dir = temp_dir("dup");
        let mut w = WalWriter::open(&dir, 5, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(5, &[1]);
        w.append(5, &[1]); // simulated duplicate
        w.append(4, &[2]); // simulated regression
        w.append(6, &[3]);
        w.commit().unwrap();
        let scan = scan_wal(&dir, 5).unwrap();
        let seqs: Vec<u64> = scan.batches.iter().map(|b| b.seq).collect();
        assert_eq!(seqs, vec![5, 6]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_segments_at_or_after_watermark() {
        let dir = temp_dir("prune");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, 16).unwrap();
        for seq in 0..6u64 {
            w.append(seq, &[seq, seq, seq]);
            w.commit().unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let before = scan_wal(&dir, 0).unwrap();
        assert!(before.segments >= 3);
        // Checkpoint covers everything: all but the newest segment can go.
        let removed = prune_wal(&dir, 100).unwrap();
        assert_eq!(removed, before.segments - 1);
        // The tail past the watermark is still recoverable.
        let after = scan_wal(&dir, 0).unwrap();
        assert_eq!(after.segments, 1);
        // Pruning at watermark 0 removes nothing.
        assert_eq!(prune_wal(&dir, 0).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_record_round_trips_and_matches_per_batch_form() {
        let batches: Vec<Vec<u64>> = vec![vec![1, 2, 3], vec![], vec![9]];

        let run_dir = temp_dir("run");
        let mut w = WalWriter::open(&run_dir, 10, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append_run(10, &batches);
        let stats = w.commit().unwrap();
        assert_eq!((stats.records, stats.keys), (3, 4), "records counts logical batches");
        drop(w);

        let legacy_dir = temp_dir("run-legacy");
        let mut w = WalWriter::open(&legacy_dir, 10, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        for (i, batch) in batches.iter().enumerate() {
            w.append(10 + i as u64, batch);
        }
        w.commit().unwrap();
        drop(w);

        let run_scan = scan_wal(&run_dir, 0).unwrap();
        let legacy_scan = scan_wal(&legacy_dir, 0).unwrap();
        assert_eq!(run_scan.batches, legacy_scan.batches);
        assert_eq!(run_scan.records, legacy_scan.records);
        assert_eq!(run_scan.max_seq, Some(12));
        assert_eq!(run_scan.torn_frames, 0);
        // One frame for the run vs three for per-batch records.
        assert!(run_scan.dropped_bytes == 0 && legacy_scan.dropped_bytes == 0);
        fs::remove_dir_all(&run_dir).unwrap();
        fs::remove_dir_all(&legacy_dir).unwrap();
    }

    #[test]
    fn mixed_legacy_and_run_records_scan_in_order() {
        let dir = temp_dir("mixed");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(0, &[100]);
        w.append_run(1, &[vec![101], vec![102, 103]]);
        w.append(3, &[104]);
        w.commit().unwrap();
        drop(w);
        let scan = scan_wal(&dir, 0).unwrap();
        assert_eq!(scan.records, 4);
        assert_eq!(
            scan.batches,
            vec![
                WalBatch { seq: 0, keys: vec![100] },
                WalBatch { seq: 1, keys: vec![101] },
                WalBatch { seq: 2, keys: vec![102, 103] },
                WalBatch { seq: 3, keys: vec![104] },
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_run_stages_nothing() {
        let dir = temp_dir("empty-run");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append_run(0, &[]);
        assert_eq!(w.commit().unwrap(), CommitStats::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_run_record_is_all_or_nothing() {
        // A run record whose payload is damaged past the CRC (simulated
        // by handcrafting payloads) contributes no batches at all.
        let mut good = Vec::new();
        good.extend_from_slice(RUN_MAGIC);
        good.extend_from_slice(&2u32.to_le_bytes());
        for (seq, key) in [(5u64, 50u64), (6, 60)] {
            good.extend_from_slice(&seq.to_le_bytes());
            good.extend_from_slice(&1u32.to_le_bytes());
            good.extend_from_slice(&key.to_le_bytes());
        }
        let mut out = Vec::new();
        assert!(parse_record_payload(&good, &mut out));
        assert_eq!(out.len(), 2);

        // Truncated anywhere inside: rejected whole, never a partial run.
        for cut in 0..good.len() {
            out.clear();
            assert!(!parse_record_payload(&good[..cut], &mut out), "truncation at {cut} accepted");
            assert!(out.is_empty(), "truncation at {cut} leaked batches");
        }
        // Trailing garbage: rejected.
        let mut padded = good.clone();
        padded.push(0);
        out.clear();
        assert!(!parse_record_payload(&padded, &mut out));
        // Hostile batch count: rejected without large allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(RUN_MAGIC);
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        out.clear();
        assert!(!parse_record_payload(&hostile, &mut out));
    }

    #[test]
    fn restart_never_appends_to_old_segment() {
        let dir = temp_dir("restart");
        let mut w = WalWriter::open(&dir, 0, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(0, &[7]);
        w.commit().unwrap();
        let first_path = w.segment_path().to_path_buf();
        drop(w);
        let w2 = WalWriter::open(&dir, 1, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        assert_ne!(w2.segment_path(), first_path.as_path());
        // Even a restart at the *same* sequence number gets a fresh file.
        let w3 = WalWriter::open(&dir, 1, FsyncPolicy::Off, DEFAULT_SEGMENT_BYTES).unwrap();
        assert_ne!(w3.segment_path(), w2.segment_path());
        fs::remove_dir_all(&dir).unwrap();
    }
}
