//! Lock-free counters for the `cots-serve` ingest/query pipeline.
//!
//! Each shard worker owns one [`ShardTally`]; the acceptor/query threads
//! share one [`IngestTally`]. All counters are relaxed atomics — they are
//! statistics, not synchronization — and freeze into the serializable
//! [`ShardReport`]/[`ServiceReport`] types from `cots_core` on demand.

use std::sync::atomic::{AtomicU64, Ordering};

use cots_core::{PersistReport, RecoveryReport, ServiceReport, ShardReport};

/// Per-shard worker counters.
#[derive(Debug, Default)]
pub struct ShardTally {
    batches: AtomicU64,
    keys: AtomicU64,
    max_queue_depth: AtomicU64,
    idle_parks: AtomicU64,
}

impl ShardTally {
    /// Fresh tally with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one drained batch of `keys` keys.
    #[inline]
    pub fn batch(&self, keys: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.keys.fetch_add(keys, Ordering::Relaxed);
    }

    /// Record an observed queue depth; keeps the high-water mark.
    #[inline]
    pub fn observe_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one park on empty queues.
    #[inline]
    pub fn idle_park(&self) {
        self.idle_parks.fetch_add(1, Ordering::Relaxed);
    }

    /// Keys applied so far.
    pub fn keys_applied(&self) -> u64 {
        self.keys.load(Ordering::Relaxed)
    }

    /// Freeze into the wire report for shard `shard`.
    pub fn report(&self, shard: usize) -> ShardReport {
        ShardReport {
            shard,
            batches: self.batches.load(Ordering::Relaxed),
            keys: self.keys.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            idle_parks: self.idle_parks.load(Ordering::Relaxed),
        }
    }
}

/// Service-level ingest/query counters shared by connection threads.
#[derive(Debug, Default)]
pub struct IngestTally {
    ingested_keys: AtomicU64,
    ingest_frames: AtomicU64,
    rejected_frames: AtomicU64,
    queries: AtomicU64,
}

impl IngestTally {
    /// Fresh tally with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an accepted INGEST frame carrying `keys` keys.
    #[inline]
    pub fn ingest(&self, keys: u64) {
        self.ingest_frames.fetch_add(1, Ordering::Relaxed);
        self.ingested_keys.fetch_add(keys, Ordering::Relaxed);
    }

    /// Record an INGEST frame rejected with OVERLOADED.
    #[inline]
    pub fn reject(&self) {
        self.rejected_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one answered QUERY frame.
    #[inline]
    pub fn query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Keys accepted into shard queues so far.
    pub fn keys_ingested(&self) -> u64 {
        self.ingested_keys.load(Ordering::Relaxed)
    }

    /// Freeze into a [`ServiceReport`], combining the per-shard tallies
    /// and the publisher/backend/persistence state supplied by the caller.
    pub fn report(
        &self,
        shards: &[ShardTally],
        snapshot_epoch: u64,
        staleness: u64,
        monitored: usize,
        recovery: Option<RecoveryReport>,
        persist: Option<PersistReport>,
    ) -> ServiceReport {
        ServiceReport {
            ingested_keys: self.ingested_keys.load(Ordering::Relaxed),
            ingest_frames: self.ingest_frames.load(Ordering::Relaxed),
            rejected_frames: self.rejected_frames.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            snapshot_epoch,
            staleness,
            monitored,
            shards: shards.iter().enumerate().map(|(i, s)| s.report(i)).collect(),
            recovery,
            persist,
            repl: None,
        }
    }
}

/// Counters for the durability pipeline (WAL appends, checkpoints) of a
/// `cots-serve` instance running with a data directory. Shared by the
/// shard workers (appends), the checkpointer thread, and `STATS`.
#[derive(Debug, Default)]
pub struct PersistTally {
    checkpoints: AtomicU64,
    last_watermark: AtomicU64,
    wal_records: AtomicU64,
    wal_keys: AtomicU64,
    wal_bytes: AtomicU64,
    wal_syncs: AtomicU64,
    io_errors: AtomicU64,
}

impl PersistTally {
    /// Fresh tally with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one committed checkpoint at `watermark`.
    #[inline]
    pub fn checkpoint(&self, watermark: u64) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.last_watermark.fetch_max(watermark, Ordering::Relaxed);
    }

    /// Record one WAL batch record of `keys` keys spanning `bytes` bytes
    /// on disk (framing included).
    #[inline]
    pub fn wal_record(&self, keys: u64, bytes: u64) {
        self.wal_records.fetch_add(1, Ordering::Relaxed);
        self.wal_keys.fetch_add(keys, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one `fsync` of the WAL.
    #[inline]
    pub fn wal_sync(&self) {
        self.wal_syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one absorbed persistence I/O error.
    #[inline]
    pub fn io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// I/O errors absorbed so far.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Freeze into the wire report.
    pub fn report(&self) -> PersistReport {
        PersistReport {
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            last_watermark: self.last_watermark.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_keys: self.wal_keys.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_tally_accumulates() {
        let t = ShardTally::new();
        t.batch(100);
        t.batch(50);
        t.observe_depth(3);
        t.observe_depth(1);
        t.idle_park();
        let r = t.report(2);
        assert_eq!(r.shard, 2);
        assert_eq!(r.batches, 2);
        assert_eq!(r.keys, 150);
        assert_eq!(r.max_queue_depth, 3, "keeps the high-water mark");
        assert_eq!(r.idle_parks, 1);
        assert_eq!(t.keys_applied(), 150);
    }

    #[test]
    fn ingest_tally_builds_service_report() {
        let shards = vec![ShardTally::new(), ShardTally::new()];
        shards[0].batch(60);
        shards[1].batch(40);
        let t = IngestTally::new();
        t.ingest(100);
        t.reject();
        t.query();
        t.query();
        let r = t.report(&shards, 7, 12, 99, None, None);
        assert_eq!(r.ingested_keys, 100);
        assert_eq!(r.ingest_frames, 1);
        assert_eq!(r.rejected_frames, 1);
        assert_eq!(r.queries, 2);
        assert_eq!(r.snapshot_epoch, 7);
        assert_eq!(r.staleness, 12);
        assert_eq!(r.monitored, 99);
        assert_eq!(r.applied_keys(), 100);
        assert_eq!(r.shards[1].shard, 1);
        assert!(r.recovery.is_none() && r.persist.is_none());
    }

    #[test]
    fn persist_tally_accumulates() {
        let t = PersistTally::new();
        t.checkpoint(100);
        t.checkpoint(40); // out-of-order commit keeps the high-water mark
        t.wal_record(32, 300);
        t.wal_record(8, 80);
        t.wal_sync();
        t.io_error();
        let r = t.report();
        assert_eq!(r.checkpoints, 2);
        assert_eq!(r.last_watermark, 100);
        assert_eq!(r.wal_records, 2);
        assert_eq!(r.wal_keys, 40);
        assert_eq!(r.wal_bytes, 380);
        assert_eq!(r.wal_syncs, 1);
        assert_eq!(r.io_errors, 1);
        assert_eq!(t.io_errors(), 1);
    }

    #[test]
    fn tallies_are_thread_safe() {
        let t = std::sync::Arc::new(IngestTally::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        t.ingest(2);
                    }
                });
            }
        });
        assert_eq!(t.keys_ingested(), 8_000);
    }
}
