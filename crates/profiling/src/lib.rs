//! # cots-profiling
//!
//! Per-thread phase accounting used to reproduce the paper's time-breakdown
//! figures:
//!
//! * Figure 4 (independent design): **Counting** vs **Merge**.
//! * Figure 5 (shared design): **Hash Opns**, **Structure Opns**,
//!   **Min-Max Locks**, **Bucket Locks**, **Rest**.
//!
//! Engines carry a [`PhaseTimer`] per worker thread. When profiling is
//! disabled the timer is a no-op (no `Instant::now` calls), so the
//! throughput experiments are unaffected; the breakdown experiments enable
//! it and pay the measurement cost uniformly across designs, exactly as the
//! paper's instrumented binaries did.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod service;

pub use service::{IngestTally, PersistTally, ShardTally};

use std::time::{Duration, Instant};

use cots_core::json::{FromJson, Json, JsonError, JsonResult, ToJson};

/// The measured phases, covering both of the paper's breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Frequency-counting work proper (Fig. 4 "Counting").
    Counting = 0,
    /// Merging thread-local structures (Fig. 4 "Merge").
    Merge = 1,
    /// Hash-table operations, including blocking on element-level
    /// synchronization (Fig. 5 "Hash Opns").
    HashOps = 2,
    /// Stream Summary operations: add / increment / overwrite under bucket
    /// locks (Fig. 5 "Structure Opns").
    StructureOps = 3,
    /// Acquiring the min/max bucket-pointer locks (Fig. 5 "Min-Max Locks").
    MinMaxLocks = 4,
    /// Frequency-bucket lock acquisitions outside structure operations
    /// (Fig. 5 "Bucket Locks").
    BucketLocks = 5,
    /// Everything else (Fig. 5 "Rest").
    Rest = 6,
}

/// Number of phases.
pub const NUM_PHASES: usize = 7;

/// All phases, in display order.
pub const ALL_PHASES: [Phase; NUM_PHASES] = [
    Phase::Counting,
    Phase::Merge,
    Phase::HashOps,
    Phase::StructureOps,
    Phase::MinMaxLocks,
    Phase::BucketLocks,
    Phase::Rest,
];

impl Phase {
    /// The paper's label for this phase.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Counting => "Counting",
            Phase::Merge => "Merge",
            Phase::HashOps => "Hash Opns",
            Phase::StructureOps => "Structure Opns",
            Phase::MinMaxLocks => "Min-Max Locks",
            Phase::BucketLocks => "Bucket Locks",
            Phase::Rest => "Rest",
        }
    }
}

/// Accumulated time per phase for one thread.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimes {
    nanos: [u64; NUM_PHASES],
}

impl PhaseTimes {
    /// Add a span to a phase.
    #[inline]
    pub fn add(&mut self, phase: Phase, d: Duration) {
        self.nanos[phase as usize] += d.as_nanos() as u64;
    }

    /// Time spent in `phase`.
    pub fn get(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos[phase as usize])
    }

    /// Total time across phases.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Merge another thread's times into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for i in 0..NUM_PHASES {
            self.nanos[i] += other.nanos[i];
        }
    }
}

/// A per-thread phase timer. Construct enabled for breakdown experiments,
/// disabled for throughput experiments.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    enabled: bool,
    times: PhaseTimes,
}

impl PhaseTimer {
    /// A timer that records.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            times: PhaseTimes::default(),
        }
    }

    /// A timer that ignores everything at near-zero cost.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            times: PhaseTimes::default(),
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Time a closure under `phase`.
    #[inline]
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.times.add(phase, start.elapsed());
        out
    }

    /// Start a manual span; pair with [`PhaseTimer::finish`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close a manual span under `phase`.
    #[inline]
    pub fn finish(&mut self, phase: Phase, start: Option<Instant>) {
        if let Some(s) = start {
            self.times.add(phase, s.elapsed());
        }
    }

    /// The accumulated times.
    pub fn times(&self) -> &PhaseTimes {
        &self.times
    }

    /// Consume into the accumulated times.
    pub fn into_times(self) -> PhaseTimes {
        self.times
    }
}

/// An aggregated percentage breakdown across threads — one bar of Figure
/// 4/5.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Thread count of the run the bar describes.
    pub threads: usize,
    /// Percentage of total time per phase, aligned with [`ALL_PHASES`].
    pub percent: [f64; NUM_PHASES],
    /// Total measured time across threads.
    pub total_nanos: u64,
}

impl Breakdown {
    /// Aggregate per-thread phase times into a percentage stack.
    pub fn aggregate(threads: usize, per_thread: &[PhaseTimes]) -> Self {
        let mut sum = PhaseTimes::default();
        for t in per_thread {
            sum.merge(t);
        }
        let total = sum.total().as_nanos().max(1) as f64;
        let mut percent = [0.0; NUM_PHASES];
        for (i, p) in ALL_PHASES.iter().enumerate() {
            percent[i] = sum.get(*p).as_nanos() as f64 / total * 100.0;
        }
        Self {
            threads,
            percent,
            total_nanos: sum.total().as_nanos() as u64,
        }
    }

    /// Percentage for a phase.
    pub fn percent_of(&self, phase: Phase) -> f64 {
        self.percent[phase as usize]
    }

    /// Render the breakdown as one CSV row: `threads,p0,p1,...`.
    pub fn csv_row(&self) -> String {
        let mut s = self.threads.to_string();
        for p in self.percent {
            s.push_str(&format!(",{p:.2}"));
        }
        s
    }

    /// CSV header matching [`Breakdown::csv_row`].
    pub fn csv_header() -> String {
        let mut s = "threads".to_string();
        for p in ALL_PHASES {
            s.push(',');
            s.push_str(&p.label().replace(' ', "_"));
        }
        s
    }
}

impl ToJson for Phase {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Phase::Counting => "Counting",
                Phase::Merge => "Merge",
                Phase::HashOps => "HashOps",
                Phase::StructureOps => "StructureOps",
                Phase::MinMaxLocks => "MinMaxLocks",
                Phase::BucketLocks => "BucketLocks",
                Phase::Rest => "Rest",
            }
            .to_string(),
        )
    }
}

impl FromJson for Phase {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match v.as_str() {
            Some("Counting") => Ok(Phase::Counting),
            Some("Merge") => Ok(Phase::Merge),
            Some("HashOps") => Ok(Phase::HashOps),
            Some("StructureOps") => Ok(Phase::StructureOps),
            Some("MinMaxLocks") => Ok(Phase::MinMaxLocks),
            Some("BucketLocks") => Ok(Phase::BucketLocks),
            Some("Rest") => Ok(Phase::Rest),
            _ => Err(JsonError("unknown Phase variant".into())),
        }
    }
}

impl ToJson for PhaseTimes {
    fn to_json(&self) -> Json {
        Json::obj(vec![("nanos", self.nanos.to_json())])
    }
}

impl FromJson for PhaseTimes {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            nanos: <[u64; NUM_PHASES]>::from_json(v.field("nanos")?)?,
        })
    }
}

impl ToJson for Breakdown {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("threads", self.threads.to_json()),
            ("percent", self.percent.to_json()),
            ("total_nanos", self.total_nanos.to_json()),
        ])
    }
}

impl FromJson for Breakdown {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            threads: usize::from_json(v.field("threads")?)?,
            percent: <[f64; NUM_PHASES]>::from_json(v.field("percent")?)?,
            total_nanos: u64::from_json(v.field("total_nanos")?)?,
        })
    }
}

/// Render a set of breakdowns (one per thread count) as the paper's stacked
/// Advisory wall-clock summary over repeated runs of one configuration.
///
/// Perf gates must key on *deterministic* work counters; wall clock on a
/// shared CI runner is weather, so it is summarized here and reported,
/// never gated on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSummary {
    /// Median of the observed wall-clock times, in seconds.
    pub median_secs: f64,
    /// Fastest observed run, in seconds.
    pub min_secs: f64,
    /// Slowest observed run, in seconds.
    pub max_secs: f64,
}

impl ThroughputSummary {
    /// Summarize a set of wall-clock observations (`None` when empty).
    pub fn from_durations(runs: &[Duration]) -> Option<Self> {
        if runs.is_empty() {
            return None;
        }
        let mut secs: Vec<f64> = runs.iter().map(Duration::as_secs_f64).collect();
        secs.sort_by(|a, b| a.total_cmp(b));
        Some(Self {
            median_secs: secs[secs.len() / 2],
            min_secs: secs[0],
            max_secs: secs[secs.len() - 1],
        })
    }

    /// Median throughput in million elements per second.
    pub fn meps(&self, elements: u64) -> f64 {
        if self.median_secs <= 0.0 {
            return 0.0;
        }
        elements as f64 / self.median_secs / 1e6
    }
}

impl ToJson for ThroughputSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("median_secs", self.median_secs.to_json()),
            ("min_secs", self.min_secs.to_json()),
            ("max_secs", self.max_secs.to_json()),
        ])
    }
}

impl FromJson for ThroughputSummary {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            median_secs: f64::from_json(v.field("median_secs")?)?,
            min_secs: f64::from_json(v.field("min_secs")?)?,
            max_secs: f64::from_json(v.field("max_secs")?)?,
        })
    }
}

/// percentage table, restricted to the phases that are non-zero anywhere.
pub fn render_breakdown_table(breakdowns: &[Breakdown]) -> String {
    let used: Vec<Phase> = ALL_PHASES
        .into_iter()
        .filter(|p| breakdowns.iter().any(|b| b.percent_of(*p) > 0.005))
        .collect();
    let mut out = String::new();
    out.push_str(&format!("{:>8}", "threads"));
    for p in &used {
        out.push_str(&format!("{:>16}", p.label()));
    }
    out.push('\n');
    for b in breakdowns {
        out.push_str(&format!("{:>8}", b.threads));
        for p in &used {
            out.push_str(&format!("{:>15.1}%", b.percent_of(*p)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod throughput_tests {
    use super::*;

    #[test]
    fn summary_orders_and_converts() {
        let runs = [
            Duration::from_millis(30),
            Duration::from_millis(10),
            Duration::from_millis(20),
        ];
        let t = ThroughputSummary::from_durations(&runs).unwrap();
        assert!((t.median_secs - 0.020).abs() < 1e-9);
        assert!((t.min_secs - 0.010).abs() < 1e-9);
        assert!((t.max_secs - 0.030).abs() < 1e-9);
        assert!((t.meps(2_000_000) - 100.0).abs() < 1e-6);
        assert!(ThroughputSummary::from_durations(&[]).is_none());
    }

    #[test]
    fn summary_json_round_trip() {
        let t = ThroughputSummary {
            median_secs: 0.5,
            min_secs: 0.25,
            max_secs: 1.0,
        };
        let s = cots_core::json::to_string(&t);
        let back: ThroughputSummary = cots_core::json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_records_nothing() {
        let mut t = PhaseTimer::disabled();
        let v = t.time(Phase::Counting, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(t.times().total(), Duration::ZERO);
    }

    #[test]
    fn enabled_timer_records_spans() {
        let mut t = PhaseTimer::enabled();
        t.time(Phase::Merge, || {
            std::thread::sleep(Duration::from_millis(3))
        });
        assert!(t.times().get(Phase::Merge) >= Duration::from_millis(2));
        assert_eq!(t.times().get(Phase::Counting), Duration::ZERO);
    }

    #[test]
    fn manual_spans() {
        let mut t = PhaseTimer::enabled();
        let s = t.start();
        std::thread::sleep(Duration::from_millis(2));
        t.finish(Phase::HashOps, s);
        assert!(t.times().get(Phase::HashOps) >= Duration::from_millis(1));

        let mut d = PhaseTimer::disabled();
        let s = d.start();
        assert!(s.is_none());
        d.finish(Phase::HashOps, s);
        assert_eq!(d.times().total(), Duration::ZERO);
    }

    #[test]
    fn phase_times_merge() {
        let mut a = PhaseTimes::default();
        a.add(Phase::Counting, Duration::from_nanos(100));
        let mut b = PhaseTimes::default();
        b.add(Phase::Counting, Duration::from_nanos(50));
        b.add(Phase::Merge, Duration::from_nanos(25));
        a.merge(&b);
        assert_eq!(a.get(Phase::Counting), Duration::from_nanos(150));
        assert_eq!(a.total(), Duration::from_nanos(175));
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let mut t1 = PhaseTimes::default();
        t1.add(Phase::Counting, Duration::from_nanos(600));
        t1.add(Phase::Merge, Duration::from_nanos(400));
        let mut t2 = PhaseTimes::default();
        t2.add(Phase::Counting, Duration::from_nanos(1000));
        let b = Breakdown::aggregate(2, &[t1, t2]);
        assert!((b.percent_of(Phase::Counting) - 80.0).abs() < 1e-9);
        assert!((b.percent_of(Phase::Merge) - 20.0).abs() < 1e-9);
        let total: f64 = b.percent.iter().sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn breakdown_empty_input() {
        let b = Breakdown::aggregate(4, &[]);
        assert_eq!(b.total_nanos, 0);
        assert!(b.percent.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn csv_shapes() {
        let b = Breakdown::aggregate(2, &[]);
        let header = Breakdown::csv_header();
        let row = b.csv_row();
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(header.starts_with("threads,Counting,Merge"));
    }

    #[test]
    fn breakdown_json_round_trip() {
        let mut t = PhaseTimes::default();
        t.add(Phase::Counting, Duration::from_nanos(600));
        t.add(Phase::Merge, Duration::from_nanos(400));
        let b = Breakdown::aggregate(2, &[t.clone()]);
        let back: Breakdown =
            cots_core::json::from_str(&cots_core::json::to_string(&b)).unwrap();
        assert_eq!(back.threads, 2);
        assert_eq!(back.total_nanos, b.total_nanos);
        assert_eq!(back.percent, b.percent);
        let t2: PhaseTimes =
            cots_core::json::from_str(&cots_core::json::to_string(&t)).unwrap();
        assert_eq!(t2.get(Phase::Merge), Duration::from_nanos(400));
        for p in ALL_PHASES {
            let back: Phase =
                cots_core::json::from_str(&cots_core::json::to_string(&p)).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn table_renders_only_used_phases() {
        let mut t = PhaseTimes::default();
        t.add(Phase::HashOps, Duration::from_nanos(70));
        t.add(Phase::Rest, Duration::from_nanos(30));
        let b = Breakdown::aggregate(1, &[t]);
        let table = render_breakdown_table(&[b]);
        assert!(table.contains("Hash Opns"));
        assert!(table.contains("Rest"));
        assert!(!table.contains("Merge"));
    }
}
