//! Property tests for the core vocabulary: hashing, thresholds, snapshots,
//! the merge algebra, and the query-language round trip.

use proptest::collection::vec;
use proptest::prelude::*;

use cots_core::merge::{absent_bound, merge_snapshots};
use cots_core::ql;
use cots_core::query::{PointQuery, QueryKind, SetQuery};
use cots_core::{CounterEntry, MulHash, Snapshot, Threshold};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_is_deterministic_and_indexable(key in any::<u64>(), log2 in 0u32..24) {
        let h1 = MulHash::hash(&key);
        let h2 = MulHash::hash(&key);
        prop_assert_eq!(h1, h2);
        let idx = MulHash::index(h1, log2);
        prop_assert!(idx < (1usize << log2));
    }

    #[test]
    fn threshold_fraction_monotone_in_total(
        f in 0.0f64..1.0,
        total_a in 0u64..1_000_000,
        total_b in 0u64..1_000_000,
    ) {
        let t = Threshold::Fraction(f);
        let (lo, hi) = if total_a <= total_b { (total_a, total_b) } else { (total_b, total_a) };
        prop_assert!(t.resolve(lo) <= t.resolve(hi));
        prop_assert!(t.resolve(hi) <= hi.max(1));
    }

    #[test]
    fn snapshot_queries_respect_order(
        entries in vec((any::<u64>(), 1u64..10_000), 0..60),
        k in 0usize..70,
    ) {
        // Dedupe items, keep first occurrence.
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<CounterEntry<u64>> = entries
            .into_iter()
            .filter(|(i, _)| seen.insert(*i))
            .map(|(i, c)| CounterEntry::new(i, c, 0))
            .collect();
        let total: u64 = entries.iter().map(|e| e.count).sum();
        let snap = Snapshot::new(entries, total);
        // Sorted descending.
        prop_assert!(snap.entries().windows(2).all(|w| w[0].count >= w[1].count));
        // top_k is a prefix.
        let top = snap.top_k(k);
        prop_assert_eq!(&top[..], &snap.entries()[..top.len()]);
        // Everything in top_k is in_top_k; the element after the cut is not
        // (unless tied with the k-th).
        for e in &top {
            prop_assert!(snap.is_in_top_k(&e.item, k));
        }
        if k > 0 && snap.len() > k {
            let kth = snap.entries()[k - 1].count;
            let after = snap.entries()[k];
            prop_assert_eq!(snap.is_in_top_k(&after.item, k), after.count >= kth);
        }
    }

    #[test]
    fn merge_conserves_totals_and_capacity(
        groups in vec(vec((0u64..64, 1u64..500), 0..20), 1..5),
        capacity in 1usize..32,
    ) {
        let snapshots: Vec<Snapshot<u64>> = groups
            .iter()
            .map(|g| {
                let mut seen = std::collections::HashSet::new();
                let entries: Vec<CounterEntry<u64>> = g
                    .iter()
                    .filter(|(i, _)| seen.insert(*i))
                    .map(|&(i, c)| CounterEntry::new(i, c, 0))
                    .collect();
                let total = entries.iter().map(|e| e.count).sum();
                Snapshot::new(entries, total)
            })
            .collect();
        let want_total: u64 = snapshots.iter().map(|s| s.total()).sum();
        let merged = merge_snapshots(&snapshots, capacity);
        prop_assert_eq!(merged.total(), want_total);
        prop_assert!(merged.len() <= capacity);
        // Merged counts never shrink below any single snapshot's estimate.
        for s in &snapshots {
            for e in s.entries() {
                if let Some(m) = merged.get(&e.item) {
                    prop_assert!(m.count >= e.count);
                }
            }
        }
    }

    #[test]
    fn absent_bound_is_min_count_when_full(
        counts in vec(1u64..1_000, 1..20),
    ) {
        let entries: Vec<CounterEntry<u64>> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| CounterEntry::new(i as u64, c, 0))
            .collect();
        let total = counts.iter().sum();
        let snap = Snapshot::new(entries, total);
        let min = *counts.iter().min().unwrap();
        prop_assert_eq!(absent_bound(&snap, counts.len()), min);
        prop_assert_eq!(absent_bound(&snap, counts.len() + 1), 0);
    }

    /// Format a random statement in the SQL-ish dialect, parse it back, and
    /// compare: a full round trip through `cots_core::ql`.
    #[test]
    fn ql_round_trips(
        kind in 0u8..4,
        item in 1u64..1_000_000,
        k in 1usize..100,
        every in proptest::option::of(1u64..1_000_000),
    ) {
        let (predicate, want) = match kind {
            0 => (
                "IsElementFrequent(S.element)".to_string(),
                QueryKind::Set(SetQuery::Frequent { threshold: Threshold::Fraction(0.0) }),
            ),
            1 => (
                format!("IsElementFrequent({item}, 0.25)"),
                QueryKind::Point(PointQuery::IsFrequent {
                    item,
                    threshold: Threshold::Fraction(0.25),
                }),
            ),
            2 => (
                format!("IsElementInTopk(S.element, {k})"),
                QueryKind::Set(SetQuery::TopK { k }),
            ),
            _ => (
                format!("IsElementInTopk({item}, {k})"),
                QueryKind::Point(PointQuery::IsInTopK { item, k }),
            ),
        };
        let every_clause = every.map(|n| format!(" Every {n}")).unwrap_or_default();
        let text = format!("Select S.element From Stream S Where {predicate}{every_clause}");
        let stmt = ql::parse(&text).unwrap();
        prop_assert_eq!(stmt.query, want);
        match every {
            None => prop_assert_eq!(stmt.every, None),
            Some(n) => prop_assert_eq!(stmt.every, Some(ql::Every::Updates(n))),
        }
    }
}

#[test]
fn merge_of_nothing_is_empty() {
    let m: Snapshot<u64> = merge_snapshots(&[], 8);
    assert!(m.is_empty());
}
