//! A small, dependency-free JSON value model, parser, and emitter.
//!
//! The workspace builds without registry access, so instead of `serde` +
//! `serde_json` the report/config types implement the two traits defined
//! here by hand. The surface is deliberately tiny:
//!
//! * [`Json`] — a JSON document as a tree of values. Integers are kept
//!   exact (separate [`Json::UInt`]/[`Json::Int`] variants) so `u64`
//!   counters survive a round trip without `f64` truncation.
//! * [`ToJson`] / [`FromJson`] — conversion traits, implemented for the
//!   primitives plus `Vec<T>`, `Option<T>` and `[T; N]`.
//! * [`to_string`] / [`to_string_pretty`] / [`from_str`] — the
//!   `serde_json`-shaped entry points the harness uses.
//!
//! Enum encodings follow serde's *externally tagged* convention so the
//! artifact files keep the same shape they had under serde: a unit variant
//! is a bare string (`"SpaceSaving"`), a data-carrying variant is a
//! one-entry object (`{"Count": 7}`).

use std::fmt::Write as _;

/// Error raised by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Convenience alias for fallible JSON operations.
pub type JsonResult<T> = std::result::Result<T, JsonError>;

fn err<T>(msg: impl Into<String>) -> JsonResult<T> {
    Err(JsonError(msg.into()))
}

/// A JSON value.
///
/// Object member order is preserved (members are a `Vec`, not a map): the
/// emitters write fields in insertion order and duplicate keys are not
/// checked for.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal, kept exact.
    UInt(u64),
    /// A negative integer literal, kept exact.
    Int(i64),
    /// A fractional or exponent-form number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that errors (with the key name) when absent.
    pub fn field(&self, key: &str) -> JsonResult<&Json> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer (including a
    /// float with an exact integral value, e.g. `1e3`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) => u64::try_from(v).ok(),
            Json::Float(v) if v >= 0.0 && v <= u64::MAX as f64 && v.fract() == 0.0 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::UInt(v) => i64::try_from(v).ok(),
            Json::Int(v) => Some(v),
            Json::Float(v) if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation, `serde_json::to_string_pretty`
    /// style.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Infinity/NaN literal; serde_json errors here. These
        // never occur in the report types, so degrade to null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

impl std::str::FromStr for Json {
    type Err = JsonError;

    fn from_str(s: &str) -> JsonResult<Json> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> JsonResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> JsonResult<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> JsonResult<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> JsonResult<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> JsonResult<Json> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> JsonResult<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.escape()?);
                }
                _ => return err("unterminated string"),
            }
        }
    }

    fn escape(&mut self) -> JsonResult<char> {
        let c = self.peek().ok_or_else(|| JsonError("bad escape".into()))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return err("invalid low surrogate");
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return err("lone high surrogate");
                    }
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| JsonError("invalid code point".into()))?
            }
            _ => return err(format!("invalid escape `\\{}`", c as char)),
        })
    }

    fn hex4(&mut self) -> JsonResult<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| JsonError("bad \\u escape".into()))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| JsonError("bad hex digit".into()))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> JsonResult<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid number".into()))?;
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion back from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Reconstruct a value, validating shape and field presence.
    fn from_json(v: &Json) -> JsonResult<Self>;
}

/// Serialize compactly, `serde_json::to_string` style.
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().dump()
}

/// Serialize with indentation, `serde_json::to_string_pretty` style.
pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().pretty()
}

/// Parse then convert, `serde_json::from_str` style.
pub fn from_str<T: FromJson>(s: &str) -> JsonResult<T> {
    T::from_json(&s.parse::<Json>()?)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> JsonResult<Self> {
        v.as_bool().ok_or_else(|| JsonError("expected bool".into()))
    }
}

macro_rules! json_uint {
    ($($t:ty),*) => {
        $(
            impl ToJson for $t {
                fn to_json(&self) -> Json {
                    Json::UInt(*self as u64)
                }
            }

            impl FromJson for $t {
                fn from_json(v: &Json) -> JsonResult<Self> {
                    let raw = v
                        .as_u64()
                        .ok_or_else(|| JsonError("expected unsigned integer".into()))?;
                    <$t>::try_from(raw)
                        .map_err(|_| JsonError("integer out of range".into()))
                }
            }
        )*
    };
}

json_uint!(u8, u16, u32, u64, usize);

macro_rules! json_int {
    ($($t:ty),*) => {
        $(
            impl ToJson for $t {
                fn to_json(&self) -> Json {
                    let v = *self as i64;
                    if v < 0 { Json::Int(v) } else { Json::UInt(v as u64) }
                }
            }

            impl FromJson for $t {
                fn from_json(v: &Json) -> JsonResult<Self> {
                    let raw = v
                        .as_i64()
                        .ok_or_else(|| JsonError("expected integer".into()))?;
                    <$t>::try_from(raw)
                        .map_err(|_| JsonError("integer out of range".into()))
                }
            }
        )*
    };
}

json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> JsonResult<Self> {
        v.as_f64().ok_or_else(|| JsonError("expected number".into()))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> JsonResult<Self> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError("expected string".into()))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> JsonResult<Self> {
        v.as_arr()
            .ok_or_else(|| JsonError("expected array".into()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> JsonResult<Self> {
        let items = Vec::<T>::from_json(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| JsonError(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

macro_rules! json_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }

        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(v: &Json) -> JsonResult<Self> {
                let items = v.as_arr().ok_or_else(|| JsonError("expected array".into()))?;
                if items.len() != $len {
                    return err(format!("expected {}-tuple, got {} items", $len, items.len()));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    };
}

json_tuple!(A:0; 1);
json_tuple!(A:0, B:1; 2);
json_tuple!(A:0, B:1, C:2; 3);
json_tuple!(A:0, B:1, C:2, D:3; 4);

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!("null".parse::<Json>().unwrap(), Json::Null);
        assert_eq!("true".parse::<Json>().unwrap(), Json::Bool(true));
        assert_eq!("42".parse::<Json>().unwrap(), Json::UInt(42));
        assert_eq!("-7".parse::<Json>().unwrap(), Json::Int(-7));
        assert_eq!("1.5".parse::<Json>().unwrap(), Json::Float(1.5));
        assert_eq!("1e3".parse::<Json>().unwrap(), Json::Float(1000.0));
        assert_eq!(
            "\"hi\\n\\u0041\"".parse::<Json>().unwrap(),
            Json::Str("hi\nA".into())
        );
    }

    #[test]
    fn parses_structures() {
        let v: Json = r#" {"a": [1, 2, {"b": null}], "c": "x"} "#.parse().unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.field("c").unwrap().as_str(), Some("x"));
        assert!(v.field("missing").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Json>().is_err());
        assert!("{".parse::<Json>().is_err());
        assert!("[1,]".parse::<Json>().is_err());
        assert!("nul".parse::<Json>().is_err());
        assert!("1 2".parse::<Json>().is_err());
        assert!("\"unterminated".parse::<Json>().is_err());
    }

    #[test]
    fn u64_round_trip_is_exact() {
        let big = u64::MAX - 1;
        let s = to_string(&big);
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn surrogate_pairs() {
        let v: Json = "\"\\ud83d\\ude00\"".parse().unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!("\"\\ud83d\"".parse::<Json>().is_err());
    }

    #[test]
    fn string_escaping_round_trip() {
        let original = "line\nbreak \"quote\" back\\slash \u{1}".to_string();
        let back: String = from_str(&to_string(&original)).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn pretty_output_shape() {
        let v = Json::obj(vec![
            ("a", Json::UInt(1)),
            ("b", Json::Arr(vec![Json::Bool(true)])),
        ]);
        assert_eq!(v.dump(), r#"{"a":1,"b":[true]}"#);
        let pretty = v.pretty();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert_eq!(pretty.parse::<Json>().unwrap(), v);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(3), None, Some(5)];
        let back: Vec<Option<u32>> = from_str(&to_string(&v)).unwrap();
        assert_eq!(back, v);
        let arr = [1.5f64, 2.5, -3.25];
        let back: [f64; 3] = from_str(&to_string(&arr)).unwrap();
        assert_eq!(back, arr);
        assert!(from_str::<[f64; 2]>(&to_string(&arr)).is_err());
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<u32>("1.5").is_err());
    }
}
