//! Engine traits.
//!
//! Three capabilities are separated:
//!
//! * [`FrequencyCounter`] — sequential, `&mut self` per-element processing
//!   (the sequential algorithms, and each thread-local structure of the
//!   independent design).
//! * [`ConcurrentCounter`] — shared-state, `&self` processing callable from
//!   many threads (the shared naive design and the CoTS framework).
//! * [`QueryableSummary`] — anything that can export a [`Snapshot`] and
//!   answer the paper's queries. Blanket-implemented query helpers evaluate
//!   [`PointQuery`]/[`SetQuery`] against a snapshot.

use crate::counter::Snapshot;
use crate::element::Element;
use crate::query::{PointQuery, QueryAnswer, QueryKind, SetQuery};

/// A sequential frequency-counting algorithm.
pub trait FrequencyCounter<K: Element> {
    /// Process one stream element.
    fn process(&mut self, item: K);

    /// Process a batch; engines may override with a faster loop.
    fn process_slice(&mut self, items: &[K]) {
        for &item in items {
            self.process(item);
        }
    }

    /// Number of elements processed so far.
    fn processed(&self) -> u64;
}

/// A thread-safe frequency counter processed through a shared reference.
pub trait ConcurrentCounter<K: Element>: Send + Sync {
    /// Process one stream element; callable concurrently from many threads.
    fn process(&self, item: K);

    /// Process a batch.
    fn process_slice(&self, items: &[K]) {
        for &item in items {
            self.process(item);
        }
    }

    /// Ingest a batch of stream elements as one unit of work.
    ///
    /// This is the batch entry point drivers should call: engines that can
    /// amortize fixed per-element costs over the batch (epoch pins, shared
    /// counter updates, thread-local pre-aggregation) override it, so
    /// batch-vs-batch comparisons between engines measure the algorithms
    /// rather than the call protocol. The default forwards to
    /// [`ConcurrentCounter::process_slice`]; semantics are identical to
    /// processing each element individually.
    fn ingest_batch(&self, items: &[K]) {
        self.process_slice(items);
    }

    /// Total elements processed across all threads.
    ///
    /// Only required to be exact at quiescence (no in-flight `process`).
    fn processed(&self) -> u64;
}

/// A summary that can be queried.
pub trait QueryableSummary<K: Element> {
    /// Export a sorted snapshot of the monitored set.
    ///
    /// For concurrent engines this may be taken while updates are in flight;
    /// the result is then a best-effort consistent view (the paper's queries
    /// run lock-free against the live structure).
    fn snapshot(&self) -> Snapshot<K>;

    /// Estimated `(count, error)` for a single element, if monitored.
    ///
    /// Point frequent-element queries are answered "directly from the search
    /// structure" (§5.2.4); engines override this with an O(1) lookup.
    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        self.snapshot().get(item).map(|e| (e.count, e.error))
    }

    /// Evaluate a point query.
    fn point_query(&self, q: PointQuery<K>) -> bool {
        match q {
            PointQuery::IsFrequent { item, threshold } => {
                // Fast path through `estimate`; threshold resolution needs
                // the processed total, so fall back to the snapshot only for
                // fractional thresholds when `estimate` is insufficient.
                let snap = self.snapshot();
                snap.is_frequent(&item, threshold)
            }
            PointQuery::IsInTopK { item, k } => self.snapshot().is_in_top_k(&item, k),
        }
    }

    /// Evaluate a set query.
    fn set_query(&self, q: SetQuery) -> Snapshot<K>
    where
        Self: Sized,
    {
        let snap = self.snapshot();
        let total = snap.total();
        match q {
            SetQuery::Frequent { threshold } => {
                Snapshot::from_sorted(snap.frequent(threshold), total)
            }
            SetQuery::TopK { k } => Snapshot::from_sorted(snap.top_k(k), total),
        }
    }

    /// Evaluate either query shape, boxing the answer.
    fn query(&self, q: QueryKind<K>) -> QueryAnswer<K>
    where
        Self: Sized,
    {
        match q {
            QueryKind::Point(p) => QueryAnswer::Bool(self.point_query(p)),
            QueryKind::Set(s) => QueryAnswer::Set(self.set_query(s).into_entries()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CounterEntry;
    use crate::query::Threshold;

    /// Minimal exact counter used to exercise the blanket query impls.
    struct Exact {
        counts: Vec<(u64, u64)>,
        total: u64,
    }

    impl FrequencyCounter<u64> for Exact {
        fn process(&mut self, item: u64) {
            self.total += 1;
            match self.counts.iter_mut().find(|(k, _)| *k == item) {
                Some((_, c)) => *c += 1,
                None => self.counts.push((item, 1)),
            }
        }
        fn processed(&self) -> u64 {
            self.total
        }
    }

    impl QueryableSummary<u64> for Exact {
        fn snapshot(&self) -> Snapshot<u64> {
            Snapshot::new(
                self.counts
                    .iter()
                    .map(|&(k, c)| CounterEntry::new(k, c, 0))
                    .collect(),
                self.total,
            )
        }
    }

    fn engine() -> Exact {
        let mut e = Exact {
            counts: vec![],
            total: 0,
        };
        for item in [1u64, 3, 3, 2, 2, 3] {
            e.process(item);
        }
        e
    }

    #[test]
    fn process_slice_default() {
        let mut e = Exact {
            counts: vec![],
            total: 0,
        };
        e.process_slice(&[5, 5, 6]);
        assert_eq!(e.processed(), 3);
        assert_eq!(e.snapshot().get(&5).unwrap().count, 2);
    }

    #[test]
    fn ingest_batch_default_matches_per_element() {
        use std::sync::atomic::{AtomicU64, Ordering};
        #[derive(Default)]
        struct Tally {
            total: AtomicU64,
        }
        impl ConcurrentCounter<u64> for Tally {
            fn process(&self, _item: u64) {
                self.total.fetch_add(1, Ordering::Relaxed);
            }
            fn processed(&self) -> u64 {
                self.total.load(Ordering::Relaxed)
            }
        }
        let t = Tally::default();
        t.ingest_batch(&[1, 2, 2, 3]);
        assert_eq!(t.processed(), 4);
    }

    #[test]
    fn blanket_point_query() {
        let e = engine();
        assert!(e.point_query(PointQuery::IsFrequent {
            item: 3,
            threshold: Threshold::Count(3)
        }));
        assert!(!e.point_query(PointQuery::IsFrequent {
            item: 1,
            threshold: Threshold::Count(2)
        }));
        assert!(e.point_query(PointQuery::IsInTopK { item: 2, k: 2 }));
        assert!(!e.point_query(PointQuery::IsInTopK { item: 1, k: 2 }));
    }

    #[test]
    fn blanket_set_query() {
        let e = engine();
        let top = e.set_query(SetQuery::TopK { k: 1 });
        assert_eq!(top.entries()[0].item, 3);
        let freq = e.set_query(SetQuery::Frequent {
            threshold: Threshold::Fraction(0.5),
        });
        assert_eq!(freq.len(), 1); // only item 3 (count 3 of 6).
    }

    #[test]
    fn blanket_query_kind() {
        let e = engine();
        let ans = e.query(QueryKind::Set(SetQuery::TopK { k: 2 }));
        assert_eq!(ans.as_set().unwrap().len(), 2);
        let ans = e.query(QueryKind::Point(PointQuery::IsInTopK { item: 3, k: 1 }));
        assert_eq!(ans.as_bool(), Some(true));
    }

    #[test]
    fn default_estimate_via_snapshot() {
        let e = engine();
        assert_eq!(e.estimate(&3), Some((3, 0)));
        assert_eq!(e.estimate(&42), None);
    }
}
