//! Multiplicative hashing (Knuth, TAOCP vol. 3 §6.4).
//!
//! The paper's search structure uses "a moderately robust hash function (such
//! as *Multiplicative Hashing*)" so that two writers rarely collide on the
//! same hash bucket. We implement the classic Fibonacci variant: multiply by
//! the odd constant closest to 2⁶⁴/φ and keep the high bits, which spreads
//! consecutive integer keys maximally far apart.
//!
//! For non-integer elements we first fold the value through the standard
//! `Hasher` machinery (`FoldHasher`, itself a multiplicative accumulator) and
//! then apply the same finalizer, so the whole family stays allocation-free
//! and deterministic across runs.

use std::hash::{Hash, Hasher};

/// 2⁶⁴ / φ rounded to the nearest odd integer — Knuth's recommended
/// multiplier for 64-bit multiplicative hashing.
pub const KNUTH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// A second odd constant (from SplitMix64) used to de-correlate the sketch
/// hash family from the table hash.
pub const SECONDARY_MUL: u64 = 0xBF58_476D_1CE4_E5B9;

/// Stateless multiplicative hasher.
///
/// `MulHash::index(h, log2_buckets)` extracts a bucket index from the *high*
/// bits of `h * KNUTH_MUL`, which is the part of the product with the best
/// avalanche behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct MulHash;

impl MulHash {
    /// Hash an arbitrary element to 64 bits.
    #[inline]
    pub fn hash<T: Hash>(value: &T) -> u64 {
        let mut f = FoldHasher::default();
        value.hash(&mut f);
        Self::finalize(f.finish())
    }

    /// Finalizer: multiplicative avalanche (the SplitMix64 finalizer, two
    /// odd multiplies interleaved with xor-shifts). A single extra Knuth
    /// multiply here would compose with [`FoldHasher`]'s multiply into the
    /// poorly-structured constant K², measurably clustering bucket indices,
    /// so the avalanche form is used instead.
    #[inline]
    pub fn finalize(h: u64) -> u64 {
        let mut x = h;
        x = (x ^ (x >> 30)).wrapping_mul(SECONDARY_MUL);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Map a 64-bit hash to a table of `1 << log2_buckets` buckets using the
    /// high bits of the multiplicative product.
    #[inline]
    pub fn index(hash: u64, log2_buckets: u32) -> usize {
        debug_assert!(log2_buckets <= 63);
        if log2_buckets == 0 {
            return 0;
        }
        (hash >> (64 - log2_buckets)) as usize
    }

    /// An independent hash for row `row` of a sketch, derived by re-mixing
    /// with a per-row odd multiplier. Rows behave as a pairwise-independent
    /// family for the purposes of Count-Min / Count-Sketch error bounds.
    #[inline]
    pub fn row_hash<T: Hash>(value: &T, row: u64) -> u64 {
        let base = Self::hash(value);
        let mixed = base
            .wrapping_add(row.wrapping_mul(SECONDARY_MUL))
            .wrapping_mul(KNUTH_MUL | 1);
        mixed ^ (mixed >> 31)
    }
}

/// A minimal 64-bit folding hasher: multiplicative accumulation over the
/// written bytes. Deterministic (no random seed) so experiment runs are
/// reproducible, which matters more here than HashDoS resistance.
#[derive(Debug)]
pub struct FoldHasher {
    state: u64,
}

impl Default for FoldHasher {
    fn default() -> Self {
        // Non-zero seed so that hashing the all-zero input does not collapse
        // to the multiplicative fixed point at 0.
        Self {
            state: SECONDARY_MUL,
        }
    }
}

impl Hasher for FoldHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(KNUTH_MUL);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(MulHash::hash(&42u64), MulHash::hash(&42u64));
        assert_ne!(MulHash::hash(&42u64), MulHash::hash(&43u64));
    }

    #[test]
    fn index_stays_in_range() {
        for log2 in 0..16u32 {
            for key in 0..1000u64 {
                let idx = MulHash::index(MulHash::hash(&key), log2);
                assert!(idx < (1usize << log2));
            }
        }
    }

    #[test]
    fn consecutive_keys_spread_over_buckets() {
        // The motivating property from the paper: writers on different
        // elements should almost never collide in the table. With 2^12
        // buckets and 4096 consecutive keys we expect high occupancy.
        let log2 = 12;
        let distinct: HashSet<usize> = (0..4096u64)
            .map(|k| MulHash::index(MulHash::hash(&k), log2))
            .collect();
        assert!(
            distinct.len() > 2500,
            "only {} distinct buckets out of 4096",
            distinct.len()
        );
    }

    #[test]
    fn row_hashes_differ_between_rows() {
        let a = MulHash::row_hash(&7u64, 0);
        let b = MulHash::row_hash(&7u64, 1);
        let c = MulHash::row_hash(&7u64, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn full_64bit_output_no_trivial_fixed_points() {
        assert_ne!(MulHash::hash(&0u64), 0);
        assert_ne!(MulHash::finalize(1), 1);
    }

    #[test]
    fn fold_hasher_handles_unaligned_bytes() {
        let mut h = FoldHasher::default();
        h.write(&[1, 2, 3]);
        let a = h.finish();
        let mut h = FoldHasher::default();
        h.write(&[1, 2, 3, 0]);
        let b = h.finish();
        // Not required to differ in principle, but with this construction
        // trailing zero-padding affects chunk count for len > 8 only; here
        // both are a single chunk and zero-padded equal. Document that:
        assert_eq!(a, b);
        // ...while genuinely different content must differ.
        let mut h = FoldHasher::default();
        h.write(&[3, 2, 1]);
        assert_ne!(a, h.finish());
    }
}
