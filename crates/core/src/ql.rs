//! A small query language for the paper's query examples (§3.2).
//!
//! The paper writes its queries "in a language similar to SQL":
//!
//! ```sql
//! Select S.element From Stream S Where IsElementFrequent(S.element)
//! Select S.element From Stream S Where IsElementFrequent(S.element) Every 0.001s
//! ```
//!
//! This module parses that dialect into the typed query model:
//!
//! * `IsElementFrequent(S.element)` / `IsElementFrequent(S.element, 0.001)`
//!   — frequent-elements set queries (default threshold, or an explicit
//!   fraction / absolute count);
//! * `IsElementInTopk(S.element, 25)` — top-k set queries;
//! * `IsElementFrequent(42)` / `IsElementInTopk(42, 5)` — *point* queries
//!   when the argument is a literal element instead of `S.element`;
//! * an optional `Every <n>` / `Every <x>s` suffix — interval queries
//!   (Query 3), by update count or (for the engines driven by update
//!   counts, as in the paper's evaluation) seconds mapped to updates by
//!   the caller.
//!
//! Parsing is case-insensitive and whitespace-tolerant. The parser is a
//! plain recursive-descent over a hand-rolled tokenizer — no dependencies.

use crate::query::{IntervalQuery, PointQuery, QueryKind, QueryPeriod, SetQuery, Threshold};

/// A parsed statement: what to evaluate and how often.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The query (point or set).
    pub query: QueryKind<u64>,
    /// `Every …` clause, if present.
    pub every: Option<Every>,
}

/// The `Every` clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Every {
    /// `Every 50000` — every n updates.
    Updates(u64),
    /// `Every 0.001s` — every Δt seconds; callers translate to updates
    /// using their expected stream rate.
    Seconds(f64),
}

impl Statement {
    /// Convert into an [`IntervalQuery`], translating a seconds period with
    /// `updates_per_second`. Statements without `Every` become one-shot
    /// interval queries with period 0 (evaluate once, now).
    pub fn to_interval(&self, updates_per_second: f64) -> IntervalQuery<u64> {
        let period = match self.every {
            None => QueryPeriod::Updates(0),
            Some(Every::Updates(n)) => QueryPeriod::Updates(n),
            Some(Every::Seconds(s)) => {
                QueryPeriod::Updates((s * updates_per_second).round().max(1.0) as u64)
            }
        };
        IntervalQuery {
            query: self.query,
            period,
        }
    }
}

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Number(String),
    LParen,
    RParen,
    Comma,
    Dot,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn tokens(mut self) -> Result<Vec<(Token, usize)>, ParseError> {
        let mut out = Vec::new();
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let c = bytes[self.pos] as char;
            let start = self.pos;
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.pos += 1;
                }
                '(' => {
                    out.push((Token::LParen, start));
                    self.pos += 1;
                }
                ')' => {
                    out.push((Token::RParen, start));
                    self.pos += 1;
                }
                ',' => {
                    out.push((Token::Comma, start));
                    self.pos += 1;
                }
                '.' => {
                    out.push((Token::Dot, start));
                    self.pos += 1;
                }
                c if c.is_ascii_digit() => {
                    let mut end = self.pos;
                    let mut seen_dot = false;
                    while end < bytes.len() {
                        let d = bytes[end] as char;
                        if d.is_ascii_digit() {
                            end += 1;
                        } else if d == '.'
                            && !seen_dot
                            && end + 1 < bytes.len()
                            && (bytes[end + 1] as char).is_ascii_digit()
                        {
                            seen_dot = true;
                            end += 1;
                        } else {
                            break;
                        }
                    }
                    out.push((Token::Number(self.src[start..end].to_string()), start));
                    self.pos = end;
                }
                c if c.is_ascii_alphabetic() || c == '_' || c == '%' => {
                    let mut end = self.pos;
                    while end < bytes.len() {
                        let d = bytes[end] as char;
                        if d.is_ascii_alphanumeric() || d == '_' || d == '%' {
                            end += 1;
                        } else {
                            break;
                        }
                    }
                    out.push((Token::Word(self.src[start..end].to_string()), start));
                    self.pos = end;
                }
                other => {
                    return Err(ParseError {
                        message: format!("unexpected character {other:?}"),
                        offset: start,
                    })
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self
                .tokens
                .get(self.pos)
                .map(|&(_, o)| o)
                .unwrap_or(self.len),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_word(&mut self, word: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Word(w)) if w.eq_ignore_ascii_case(word) => Ok(()),
            _ => {
                self.pos -= 1;
                Err(self.error(format!("expected `{word}`")))
            }
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            _ => {
                self.pos -= 1;
                Err(self.error(format!("expected {t:?}")))
            }
        }
    }

    /// `S.element` (set form) or a literal element id (point form).
    fn parse_subject(&mut self) -> Result<Option<u64>, ParseError> {
        match self.next() {
            Some(Token::Word(w)) => {
                // Stream alias: `S . element`
                let _ = w;
                self.expect(Token::Dot)?;
                match self.next() {
                    Some(Token::Word(f)) if f.eq_ignore_ascii_case("element") => Ok(None),
                    _ => {
                        self.pos -= 1;
                        Err(self.error("expected `element` after `.`"))
                    }
                }
            }
            Some(Token::Number(n)) => {
                let v = n
                    .parse::<u64>()
                    .map_err(|_| self.error("element id must be an integer"))?;
                Ok(Some(v))
            }
            _ => {
                self.pos -= 1;
                Err(self.error("expected `S.element` or an element id"))
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => n.parse::<f64>().map_err(|_| self.error("invalid number")),
            _ => {
                self.pos -= 1;
                Err(self.error("expected a number"))
            }
        }
    }

    fn parse_threshold(&mut self) -> Result<Threshold, ParseError> {
        let offset = self.pos;
        let v = self.parse_number()?;
        // Trailing `%` makes a fraction explicit.
        if matches!(self.peek(), Some(Token::Word(w)) if w == "%") {
            self.next();
            return Ok(Threshold::Fraction(v / 100.0));
        }
        if v > 0.0 && v < 1.0 {
            Ok(Threshold::Fraction(v))
        } else if v.fract() == 0.0 && v >= 1.0 {
            Ok(Threshold::Count(v as u64))
        } else {
            self.pos = offset;
            Err(self.error("threshold must be a fraction in (0,1) or a positive integer"))
        }
    }

    /// `IsElementFrequent(subject [, threshold])` or
    /// `IsElementInTopk(subject, k)`.
    fn parse_predicate(&mut self) -> Result<QueryKind<u64>, ParseError> {
        let name = match self.next() {
            Some(Token::Word(w)) => w,
            _ => {
                self.pos -= 1;
                return Err(self.error("expected a predicate"));
            }
        };
        self.expect(Token::LParen)?;
        let subject = self.parse_subject()?;
        if name.eq_ignore_ascii_case("IsElementFrequent") {
            let threshold = if matches!(self.peek(), Some(Token::Comma)) {
                self.next();
                self.parse_threshold()?
            } else {
                // The paper's bare form; ε (1/m) is the natural default —
                // resolved by the engine, encoded here as fraction 0 which
                // `Snapshot::frequent` treats as "everything monitored".
                Threshold::Fraction(0.0)
            };
            self.expect(Token::RParen)?;
            Ok(match subject {
                None => QueryKind::Set(SetQuery::Frequent { threshold }),
                Some(item) => QueryKind::Point(PointQuery::IsFrequent { item, threshold }),
            })
        } else if name.eq_ignore_ascii_case("IsElementInTopk") {
            self.expect(Token::Comma)
                .map_err(|_| self.error("IsElementInTopk requires k"))?;
            let k = self.parse_number()?;
            if k < 1.0 || k.fract() != 0.0 {
                return Err(self.error("k must be a positive integer"));
            }
            self.expect(Token::RParen)?;
            Ok(match subject {
                None => QueryKind::Set(SetQuery::TopK { k: k as usize }),
                Some(item) => QueryKind::Point(PointQuery::IsInTopK {
                    item,
                    k: k as usize,
                }),
            })
        } else {
            Err(self.error(format!("unknown predicate `{name}`")))
        }
    }

    fn parse_every(&mut self) -> Result<Option<Every>, ParseError> {
        if !matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case("every")) {
            return Ok(None);
        }
        self.next();
        let v = self.parse_number()?;
        // `s` suffix ⇒ seconds.
        if matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case("s")) {
            self.next();
            if v <= 0.0 {
                return Err(self.error("period must be positive"));
            }
            return Ok(Some(Every::Seconds(v)));
        }
        if v < 1.0 || v.fract() != 0.0 {
            return Err(self.error("update period must be a positive integer"));
        }
        Ok(Some(Every::Updates(v as u64)))
    }
}

/// Parse a statement of the paper's query dialect.
///
/// # Example
///
/// ```
/// use cots_core::ql;
/// use cots_core::query::{QueryKind, SetQuery};
///
/// let stmt = ql::parse(
///     "Select S.element From Stream S Where IsElementInTopk(S.element, 25) Every 50000",
/// ).unwrap();
/// assert_eq!(stmt.query, QueryKind::Set(SetQuery::TopK { k: 25 }));
/// assert_eq!(stmt.every, Some(ql::Every::Updates(50_000)));
/// ```
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let tokens = Lexer::new(input).tokens()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        len: input.len(),
    };
    p.expect_word("select")?;
    // Projection: `S.element` (we only support the paper's projection).
    p.parse_subject()?;
    p.expect_word("from")?;
    p.expect_word("stream")?;
    // Stream alias.
    match p.next() {
        Some(Token::Word(_)) => {}
        _ => {
            p.pos -= 1;
            return Err(p.error("expected a stream alias"));
        }
    }
    p.expect_word("where")?;
    let query = p.parse_predicate()?;
    let every = p.parse_every()?;
    if p.peek().is_some() {
        return Err(p.error("trailing tokens after statement"));
    }
    Ok(Statement { query, every })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_frequent_set() {
        let s = parse("Select S.element From Stream S Where IsElementFrequent(S.element)").unwrap();
        assert_eq!(
            s.query,
            QueryKind::Set(SetQuery::Frequent {
                threshold: Threshold::Fraction(0.0)
            })
        );
        assert_eq!(s.every, None);
    }

    #[test]
    fn paper_example_interval_seconds() {
        let s =
            parse("Select S.element From Stream S Where IsElementFrequent(S.element) Every 0.001s")
                .unwrap();
        assert_eq!(s.every, Some(Every::Seconds(0.001)));
        let iq = s.to_interval(50_000_000.0);
        assert_eq!(iq.period, QueryPeriod::Updates(50_000));
    }

    #[test]
    fn interval_updates() {
        let s = parse(
            "select s.element from stream s where IsElementFrequent(s.element, 0.001) every 50000",
        )
        .unwrap();
        assert_eq!(s.every, Some(Every::Updates(50_000)));
        assert_eq!(
            s.query,
            QueryKind::Set(SetQuery::Frequent {
                threshold: Threshold::Fraction(0.001)
            })
        );
    }

    #[test]
    fn threshold_forms() {
        let pct =
            parse("Select S.element From Stream S Where IsElementFrequent(S.element, 5%)").unwrap();
        assert_eq!(
            pct.query,
            QueryKind::Set(SetQuery::Frequent {
                threshold: Threshold::Fraction(0.05)
            })
        );
        let abs = parse("Select S.element From Stream S Where IsElementFrequent(S.element, 500)")
            .unwrap();
        assert_eq!(
            abs.query,
            QueryKind::Set(SetQuery::Frequent {
                threshold: Threshold::Count(500)
            })
        );
    }

    #[test]
    fn top_k_set_and_point() {
        let set =
            parse("Select S.element From Stream S Where IsElementInTopk(S.element, 25)").unwrap();
        assert_eq!(set.query, QueryKind::Set(SetQuery::TopK { k: 25 }));
        let point = parse("Select S.element From Stream S Where IsElementInTopk(42, 5)").unwrap();
        assert_eq!(
            point.query,
            QueryKind::Point(PointQuery::IsInTopK { item: 42, k: 5 })
        );
    }

    #[test]
    fn point_frequent_with_literal() {
        let s = parse("Select S.element From Stream S Where IsElementFrequent(7, 0.01)").unwrap();
        assert_eq!(
            s.query,
            QueryKind::Point(PointQuery::IsFrequent {
                item: 7,
                threshold: Threshold::Fraction(0.01)
            })
        );
    }

    #[test]
    fn case_and_whitespace_insensitive() {
        let s = parse("  SELECT  s.ELEMENT  FROM  STREAM  x  WHERE  iselementfrequent(s.element)  EVERY  100  ")
            .unwrap();
        assert_eq!(s.every, Some(Every::Updates(100)));
    }

    #[test]
    fn one_shot_to_interval() {
        let s =
            parse("Select S.element From Stream S Where IsElementInTopk(S.element, 3)").unwrap();
        let iq = s.to_interval(1000.0);
        assert_eq!(iq.period, QueryPeriod::Updates(0));
    }

    #[test]
    fn errors_are_informative() {
        for (input, expect) in [
            ("", "expected `select`"),
            ("Select S.element", "expected `from`"),
            ("Select S.element From Stream S", "expected `where`"),
            (
                "Select S.element From Stream S Where NotAPredicate(S.element)",
                "unknown predicate",
            ),
            (
                "Select S.element From Stream S Where IsElementInTopk(S.element)",
                "requires k",
            ),
            (
                "Select S.element From Stream S Where IsElementFrequent(S.element) Every 0",
                "update period",
            ),
            (
                "Select S.element From Stream S Where IsElementFrequent(S.element) garbage",
                "trailing tokens",
            ),
            (
                "Select S.element From Stream S Where IsElementFrequent(S.element, 2.5)",
                "threshold",
            ),
        ] {
            let err = parse(input).unwrap_err();
            assert!(
                err.message.contains(expect),
                "{input:?}: got {:?}, want substring {expect:?}",
                err.message
            );
        }
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = parse("Select * From Stream S").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn display_error() {
        let err = parse("nope").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("parse error"));
    }
}
