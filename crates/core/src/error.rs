//! Error type for the suite.

use std::fmt;

/// Errors produced by engine construction and the benchmark harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CotsError {
    /// A configuration parameter was out of range.
    InvalidConfig(String),
    /// A run was asked for an unsupported combination (e.g. zero threads).
    InvalidRun(String),
    /// Report serialization / IO failure (message only; the harness maps
    /// `std::io::Error` into this).
    Report(String),
    /// A wire-protocol violation: malformed frame, oversized payload, or a
    /// request/response body that does not decode (`cots-serve`).
    Protocol(String),
}

impl fmt::Display for CotsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CotsError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            CotsError::InvalidRun(m) => write!(f, "invalid run request: {m}"),
            CotsError::Report(m) => write!(f, "report error: {m}"),
            CotsError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for CotsError {}

impl From<std::io::Error> for CotsError {
    fn from(e: std::io::Error) -> Self {
        CotsError::Report(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, CotsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(CotsError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(CotsError::InvalidRun("y".into()).to_string().contains("y"));
        assert!(CotsError::Report("z".into()).to_string().contains("z"));
        assert!(CotsError::Protocol("bad frame".into())
            .to_string()
            .contains("bad frame"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk gone");
        let e: CotsError = io.into();
        assert!(matches!(e, CotsError::Report(_)));
    }
}
