//! The element abstraction satisfied by stream items.
//!
//! The paper counts opaque identifiers (advertisement ids, packet source
//! addresses, …). Engines are generic over any cheap, hashable, thread-safe
//! value; benchmarks instantiate everything with `u64`.

use std::fmt::Debug;
use std::hash::Hash;

/// A stream element that can be monitored by a frequency counter.
///
/// This is a blanket-implemented marker: any `Copy + Eq + Hash` type that can
/// cross thread boundaries qualifies. `Copy` is required because counters
/// store elements inline in their summaries and the concurrent engines move
/// them through lock-free request queues.
pub trait Element: Copy + Eq + Hash + Debug + Send + Sync + 'static {}

impl<T> Element for T where T: Copy + Eq + Hash + Debug + Send + Sync + 'static {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_element<T: Element>() {}

    #[test]
    fn primitives_are_elements() {
        assert_element::<u8>();
        assert_element::<u32>();
        assert_element::<u64>();
        assert_element::<i64>();
        assert_element::<usize>();
        assert_element::<(u32, u32)>();
        assert_element::<[u8; 8]>();
        assert_element::<char>();
    }
}
