//! # cots-core
//!
//! Common vocabulary for the CoTS frequency-counting suite: the element and
//! counter abstractions, the query model of the paper (§3.2), multiplicative
//! hashing, the merge algebra used by the shared-nothing designs, engine
//! configuration, and machine-readable run reports.
//!
//! Every engine in the workspace — the sequential algorithms in
//! `cots-sequential`, the naive parallelizations in `cots-naive`, and the
//! CoTS framework in `cots` — implements the traits defined here, so the
//! benchmark harness and the examples can drive them interchangeably.
//!
//! ## Crate map
//!
//! * [`element`] — the [`Element`](element::Element) trait satisfied by
//!   stream items.
//! * [`hash`] — Knuth multiplicative hashing, the hash family the paper
//!   recommends for the search structure.
//! * [`counter`] — [`CounterEntry`](counter::CounterEntry) (item, count,
//!   error) and [`Snapshot`](counter::Snapshot), the sorted summary view all
//!   engines can export.
//! * [`merge`] — the Space-Saving merge algebra used by the
//!   independent-structures design.
//! * [`query`] — Queries 1–4 of the paper: point/set × one-shot/interval.
//! * [`ql`] — a parser for the paper's SQL-like query dialect
//!   (`Select S.element From Stream S Where … Every …`).
//! * [`traits`] — [`FrequencyCounter`](traits::FrequencyCounter) (sequential
//!   engines) and [`ConcurrentCounter`](traits::ConcurrentCounter) (shared
//!   engines).
//! * [`config`] — capacity/ε configuration shared by all engines.
//! * [`report`] — JSON-serializable run statistics and hardware-independent
//!   work counters.
//! * [`json`] — the dependency-free JSON model those reports serialize
//!   through ([`ToJson`](json::ToJson) / [`FromJson`](json::FromJson)).
//! * [`error`] — the crate error type.
//! * [`invariants`] — structural self-auditing for summary structures
//!   (feature `invariants`, on by default).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod config;
pub mod counter;
pub mod element;
pub mod error;
pub mod hash;
#[cfg(feature = "invariants")]
pub mod invariants;
pub mod json;
pub mod merge;
pub mod ql;
pub mod query;
pub mod report;
pub mod traits;

pub use config::{CotsConfig, SummaryConfig};
pub use counter::{CounterEntry, Snapshot};
pub use element::Element;
pub use error::{CotsError, Result};
pub use hash::MulHash;
#[cfg(feature = "invariants")]
pub use invariants::{CheckInvariants, Violation};
pub use json::{FromJson, Json, ToJson};
pub use query::{PointQuery, QueryAnswer, SetQuery, Threshold};
pub use report::{
    ClusterReport, MemberReport, PersistReport, RecoveryReport, ReplReport, RunStats,
    ServiceReport, ShardReport, WorkCounters,
};
pub use traits::{ConcurrentCounter, FrequencyCounter, QueryableSummary};
