//! Structural-invariant auditing (the `invariants` feature, on by default).
//!
//! Every summary structure in the suite maintains a frequency-sorted bucket
//! list with doubly-linked element lists hanging off it; the concurrent
//! engine adds tombstones and deferred bucket GC on top. This module gives
//! them a common vocabulary for *auditing* that structure: a
//! [`CheckInvariants`] implementor walks itself and reports every violated
//! invariant as a [`Violation`] instead of asserting on the first one, so a
//! failing stress test prints the complete damage, not just the first
//! symptom.
//!
//! Checks are exhaustive walks — O(elements) or worse — and are meant for
//! tests and debugging barriers, not steady-state production use. That, and
//! nothing else, is why the module is feature-gated: disabling the
//! `invariants` feature removes the auditing API surface, never any
//! behavior.

use std::fmt;

/// One violated structural invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable short name of the invariant, e.g. `"bucket-order"`.
    pub invariant: &'static str,
    /// Human-readable description of the violating state.
    pub detail: String,
}

impl Violation {
    /// Construct a violation of `invariant` described by `detail`.
    pub fn new(invariant: &'static str, detail: impl Into<String>) -> Self {
        Self {
            invariant,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Structures that can audit their own internal consistency.
pub trait CheckInvariants {
    /// Walk the structure and collect every violated invariant.
    ///
    /// An empty vector means the structure is consistent. Implementations
    /// must not panic on inconsistent state — the point is to report it.
    fn violations(&self) -> Vec<Violation>;

    /// Panic with a readable multi-line report if any invariant is
    /// violated.
    ///
    /// This is the form tests call at barriers:
    /// `engine.validate();`.
    ///
    /// # Panics
    /// If [`CheckInvariants::violations`] is non-empty.
    fn validate(&self) {
        let violations = self.violations();
        if !violations.is_empty() {
            let mut msg = format!("{} structural invariant(s) violated:\n", violations.len());
            for v in &violations {
                msg.push_str(&format!("  {v}\n"));
            }
            panic!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysOk;
    impl CheckInvariants for AlwaysOk {
        fn violations(&self) -> Vec<Violation> {
            Vec::new()
        }
    }

    struct Broken;
    impl CheckInvariants for Broken {
        fn violations(&self) -> Vec<Violation> {
            vec![
                Violation::new("bucket-order", "freq 3 follows freq 5"),
                Violation::new("len-field", "bucket says 2, found 1"),
            ]
        }
    }

    #[test]
    fn validate_passes_when_consistent() {
        AlwaysOk.validate();
    }

    #[test]
    fn validate_reports_all_violations() {
        let err = std::panic::catch_unwind(|| Broken.validate()).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("2 structural invariant(s)"));
        assert!(msg.contains("[bucket-order]"));
        assert!(msg.contains("[len-field]"));
    }

    #[test]
    fn violation_display() {
        let v = Violation::new("backpointer", "node 4 points at bucket 9");
        assert_eq!(v.to_string(), "[backpointer] node 4 points at bucket 9");
    }
}
