//! Engine configuration.
//!
//! All counter-based engines share the [`SummaryConfig`]: a counter budget
//! `m`, derivable from the ε error bound as `m = ceil(1/ε)` (Space Saving
//! monitors O(1/ε) counters for an ε-deviant answer, §3.3). The CoTS engine
//! additionally takes a [`CotsConfig`] describing the search structure and
//! the cooperative scheduler.

use crate::error::{CotsError, Result};
use crate::json::{FromJson, Json, JsonResult, ToJson};

/// Counter budget configuration shared by every counter-based algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryConfig {
    /// Maximum number of monitored counters (`m`).
    pub capacity: usize,
}

impl SummaryConfig {
    /// Configure from an explicit counter budget.
    pub fn with_capacity(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(CotsError::InvalidConfig("capacity must be positive".into()));
        }
        Ok(Self { capacity })
    }

    /// Configure from an error bound ε: `m = ceil(1/ε)`.
    pub fn with_epsilon(epsilon: f64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CotsError::InvalidConfig(format!(
                "epsilon must be in (0, 1), got {epsilon}"
            )));
        }
        Ok(Self {
            capacity: (1.0 / epsilon).ceil() as usize,
        })
    }

    /// The error bound this budget guarantees: ε = 1/m.
    pub fn epsilon(&self) -> f64 {
        1.0 / self.capacity as f64
    }
}

/// Configuration of the CoTS framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CotsConfig {
    /// Counter budget.
    pub summary: SummaryConfig,
    /// log2 of the number of hash buckets in the search structure. The
    /// paper sizes the table so it never resizes; the default gives a load
    /// factor of at most ~0.5 for the configured capacity.
    pub hash_bits: u32,
    /// Entries per cache-conscious block in a hash chain (a block is sized
    /// to a multiple of the cache line; 4 entries ≈ 64 bytes of key/metadata
    /// per block on x86-64).
    pub block_entries: usize,
    /// Optional adaptive thread scheduling thresholds (§5.2.3). `None`
    /// disables adaptation — the configuration the paper's experiments use.
    pub adaptive: Option<AdaptiveConfig>,
    /// Slots in the per-thread combining front-end that pre-aggregates
    /// `(key, count)` pairs inside `delegate_batch` before they touch the
    /// shared search structure. Must be a power of two; `0` disables the
    /// front-end (every occurrence then pays its own table operation).
    pub combiner_slots: usize,
}

/// Queue-occupancy thresholds for dynamic auto configuration (§5.2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// σ: when a bucket queue grows beyond this while a thread enqueues,
    /// the scheduler parks surplus threads back into the pool.
    pub sigma: usize,
    /// ρ: when an *unowned* bucket queue exceeds this, the scheduler wakes a
    /// pooled thread to drain it.
    pub rho: usize,
}

impl CotsConfig {
    /// Default capacity of the combining front-end: large enough to hold
    /// the hot head of a skewed stream, small enough to stay L1-resident
    /// (128 slots ≈ 3 KiB of scratch for `u64` keys).
    pub const DEFAULT_COMBINER_SLOTS: usize = 128;

    /// A reasonable configuration for the given counter budget: table sized
    /// to the next power of two at least `2 * capacity`, 4-entry blocks,
    /// no adaptation, combining front-end on.
    pub fn for_capacity(capacity: usize) -> Result<Self> {
        let summary = SummaryConfig::with_capacity(capacity)?;
        let hash_bits = (2 * capacity.max(2)).next_power_of_two().trailing_zeros();
        Ok(Self {
            summary,
            hash_bits,
            block_entries: 4,
            adaptive: None,
            combiner_slots: Self::DEFAULT_COMBINER_SLOTS,
        })
    }

    /// Enable adaptive scheduling with the given thresholds.
    pub fn with_adaptive(mut self, sigma: usize, rho: usize) -> Self {
        self.adaptive = Some(AdaptiveConfig { sigma, rho });
        self
    }

    /// Set the combining front-end capacity (rounded up to a power of two;
    /// `0` disables the front-end).
    pub fn with_combiner_slots(mut self, slots: usize) -> Self {
        self.combiner_slots = if slots == 0 {
            0
        } else {
            slots.next_power_of_two()
        };
        self
    }

    /// Disable the combining front-end (ablation / strict paper mode).
    pub fn without_combiner(mut self) -> Self {
        self.combiner_slots = 0;
        self
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.hash_bits == 0 || self.hash_bits > 32 {
            return Err(CotsError::InvalidConfig(format!(
                "hash_bits must be in 1..=32, got {}",
                self.hash_bits
            )));
        }
        if self.block_entries == 0 {
            return Err(CotsError::InvalidConfig(
                "block_entries must be positive".into(),
            ));
        }
        if let Some(a) = self.adaptive {
            if a.rho == 0 || a.sigma == 0 {
                return Err(CotsError::InvalidConfig(
                    "adaptive thresholds must be positive".into(),
                ));
            }
        }
        if self.combiner_slots != 0 && !self.combiner_slots.is_power_of_two() {
            return Err(CotsError::InvalidConfig(format!(
                "combiner_slots must be 0 or a power of two, got {}",
                self.combiner_slots
            )));
        }
        if self.combiner_slots > 1 << 20 {
            return Err(CotsError::InvalidConfig(
                "combiner_slots above 2^20 would thrash the cache it exists to protect".into(),
            ));
        }
        Ok(())
    }

    /// Number of hash buckets.
    pub fn hash_buckets(&self) -> usize {
        1usize << self.hash_bits
    }
}

impl ToJson for SummaryConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![("capacity", self.capacity.to_json())])
    }
}

impl FromJson for SummaryConfig {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            capacity: usize::from_json(v.field("capacity")?)?,
        })
    }
}

impl ToJson for AdaptiveConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("sigma", self.sigma.to_json()),
            ("rho", self.rho.to_json()),
        ])
    }
}

impl FromJson for AdaptiveConfig {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            sigma: usize::from_json(v.field("sigma")?)?,
            rho: usize::from_json(v.field("rho")?)?,
        })
    }
}

impl ToJson for CotsConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("summary", self.summary.to_json()),
            ("hash_bits", self.hash_bits.to_json()),
            ("block_entries", self.block_entries.to_json()),
            ("adaptive", self.adaptive.to_json()),
            ("combiner_slots", self.combiner_slots.to_json()),
        ])
    }
}

impl FromJson for CotsConfig {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            summary: SummaryConfig::from_json(v.field("summary")?)?,
            hash_bits: u32::from_json(v.field("hash_bits")?)?,
            block_entries: usize::from_json(v.field("block_entries")?)?,
            adaptive: Option::from_json(v.field("adaptive")?)?,
            // Absent in configs serialized before the combining front-end
            // existed; those streams ran without one.
            combiner_slots: match v.field("combiner_slots") {
                Ok(f) => usize::from_json(f)?,
                Err(_) => 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_from_epsilon() {
        let c = SummaryConfig::with_epsilon(0.001).unwrap();
        assert_eq!(c.capacity, 1000);
        assert!((c.epsilon() - 0.001).abs() < 1e-12);
        let c = SummaryConfig::with_epsilon(0.0003).unwrap();
        assert_eq!(c.capacity, 3334);
    }

    #[test]
    fn rejects_bad_epsilon_and_capacity() {
        assert!(SummaryConfig::with_epsilon(0.0).is_err());
        assert!(SummaryConfig::with_epsilon(1.0).is_err());
        assert!(SummaryConfig::with_epsilon(-0.5).is_err());
        assert!(SummaryConfig::with_capacity(0).is_err());
    }

    #[test]
    fn cots_config_sizing() {
        let c = CotsConfig::for_capacity(1000).unwrap();
        assert!(c.hash_buckets() >= 2000);
        assert!(c.hash_buckets().is_power_of_two());
        c.validate().unwrap();
    }

    #[test]
    fn cots_config_validation() {
        let mut c = CotsConfig::for_capacity(10).unwrap();
        c.hash_bits = 0;
        assert!(c.validate().is_err());
        let mut c = CotsConfig::for_capacity(10).unwrap();
        c.block_entries = 0;
        assert!(c.validate().is_err());
        let c = CotsConfig::for_capacity(10).unwrap().with_adaptive(0, 1);
        assert!(c.validate().is_err());
        let c = CotsConfig::for_capacity(10).unwrap().with_adaptive(64, 8);
        assert!(c.validate().is_ok());
        let mut c = CotsConfig::for_capacity(10).unwrap();
        c.combiner_slots = 100; // not a power of two
        assert!(c.validate().is_err());
        c.combiner_slots = 1 << 21; // absurdly large
        assert!(c.validate().is_err());
    }

    #[test]
    fn combiner_defaults_and_builders() {
        let c = CotsConfig::for_capacity(100).unwrap();
        assert_eq!(c.combiner_slots, CotsConfig::DEFAULT_COMBINER_SLOTS);
        let c = c.with_combiner_slots(100); // rounds up to a power of two
        assert_eq!(c.combiner_slots, 128);
        c.validate().unwrap();
        let c = c.without_combiner();
        assert_eq!(c.combiner_slots, 0);
        c.validate().unwrap();
        let c = c.with_combiner_slots(0);
        assert_eq!(c.combiner_slots, 0);
    }

    #[test]
    fn combiner_slots_json_defaults_when_absent() {
        // Configs serialized before the front-end existed parse as "off".
        let legacy = r#"{"summary":{"capacity":10},"hash_bits":5,"block_entries":4,"adaptive":null}"#;
        let c: CotsConfig = crate::json::from_str(legacy).unwrap();
        assert_eq!(c.combiner_slots, 0);
    }

    #[test]
    fn json_round_trip() {
        for c in [
            CotsConfig::for_capacity(1000).unwrap(),
            CotsConfig::for_capacity(10).unwrap().with_adaptive(64, 8),
        ] {
            let s = crate::json::to_string(&c);
            let back: CotsConfig = crate::json::from_str(&s).unwrap();
            assert_eq!(c, back);
        }
    }

    #[test]
    fn tiny_capacity_still_valid() {
        let c = CotsConfig::for_capacity(1).unwrap();
        c.validate().unwrap();
        assert!(c.hash_buckets() >= 4);
    }
}
