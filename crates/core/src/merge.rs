//! The merge algebra for counter-based summaries.
//!
//! The independent-structures design (shared-nothing) runs one Space Saving
//! instance per thread over a partition of the stream and must merge the
//! local summaries to answer a query. Merging uses the standard Space-Saving
//! combination rule: for every element in the union of monitored sets, sum
//! the per-partition estimates, substituting a partition's *minimum count*
//! (an upper bound on any unmonitored element's frequency in that partition,
//! and simultaneously the error of that substitution) when the element is not
//! monitored there. The result is truncated back to the `m` largest counters.
//!
//! The merged entries satisfy the same contract as a single summary:
//! `count >= true_total >= count - error`.
//!
//! AUDIT: total

use std::collections::HashMap;

use crate::counter::{CounterEntry, Snapshot};
use crate::element::Element;

/// The "unmonitored mass" bound a summary contributes for elements it does
/// not monitor: its minimum count when it is at capacity, zero otherwise
/// (a non-full summary has seen *every* distinct element of its partition,
/// so an absent element truly has frequency zero there).
pub fn absent_bound<K: Element>(snapshot: &Snapshot<K>, capacity: usize) -> u64 {
    if snapshot.len() >= capacity {
        snapshot.entries().last().map(|e| e.count).unwrap_or(0)
    } else {
        0
    }
}

/// The absent-element bound of a federated merge: the summed
/// [`absent_bound`] of every input. An element monitored by *no* input
/// may still have occurred up to this many times across all partitions;
/// it is therefore the worst-case count (and error) the merge assigns
/// to any element it had to synthesize bounds for, and the honest
/// "how wrong can a miss be" figure a coordinator should report
/// alongside federated answers.
pub fn combined_absent_bound<K: Element>(snapshots: &[Snapshot<K>], capacity: usize) -> u64 {
    snapshots.iter().map(|s| absent_bound(s, capacity)).sum()
}

/// Merge any number of snapshots into a single summary of at most
/// `capacity` counters.
///
/// This is the *serial merge* primitive; the hierarchical merge of the
/// independent design is built by applying it pairwise along a tree.
pub fn merge_snapshots<K: Element>(snapshots: &[Snapshot<K>], capacity: usize) -> Snapshot<K> {
    // PANIC-OK: a zero-capacity merge is a caller bug, not a data-dependent
    // condition — no byte stream reaches this branch; the contract is tested
    // by `zero_capacity_panics`.
    assert!(capacity > 0, "merge capacity must be positive");
    let bounds: Vec<u64> = snapshots
        .iter()
        .map(|s| absent_bound(s, capacity))
        .collect();
    let total: u64 = snapshots.iter().map(|s| s.total()).sum();
    // Upper bound contributed by *all* partitions for a completely absent
    // element; subtracting a partition's own bound yields the substitution
    // for elements absent from just that partition.
    let all_bounds: u64 = bounds.iter().sum();

    let mut merged: HashMap<K, CounterEntry<K>> = HashMap::new();
    for (snapshot, &bound) in snapshots.iter().zip(&bounds) {
        for e in snapshot.entries() {
            merged
                .entry(e.item)
                .and_modify(|m| {
                    // Replace this partition's absent-bound contribution
                    // with its real estimate.
                    m.count = m.count - bound + e.count;
                    m.error = m.error - bound + e.error;
                })
                .or_insert_with(|| {
                    // Start from "absent everywhere", then add this
                    // partition's real estimate in place of its bound.
                    CounterEntry::new(
                        e.item,
                        all_bounds - bound + e.count,
                        all_bounds - bound + e.error,
                    )
                });
        }
    }

    let mut entries: Vec<CounterEntry<K>> = merged.into_values().collect();
    entries.sort_by_key(|e| std::cmp::Reverse(e.count));
    entries.truncate(capacity);
    Snapshot::from_sorted(entries, total)
}

/// Merge two snapshots; convenience wrapper used by hierarchical merging.
pub fn merge_pair<K: Element>(a: &Snapshot<K>, b: &Snapshot<K>, capacity: usize) -> Snapshot<K> {
    merge_snapshots(&[a.clone(), b.clone()], capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(u64, u64, u64)], total: u64) -> Snapshot<u64> {
        Snapshot::new(
            entries
                .iter()
                .map(|&(i, c, e)| CounterEntry::new(i, c, e))
                .collect(),
            total,
        )
    }

    #[test]
    fn merge_disjoint_not_full() {
        // Both summaries have room (capacity 10, 2 entries each): absent
        // bound is 0 and the merge is an exact union.
        let a = snap(&[(1, 5, 0), (2, 3, 0)], 8);
        let b = snap(&[(3, 4, 0), (4, 1, 0)], 5);
        let m = merge_snapshots(&[a, b], 10);
        assert_eq!(m.total(), 13);
        assert_eq!(m.get(&1).unwrap().count, 5);
        assert_eq!(m.get(&3).unwrap().count, 4);
        assert_eq!(m.get(&3).unwrap().error, 0);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn merge_overlapping_sums_counts_and_errors() {
        let a = snap(&[(1, 5, 1), (2, 3, 0)], 8);
        let b = snap(&[(1, 7, 2), (3, 2, 0)], 9);
        let m = merge_snapshots(&[a, b], 10);
        let e1 = m.get(&1).unwrap();
        assert_eq!(e1.count, 12);
        assert_eq!(e1.error, 3);
    }

    #[test]
    fn merge_full_summary_contributes_min_bound() {
        // `a` is at capacity (2 entries, capacity 2) with min count 3:
        // elements absent from `a` may have occurred up to 3 times in a's
        // partition, so element 3's merged bound is 2 + 3 with error 3.
        let a = snap(&[(1, 5, 0), (2, 3, 0)], 8);
        let b = snap(&[(3, 2, 0)], 2);
        let m = merge_snapshots(&[a, b], 2);
        // Capacity 2 keeps the two largest: item 1 (count 5) and item 3
        // (count 5 = 2+3)? item 2 has count 3 + 0 = 3. Order: 1 (5), 3 (5).
        assert_eq!(m.len(), 2);
        let e3 = m.get(&3).unwrap();
        assert_eq!(e3.count, 5);
        assert_eq!(e3.error, 3);
        assert_eq!(e3.guaranteed(), 2);
    }

    #[test]
    fn merged_bounds_are_sound_for_true_frequencies() {
        // Partition A stream: [1,1,1,2,2,3]; capacity-2 Space-Saving-style
        // summary: {1:3, 2:2}? A full summary's semantics: count over-
        // estimates. We hand-construct sound summaries and check the merge
        // keeps soundness for every element.
        // True totals: 1 -> 5, 2 -> 4, 3 -> 3.
        let a = snap(&[(1, 3, 0), (2, 2, 0)], 6); // full at capacity 2, min 2
        let b = snap(&[(1, 2, 0), (3, 3, 1)], 6); // full at capacity 2, min 2
        let m = merge_snapshots(&[a, b], 3);
        let truth = [(1u64, 5u64), (3, 3)];
        for (item, t) in truth {
            let e = m.get(&item).unwrap();
            assert!(e.count >= t, "count {} < true {} for {}", e.count, t, item);
            assert!(
                e.guaranteed() <= t,
                "guarantee {} > true {} for {}",
                e.guaranteed(),
                t,
                item
            );
        }
    }

    #[test]
    fn merge_totals_accumulate() {
        let a = snap(&[(1, 1, 0)], 1);
        let b = snap(&[(2, 1, 0)], 1);
        let c = snap(&[(3, 1, 0)], 1);
        let m = merge_snapshots(&[a, b, c], 8);
        assert_eq!(m.total(), 3);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn merge_empty_inputs() {
        let m: Snapshot<u64> = merge_snapshots(&[], 4);
        assert!(m.is_empty());
        assert_eq!(m.total(), 0);
        let a = snap(&[], 0);
        let b = snap(&[(1, 2, 0)], 2);
        let m = merge_snapshots(&[a, b], 4);
        assert_eq!(m.get(&1).unwrap().count, 2);
    }

    #[test]
    fn pairwise_tree_equals_flat_merge_when_not_truncating() {
        let a = snap(&[(1, 5, 0), (2, 3, 0)], 8);
        let b = snap(&[(1, 1, 0), (3, 2, 0)], 3);
        let c = snap(&[(4, 9, 2)], 9);
        let d = snap(&[(2, 2, 1)], 2);
        let cap = 16; // large enough that truncation never happens
        let flat = merge_snapshots(&[a.clone(), b.clone(), c.clone(), d.clone()], cap);
        let left = merge_pair(&a, &b, cap);
        let right = merge_pair(&c, &d, cap);
        let tree = merge_pair(&left, &right, cap);
        for e in flat.entries() {
            let t = tree.get(&e.item).unwrap();
            assert_eq!((t.count, t.error), (e.count, e.error), "item {}", e.item);
        }
        assert_eq!(flat.total(), tree.total());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = merge_snapshots::<u64>(&[], 0);
    }

    #[test]
    fn combined_absent_bound_sums_full_summaries_only() {
        let full = snap(&[(1, 5, 0), (2, 3, 0)], 8); // at capacity 2, min 3
        let roomy = snap(&[(3, 9, 0)], 9); // below capacity: bound 0
        assert_eq!(combined_absent_bound(&[full.clone()], 2), 3);
        assert_eq!(combined_absent_bound(&[full.clone(), roomy.clone()], 2), 3);
        assert_eq!(combined_absent_bound(&[roomy], 2), 0);
        assert_eq!(combined_absent_bound::<u64>(&[], 2), 0);
        // Mirrors what the merge itself charges a fully absent element.
        let other = snap(&[(7, 4, 0), (8, 2, 0)], 6); // full at 2, min 2
        let m = merge_snapshots(&[full.clone(), other.clone()], 4);
        let bound = combined_absent_bound(&[full, other], 2);
        assert_eq!(bound, 5);
        // Item 8 is absent from `full`: its merged count carries full's
        // bound (3) on top of its own estimate (2) = 5 ≤ 2 + bound.
        assert!(m.get(&8).unwrap().count <= 2 + bound);
    }
}
