//! Run statistics and hardware-independent work counters.
//!
//! The paper reports wall-clock execution times on a quad-core machine. This
//! reproduction runs on whatever hardware it is given (a single-core
//! container in the reference environment), so alongside wall-clock numbers
//! every engine also accumulates *work counters* — counts of the logical
//! operations whose frequency the paper's arguments are actually about
//! (summary operations saved by bulk increments, lock hand-offs, merge
//! volume). These reproduce the qualitative claims deterministically,
//! independent of the core count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::{FromJson, Json, JsonResult, ToJson};

/// Plain, serializable work-counter totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Stream elements processed.
    pub elements: u64,
    /// Operations applied to a stream-summary structure (add / increment /
    /// overwrite executions, bulk or not).
    pub summary_ops: u64,
    /// Times a thread crossed the search-structure → summary boundary with
    /// exclusive rights on an element (CoTS) or entered the summary under
    /// locks (naive shared).
    pub boundary_crossings: u64,
    /// Delegation actions that logged mass with the element's current
    /// owner instead of crossing the boundary (CoTS) — the "bulk
    /// increment" sources. A combining-front-end flush logs its whole
    /// aggregate as *one* action; the occurrences beyond the first are
    /// counted in [`WorkCounters::combined_increments`], so
    /// `boundary_crossings + delegated_increments + combined_increments`
    /// partitions `elements` exactly.
    pub delegated_increments: u64,
    /// Stream occurrences absorbed by the thread-local combining front-end
    /// before ever touching the shared search structure (occurrences beyond
    /// the first per distinct key per flush window).
    pub combined_increments: u64,
    /// Aggregated `(key, count)` flushes the combining front-end pushed
    /// through the delegation protocol.
    pub combiner_flushes: u64,
    /// Requests delegated at bucket level (enqueued for another owner).
    pub delegated_requests: u64,
    /// Lock acquisitions (naive shared design; hash-bucket insert locks in
    /// CoTS).
    pub lock_acquisitions: u64,
    /// Lock acquisitions that observed contention (had to wait/spin).
    pub lock_contentions: u64,
    /// Merge operations executed (independent design).
    pub merges: u64,
    /// Counters examined across all merges.
    pub merged_counters: u64,
    /// Lock-free read traversals that had to abort and restart.
    pub read_restarts: u64,
    /// Frequency buckets garbage-collected.
    pub gc_buckets: u64,
    /// Overwrite operations executed (Space Saving eviction).
    pub overwrites: u64,
    /// Overwrite requests deferred because every candidate was busy.
    pub overwrite_deferrals: u64,
}

impl WorkCounters {
    /// Average number of stream increments covered by one boundary
    /// crossing: `elements / boundary_crossings`. A combining factor of 1
    /// means no cooperation happened; large factors are the mechanism behind
    /// the paper's super-linear scaling for skewed data (§6).
    pub fn combining_factor(&self) -> f64 {
        if self.boundary_crossings == 0 {
            return 1.0;
        }
        self.elements as f64 / self.boundary_crossings as f64
    }

    /// Boundary crossings per processed element — the shared-structure
    /// pressure each stream element exerts; the inverse of the combining
    /// factor, and the primary metric the perf gate tracks.
    pub fn crossings_per_element(&self) -> f64 {
        if self.elements == 0 {
            return 0.0;
        }
        self.boundary_crossings as f64 / self.elements as f64
    }

    /// Summary operations per processed element — the work the summary
    /// structure actually absorbed.
    pub fn summary_ops_per_element(&self) -> f64 {
        if self.elements == 0 {
            return 0.0;
        }
        self.summary_ops as f64 / self.elements as f64
    }

    /// Merge two totals (e.g. across threads).
    pub fn merge(&mut self, other: &WorkCounters) {
        self.elements += other.elements;
        self.summary_ops += other.summary_ops;
        self.boundary_crossings += other.boundary_crossings;
        self.delegated_increments += other.delegated_increments;
        self.combined_increments += other.combined_increments;
        self.combiner_flushes += other.combiner_flushes;
        self.delegated_requests += other.delegated_requests;
        self.lock_acquisitions += other.lock_acquisitions;
        self.lock_contentions += other.lock_contentions;
        self.merges += other.merges;
        self.merged_counters += other.merged_counters;
        self.read_restarts += other.read_restarts;
        self.gc_buckets += other.gc_buckets;
        self.overwrites += other.overwrites;
        self.overwrite_deferrals += other.overwrite_deferrals;
    }
}

/// Shared, thread-safe tally of work counters.
///
/// Engines hold one `WorkTally` and bump it from any thread with relaxed
/// atomics (the counts are statistics, not synchronization); `snapshot`
/// freezes the totals.
#[derive(Debug, Default)]
pub struct WorkTally {
    elements: AtomicU64,
    summary_ops: AtomicU64,
    boundary_crossings: AtomicU64,
    delegated_increments: AtomicU64,
    combined_increments: AtomicU64,
    combiner_flushes: AtomicU64,
    delegated_requests: AtomicU64,
    lock_acquisitions: AtomicU64,
    lock_contentions: AtomicU64,
    merges: AtomicU64,
    merged_counters: AtomicU64,
    read_restarts: AtomicU64,
    gc_buckets: AtomicU64,
    overwrites: AtomicU64,
    overwrite_deferrals: AtomicU64,
}

macro_rules! bump {
    ($($name:ident),* $(,)?) => {
        $(
            /// Add `n` to the corresponding counter.
            #[inline]
            pub fn $name(&self, n: u64) {
                self.$name.fetch_add(n, Ordering::Relaxed);
            }
        )*
    };
}

impl WorkTally {
    /// Fresh tally with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    bump!(
        elements,
        summary_ops,
        boundary_crossings,
        delegated_increments,
        combined_increments,
        combiner_flushes,
        delegated_requests,
        lock_acquisitions,
        lock_contentions,
        merges,
        merged_counters,
        read_restarts,
        gc_buckets,
        overwrites,
        overwrite_deferrals,
    );

    /// Freeze the totals.
    pub fn snapshot(&self) -> WorkCounters {
        WorkCounters {
            elements: self.elements.load(Ordering::Relaxed),
            summary_ops: self.summary_ops.load(Ordering::Relaxed),
            boundary_crossings: self.boundary_crossings.load(Ordering::Relaxed),
            delegated_increments: self.delegated_increments.load(Ordering::Relaxed),
            combined_increments: self.combined_increments.load(Ordering::Relaxed),
            combiner_flushes: self.combiner_flushes.load(Ordering::Relaxed),
            delegated_requests: self.delegated_requests.load(Ordering::Relaxed),
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            lock_contentions: self.lock_contentions.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            merged_counters: self.merged_counters.load(Ordering::Relaxed),
            read_restarts: self.read_restarts.load(Ordering::Relaxed),
            gc_buckets: self.gc_buckets.load(Ordering::Relaxed),
            overwrites: self.overwrites.load(Ordering::Relaxed),
            overwrite_deferrals: self.overwrite_deferrals.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of one measured engine run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Engine label ("sequential", "shared-mutex", "independent-serial",
    /// "cots", …).
    pub engine: String,
    /// Number of worker threads.
    pub threads: usize,
    /// Stream length processed.
    pub elements: u64,
    /// Wall-clock duration of the counting phase. Serialized as fractional
    /// seconds, matching the paper's tables.
    pub elapsed: Duration,
    /// Logical work performed.
    pub work: WorkCounters,
}

impl RunStats {
    /// Elements per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.elements as f64 / secs
    }

    /// Speed-up of this run relative to a baseline run.
    pub fn speedup_vs(&self, baseline: &RunStats) -> f64 {
        let own = self.elapsed.as_secs_f64();
        if own == 0.0 {
            return f64::INFINITY;
        }
        baseline.elapsed.as_secs_f64() / own
    }
}

macro_rules! counters_json {
    ($($field:ident),* $(,)?) => {
        impl ToJson for WorkCounters {
            fn to_json(&self) -> Json {
                Json::obj(vec![
                    $((stringify!($field), self.$field.to_json()),)*
                ])
            }
        }

        impl FromJson for WorkCounters {
            fn from_json(v: &Json) -> JsonResult<Self> {
                Ok(Self {
                    $($field: u64::from_json(v.field(stringify!($field))?)?,)*
                })
            }
        }
    };
}

counters_json!(
    elements,
    summary_ops,
    boundary_crossings,
    delegated_increments,
    combined_increments,
    combiner_flushes,
    delegated_requests,
    lock_acquisitions,
    lock_contentions,
    merges,
    merged_counters,
    read_restarts,
    gc_buckets,
    overwrites,
    overwrite_deferrals,
);

/// Per-shard ingest progress of the `cots-serve` pipeline, reported in
/// `STATS` responses and the service benchmark artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index (0-based).
    pub shard: usize,
    /// Ingest batches drained from this shard's queues.
    pub batches: u64,
    /// Keys applied to the backend by this shard's worker.
    pub keys: u64,
    /// High-water mark of queued batches observed by the worker.
    pub max_queue_depth: u64,
    /// Times the worker parked because every queue was empty.
    pub idle_parks: u64,
}

/// What one crash-recovery pass found and restored (`cots-persist`).
///
/// Every count here is conservative by construction: `replayed_items`
/// covers only WAL records whose CRC verified, and `torn_frames` /
/// `dropped_bytes` quantify the tail that was *not* restored. The
/// recovered summary therefore never over-reports durable data — any
/// answer it gives is within the usual Space-Saving envelope of the
/// `recovered_items`-item durable multiset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// WAL sequence watermark of the checkpoint recovery started from
    /// (`None` when no valid checkpoint was found and recovery replayed
    /// the WAL from sequence 0).
    pub checkpoint_watermark: Option<u64>,
    /// Stream items contained in the restored checkpoint.
    pub base_items: u64,
    /// WAL batches replayed on top of the checkpoint.
    pub replayed_batches: u64,
    /// Stream items replayed from the WAL.
    pub replayed_items: u64,
    /// Total durable items after recovery (`base_items + replayed_items`).
    pub recovered_items: u64,
    /// WAL segment files scanned.
    pub segments_scanned: u64,
    /// Bytes examined across checkpoint and WAL files.
    pub bytes_scanned: u64,
    /// Torn or corrupt frames encountered (each ends one segment's valid
    /// prefix; everything after it in that segment is dropped).
    pub torn_frames: u64,
    /// Bytes discarded as unreadable (torn tails, bad magic, CRC
    /// mismatches).
    pub dropped_bytes: u64,
    /// Checkpoint files that failed CRC or semantic validation and were
    /// skipped in favour of an older one.
    pub corrupt_checkpoints: u64,
    /// Wall-clock seconds the recovery pipeline took (scan + replay).
    pub elapsed_secs: f64,
}

/// Live persistence-pipeline counters for a `cots-serve` instance running
/// with `--data-dir`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PersistReport {
    /// Checkpoints committed (atomic rename completed) since start.
    pub checkpoints: u64,
    /// WAL sequence watermark of the newest committed checkpoint.
    pub last_watermark: u64,
    /// Batch records appended to the WAL.
    pub wal_records: u64,
    /// Stream keys appended to the WAL.
    pub wal_keys: u64,
    /// Bytes appended to the WAL (framing included).
    pub wal_bytes: u64,
    /// Group commits that reached `fsync` (policy `always`, plus the
    /// barrier sync before every checkpoint).
    pub wal_syncs: u64,
    /// WAL or checkpoint I/O errors absorbed (logged, never fatal to
    /// ingest).
    pub io_errors: u64,
}

/// Live replication state of one member of a primary/standby pair
/// (`cots-repl`), reported in `STATS` responses.
///
/// On a primary the counters describe the WAL shipper: batches tailed
/// from the local log and streamed to the standby, and the ack
/// watermark the standby has confirmed durable. `unacked_keys` is the
/// loss bound of this instant: if the primary dies *right now*, the
/// promoted standby is missing exactly the keys logged locally past
/// `acked_seq` — no more, no less. On a standby the same counters
/// describe the apply side: batches received, logged to its own WAL
/// copy, and applied to the warm engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplReport {
    /// `"primary"` (shipping) or `"standby"` (applying).
    pub role: String,
    /// Peer address of the pair (standby for a primary, primary for a
    /// standby).
    pub peer: String,
    /// The replication stream is currently established.
    pub connected: bool,
    /// Batches shipped (primary) or applied (standby).
    pub streamed_batches: u64,
    /// Keys those batches carried.
    pub streamed_keys: u64,
    /// Ack watermark: every batch with `seq < acked_seq` is durable on
    /// both sides of the pair.
    pub acked_seq: u64,
    /// First unused local WAL sequence number.
    pub next_seq: u64,
    /// Batches logged locally but not yet acknowledged by the peer
    /// (`next_seq − acked_seq`, saturating).
    pub unacked_batches: u64,
    /// Keys inside those batches — the mass a failover would lose.
    pub unacked_keys: u64,
    /// Catch-up snapshots sent (primary) or installed (standby).
    pub snapshots: u64,
    /// Re-shipped batches skipped by sequence dedup (exactly-once
    /// apply under reconnect/replay).
    pub duplicates: u64,
    /// Standby → primary transitions this process has performed.
    pub promotions: u64,
    /// Replication lineage (promotion generation) of this node's data:
    /// bumped durably on every promotion and carried on every REPL wire
    /// op, so divergent histories refuse each other instead of silently
    /// acking.
    pub lineage: u64,
    /// The pair refused to stream because histories diverged (standby
    /// ahead of the primary, mismatched lineage, or a non-empty standby
    /// needing a snapshot). An operator must resync the standby with a
    /// fresh data directory; clears once a stream establishes.
    pub resync_required: bool,
}

/// One member's view from a `cots-coord` coordinator.
///
/// `forwarded_keys − captured_total` is this member's contribution to
/// the cluster staleness bound: keys the member acknowledged that the
/// coordinator's federated snapshot does not yet reflect. For a healthy
/// member it shrinks back to zero at quiescence; for an unreachable one
/// it is frozen high — the widened error bound of degraded answers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemberReport {
    /// Member index in the coordinator's topology (0-based).
    pub member: usize,
    /// Member address (`host:port`).
    pub addr: String,
    /// The member answered its most recent pull (false = degraded:
    /// answers fall back to its last good snapshot).
    pub healthy: bool,
    /// Publisher epoch of the last good snapshot pulled.
    pub epoch: u64,
    /// Stream mass that snapshot accounts for.
    pub captured_total: u64,
    /// Keys this member acknowledged (as key-routing primary or as a
    /// spillover target).
    pub forwarded_keys: u64,
    /// Subset of `forwarded_keys` absorbed on behalf of unreachable
    /// peers (spillover routing).
    pub spilled_keys: u64,
    /// Successful snapshot pulls.
    pub pulls: u64,
    /// Failed pulls or connection attempts.
    pub pull_failures: u64,
    /// `forwarded_keys − captured_total` (saturating): acknowledged
    /// keys not yet reflected in the last good snapshot.
    pub staleness: u64,
    /// Standby address of this slot's replica pair, when configured.
    pub standby: Option<String>,
    /// Times this slot's routing flipped to the standby.
    pub promotions: u64,
    /// Un-acked replication tail: keys the active primary had logged
    /// but its standby had not acknowledged at the last health check —
    /// frozen at promotion as the slot's failover loss bound.
    pub repl_unacked_keys: u64,
}

/// Cluster-wide statistics from a `cots-coord` coordinator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterReport {
    /// Per-member breakdown.
    pub members: Vec<MemberReport>,
    /// Epoch of the federated (merged) snapshot.
    pub epoch: u64,
    /// Summed member mass the federated snapshot accounts for.
    pub captured_total: u64,
    /// Keys acknowledged cluster-wide.
    pub forwarded_keys: u64,
    /// Conservative cluster staleness: `forwarded_keys` minus the
    /// federated snapshot's `captured_total`. Every answer may miss at
    /// most this many acknowledged keys.
    pub staleness: u64,
    /// Members currently degraded (unreachable; answered from their
    /// last good snapshot).
    pub degraded_members: usize,
    /// Staleness attributable to degraded members — the part of the
    /// error envelope that cannot shrink until they rejoin.
    pub degraded_staleness: u64,
    /// Standby promotions performed cluster-wide.
    pub promotions: u64,
    /// Summed failover loss bound of slots currently running on a
    /// promoted standby: keys acknowledged by a dead primary that its
    /// standby had not received. Widens the answer envelope exactly
    /// once (it is the frozen part of `staleness`, never added on
    /// top), and cannot shrink until the ex-primary resyncs.
    pub repl_unacked_keys: u64,
    /// Federated merges published.
    pub merges: u64,
    /// Queries answered by the coordinator.
    pub queries: u64,
}

/// Aggregate service-level statistics for a `cots-serve` instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceReport {
    /// Keys accepted into shard queues (enqueued; may exceed applied).
    pub ingested_keys: u64,
    /// INGEST frames accepted.
    pub ingest_frames: u64,
    /// INGEST frames rejected with OVERLOADED (backpressure).
    pub rejected_frames: u64,
    /// QUERY frames answered.
    pub queries: u64,
    /// Epoch of the currently published snapshot.
    pub snapshot_epoch: u64,
    /// Items applied to the backend after the published snapshot was
    /// captured (staleness bound for query answers).
    pub staleness: u64,
    /// Counters monitored by the backend summary.
    pub monitored: usize,
    /// Per-shard breakdown.
    pub shards: Vec<ShardReport>,
    /// Crash-recovery provenance, when this instance restored state from
    /// a data directory at startup.
    pub recovery: Option<RecoveryReport>,
    /// Persistence-pipeline counters, when running with a data directory.
    pub persist: Option<PersistReport>,
    /// Replication counters, when this instance is half of a
    /// primary/standby pair.
    pub repl: Option<ReplReport>,
}

impl ServiceReport {
    /// Keys applied to the backend across all shards.
    pub fn applied_keys(&self) -> u64 {
        self.shards.iter().map(|s| s.keys).sum()
    }
}

impl ToJson for ShardReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("shard", self.shard.to_json()),
            ("batches", self.batches.to_json()),
            ("keys", self.keys.to_json()),
            ("max_queue_depth", self.max_queue_depth.to_json()),
            ("idle_parks", self.idle_parks.to_json()),
        ])
    }
}

impl FromJson for ShardReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            shard: usize::from_json(v.field("shard")?)?,
            batches: u64::from_json(v.field("batches")?)?,
            keys: u64::from_json(v.field("keys")?)?,
            max_queue_depth: u64::from_json(v.field("max_queue_depth")?)?,
            idle_parks: u64::from_json(v.field("idle_parks")?)?,
        })
    }
}

impl ToJson for RecoveryReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("checkpoint_watermark", self.checkpoint_watermark.to_json()),
            ("base_items", self.base_items.to_json()),
            ("replayed_batches", self.replayed_batches.to_json()),
            ("replayed_items", self.replayed_items.to_json()),
            ("recovered_items", self.recovered_items.to_json()),
            ("segments_scanned", self.segments_scanned.to_json()),
            ("bytes_scanned", self.bytes_scanned.to_json()),
            ("torn_frames", self.torn_frames.to_json()),
            ("dropped_bytes", self.dropped_bytes.to_json()),
            ("corrupt_checkpoints", self.corrupt_checkpoints.to_json()),
            ("elapsed_secs", self.elapsed_secs.to_json()),
        ])
    }
}

impl FromJson for RecoveryReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            checkpoint_watermark: Option::<u64>::from_json(v.field("checkpoint_watermark")?)?,
            base_items: u64::from_json(v.field("base_items")?)?,
            replayed_batches: u64::from_json(v.field("replayed_batches")?)?,
            replayed_items: u64::from_json(v.field("replayed_items")?)?,
            recovered_items: u64::from_json(v.field("recovered_items")?)?,
            segments_scanned: u64::from_json(v.field("segments_scanned")?)?,
            bytes_scanned: u64::from_json(v.field("bytes_scanned")?)?,
            torn_frames: u64::from_json(v.field("torn_frames")?)?,
            dropped_bytes: u64::from_json(v.field("dropped_bytes")?)?,
            corrupt_checkpoints: u64::from_json(v.field("corrupt_checkpoints")?)?,
            elapsed_secs: f64::from_json(v.field("elapsed_secs")?)?,
        })
    }
}

impl ToJson for PersistReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("checkpoints", self.checkpoints.to_json()),
            ("last_watermark", self.last_watermark.to_json()),
            ("wal_records", self.wal_records.to_json()),
            ("wal_keys", self.wal_keys.to_json()),
            ("wal_bytes", self.wal_bytes.to_json()),
            ("wal_syncs", self.wal_syncs.to_json()),
            ("io_errors", self.io_errors.to_json()),
        ])
    }
}

impl FromJson for PersistReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            checkpoints: u64::from_json(v.field("checkpoints")?)?,
            last_watermark: u64::from_json(v.field("last_watermark")?)?,
            wal_records: u64::from_json(v.field("wal_records")?)?,
            wal_keys: u64::from_json(v.field("wal_keys")?)?,
            wal_bytes: u64::from_json(v.field("wal_bytes")?)?,
            wal_syncs: u64::from_json(v.field("wal_syncs")?)?,
            io_errors: u64::from_json(v.field("io_errors")?)?,
        })
    }
}

impl ToJson for ReplReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("role", self.role.to_json()),
            ("peer", self.peer.to_json()),
            ("connected", self.connected.to_json()),
            ("streamed_batches", self.streamed_batches.to_json()),
            ("streamed_keys", self.streamed_keys.to_json()),
            ("acked_seq", self.acked_seq.to_json()),
            ("next_seq", self.next_seq.to_json()),
            ("unacked_batches", self.unacked_batches.to_json()),
            ("unacked_keys", self.unacked_keys.to_json()),
            ("snapshots", self.snapshots.to_json()),
            ("duplicates", self.duplicates.to_json()),
            ("promotions", self.promotions.to_json()),
            ("lineage", self.lineage.to_json()),
            ("resync_required", self.resync_required.to_json()),
        ])
    }
}

impl FromJson for ReplReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            role: String::from_json(v.field("role")?)?,
            peer: String::from_json(v.field("peer")?)?,
            connected: bool::from_json(v.field("connected")?)?,
            streamed_batches: u64::from_json(v.field("streamed_batches")?)?,
            streamed_keys: u64::from_json(v.field("streamed_keys")?)?,
            acked_seq: u64::from_json(v.field("acked_seq")?)?,
            next_seq: u64::from_json(v.field("next_seq")?)?,
            unacked_batches: u64::from_json(v.field("unacked_batches")?)?,
            unacked_keys: u64::from_json(v.field("unacked_keys")?)?,
            snapshots: u64::from_json(v.field("snapshots")?)?,
            duplicates: u64::from_json(v.field("duplicates")?)?,
            promotions: u64::from_json(v.field("promotions")?)?,
            lineage: u64::from_json(v.field("lineage")?)?,
            resync_required: bool::from_json(v.field("resync_required")?)?,
        })
    }
}

impl ToJson for MemberReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("member", self.member.to_json()),
            ("addr", self.addr.to_json()),
            ("healthy", self.healthy.to_json()),
            ("epoch", self.epoch.to_json()),
            ("captured_total", self.captured_total.to_json()),
            ("forwarded_keys", self.forwarded_keys.to_json()),
            ("spilled_keys", self.spilled_keys.to_json()),
            ("pulls", self.pulls.to_json()),
            ("pull_failures", self.pull_failures.to_json()),
            ("staleness", self.staleness.to_json()),
            ("standby", self.standby.to_json()),
            ("promotions", self.promotions.to_json()),
            ("repl_unacked_keys", self.repl_unacked_keys.to_json()),
        ])
    }
}

impl FromJson for MemberReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            member: usize::from_json(v.field("member")?)?,
            addr: String::from_json(v.field("addr")?)?,
            healthy: bool::from_json(v.field("healthy")?)?,
            epoch: u64::from_json(v.field("epoch")?)?,
            captured_total: u64::from_json(v.field("captured_total")?)?,
            forwarded_keys: u64::from_json(v.field("forwarded_keys")?)?,
            spilled_keys: u64::from_json(v.field("spilled_keys")?)?,
            pulls: u64::from_json(v.field("pulls")?)?,
            pull_failures: u64::from_json(v.field("pull_failures")?)?,
            staleness: u64::from_json(v.field("staleness")?)?,
            standby: Option::<String>::from_json(v.field("standby")?)?,
            promotions: u64::from_json(v.field("promotions")?)?,
            repl_unacked_keys: u64::from_json(v.field("repl_unacked_keys")?)?,
        })
    }
}

impl ToJson for ClusterReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("members", self.members.to_json()),
            ("epoch", self.epoch.to_json()),
            ("captured_total", self.captured_total.to_json()),
            ("forwarded_keys", self.forwarded_keys.to_json()),
            ("staleness", self.staleness.to_json()),
            ("degraded_members", self.degraded_members.to_json()),
            ("degraded_staleness", self.degraded_staleness.to_json()),
            ("promotions", self.promotions.to_json()),
            ("repl_unacked_keys", self.repl_unacked_keys.to_json()),
            ("merges", self.merges.to_json()),
            ("queries", self.queries.to_json()),
        ])
    }
}

impl FromJson for ClusterReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            members: Vec::<MemberReport>::from_json(v.field("members")?)?,
            epoch: u64::from_json(v.field("epoch")?)?,
            captured_total: u64::from_json(v.field("captured_total")?)?,
            forwarded_keys: u64::from_json(v.field("forwarded_keys")?)?,
            staleness: u64::from_json(v.field("staleness")?)?,
            degraded_members: usize::from_json(v.field("degraded_members")?)?,
            degraded_staleness: u64::from_json(v.field("degraded_staleness")?)?,
            promotions: u64::from_json(v.field("promotions")?)?,
            repl_unacked_keys: u64::from_json(v.field("repl_unacked_keys")?)?,
            merges: u64::from_json(v.field("merges")?)?,
            queries: u64::from_json(v.field("queries")?)?,
        })
    }
}

impl ToJson for ServiceReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ingested_keys", self.ingested_keys.to_json()),
            ("ingest_frames", self.ingest_frames.to_json()),
            ("rejected_frames", self.rejected_frames.to_json()),
            ("queries", self.queries.to_json()),
            ("snapshot_epoch", self.snapshot_epoch.to_json()),
            ("staleness", self.staleness.to_json()),
            ("monitored", self.monitored.to_json()),
            ("shards", self.shards.to_json()),
            ("recovery", self.recovery.to_json()),
            ("persist", self.persist.to_json()),
            ("repl", self.repl.to_json()),
        ])
    }
}

impl FromJson for ServiceReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            ingested_keys: u64::from_json(v.field("ingested_keys")?)?,
            ingest_frames: u64::from_json(v.field("ingest_frames")?)?,
            rejected_frames: u64::from_json(v.field("rejected_frames")?)?,
            queries: u64::from_json(v.field("queries")?)?,
            snapshot_epoch: u64::from_json(v.field("snapshot_epoch")?)?,
            staleness: u64::from_json(v.field("staleness")?)?,
            monitored: usize::from_json(v.field("monitored")?)?,
            shards: Vec::<ShardReport>::from_json(v.field("shards")?)?,
            recovery: Option::<RecoveryReport>::from_json(v.field("recovery")?)?,
            persist: Option::<PersistReport>::from_json(v.field("persist")?)?,
            repl: Option::<ReplReport>::from_json(v.field("repl")?)?,
        })
    }
}

impl ToJson for RunStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("engine", self.engine.to_json()),
            ("threads", self.threads.to_json()),
            ("elements", self.elements.to_json()),
            ("elapsed", self.elapsed.as_secs_f64().to_json()),
            ("work", self.work.to_json()),
        ])
    }
}

impl FromJson for RunStats {
    fn from_json(v: &Json) -> JsonResult<Self> {
        let secs = f64::from_json(v.field("elapsed")?)?;
        Ok(Self {
            engine: String::from_json(v.field("engine")?)?,
            threads: usize::from_json(v.field("threads")?)?,
            elements: u64::from_json(v.field("elements")?)?,
            elapsed: Duration::from_secs_f64(secs.max(0.0)),
            work: WorkCounters::from_json(v.field("work")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_and_snapshots() {
        let t = WorkTally::new();
        t.elements(10);
        t.elements(5);
        t.summary_ops(3);
        t.boundary_crossings(5);
        t.delegated_increments(10);
        let s = t.snapshot();
        assert_eq!(s.elements, 15);
        assert_eq!(s.summary_ops, 3);
        assert_eq!(s.combining_factor(), 3.0);
    }

    #[test]
    fn combining_factor_degenerate() {
        let s = WorkCounters::default();
        assert_eq!(s.combining_factor(), 1.0);
        assert_eq!(s.summary_ops_per_element(), 0.0);
    }

    #[test]
    fn counters_merge() {
        let mut a = WorkCounters {
            elements: 1,
            merges: 2,
            ..Default::default()
        };
        let b = WorkCounters {
            elements: 3,
            merged_counters: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.elements, 4);
        assert_eq!(a.merges, 2);
        assert_eq!(a.merged_counters, 7);
    }

    #[test]
    fn tally_is_thread_safe() {
        let t = std::sync::Arc::new(WorkTally::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.elements(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.snapshot().elements, 4000);
    }

    #[test]
    fn run_stats_throughput_and_speedup() {
        let base = RunStats {
            engine: "sequential".into(),
            threads: 1,
            elements: 1_000_000,
            elapsed: Duration::from_secs(2),
            work: WorkCounters::default(),
        };
        let fast = RunStats {
            engine: "cots".into(),
            threads: 8,
            elements: 1_000_000,
            elapsed: Duration::from_secs(1),
            work: WorkCounters::default(),
        };
        assert_eq!(fast.throughput(), 1_000_000.0);
        assert_eq!(fast.speedup_vs(&base), 2.0);
    }

    #[test]
    fn service_report_json_round_trip() {
        let r = ServiceReport {
            ingested_keys: 1_000,
            ingest_frames: 10,
            rejected_frames: 2,
            queries: 7,
            snapshot_epoch: 5,
            staleness: 128,
            monitored: 100,
            shards: vec![
                ShardReport {
                    shard: 0,
                    batches: 6,
                    keys: 600,
                    max_queue_depth: 3,
                    idle_parks: 9,
                },
                ShardReport {
                    shard: 1,
                    batches: 4,
                    keys: 400,
                    max_queue_depth: 1,
                    idle_parks: 2,
                },
            ],
            recovery: Some(RecoveryReport {
                checkpoint_watermark: Some(17),
                base_items: 800,
                replayed_batches: 3,
                replayed_items: 200,
                recovered_items: 1_000,
                segments_scanned: 2,
                bytes_scanned: 4_096,
                torn_frames: 1,
                dropped_bytes: 37,
                corrupt_checkpoints: 0,
                elapsed_secs: 0.25,
            }),
            persist: Some(PersistReport {
                checkpoints: 4,
                last_watermark: 17,
                wal_records: 9,
                wal_keys: 1_000,
                wal_bytes: 8_200,
                wal_syncs: 4,
                io_errors: 0,
            }),
            repl: Some(ReplReport {
                role: "primary".into(),
                peer: "127.0.0.1:6060".into(),
                connected: true,
                streamed_batches: 12,
                streamed_keys: 1_200,
                acked_seq: 11,
                next_seq: 13,
                unacked_batches: 2,
                unacked_keys: 150,
                snapshots: 1,
                duplicates: 3,
                promotions: 0,
                lineage: 2,
                resync_required: true,
            }),
        };
        assert_eq!(r.applied_keys(), 1_000);
        let json = crate::json::to_string(&r);
        let back: ServiceReport = crate::json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let bare = ServiceReport::default();
        let back: ServiceReport =
            crate::json::from_str(&crate::json::to_string(&bare)).unwrap();
        assert_eq!(back.recovery, None);
        assert_eq!(back.persist, None);
        assert_eq!(back.repl, None);
    }

    #[test]
    fn cluster_report_json_round_trip() {
        let r = ClusterReport {
            members: vec![
                MemberReport {
                    member: 0,
                    addr: "127.0.0.1:5050".into(),
                    healthy: true,
                    epoch: 12,
                    captured_total: 9_000,
                    forwarded_keys: 9_500,
                    spilled_keys: 0,
                    pulls: 40,
                    pull_failures: 0,
                    staleness: 500,
                    standby: Some("127.0.0.1:6050".into()),
                    promotions: 1,
                    repl_unacked_keys: 120,
                },
                MemberReport {
                    member: 1,
                    addr: "127.0.0.1:5051".into(),
                    healthy: false,
                    epoch: 7,
                    captured_total: 4_000,
                    forwarded_keys: 4_300,
                    spilled_keys: 200,
                    pulls: 21,
                    pull_failures: 3,
                    staleness: 300,
                    standby: None,
                    promotions: 0,
                    repl_unacked_keys: 0,
                },
            ],
            epoch: 9,
            captured_total: 13_000,
            forwarded_keys: 13_800,
            staleness: 800,
            degraded_members: 1,
            degraded_staleness: 300,
            promotions: 1,
            repl_unacked_keys: 120,
            merges: 61,
            queries: 14,
        };
        let back: ClusterReport =
            crate::json::from_str(&crate::json::to_string(&r)).unwrap();
        assert_eq!(back, r);
        let bare = ClusterReport::default();
        let back: ClusterReport =
            crate::json::from_str(&crate::json::to_string(&bare)).unwrap();
        assert_eq!(back, bare);
    }

    #[test]
    fn run_stats_json_round_trip() {
        let r = RunStats {
            engine: "cots".into(),
            threads: 4,
            elements: 42,
            elapsed: Duration::from_millis(1500),
            work: WorkCounters::default(),
        };
        let json = crate::json::to_string(&r);
        let back: RunStats = crate::json::from_str(&json).unwrap();
        assert_eq!(back.engine, "cots");
        assert_eq!(back.threads, 4);
        assert_eq!(back.work, r.work);
        assert!((back.elapsed.as_secs_f64() - 1.5).abs() < 1e-9);
    }
}
