//! The query model of the paper (§3.2).
//!
//! Four query shapes are supported:
//!
//! * **Query 1 — point**: `IsElementFrequent(e)` / `IsElementInTopk(e)`.
//! * **Query 2 — set**: all frequent elements / the top-k set.
//! * **Query 3 — interval/discrete**: a point or set query re-evaluated
//!   every *n* updates (or every Δt). This is the shape the parallel engines
//!   actually serve; the benchmark harness poses one every 50 000 updates as
//!   the paper does.
//! * **Query 4 — continuous**: a query re-evaluated on every update. As the
//!   paper argues, "every update" is ill-defined under parallel processing,
//!   so continuous queries are modelled as interval queries with period 1 and
//!   only supported by the sequential engines.

use crate::counter::CounterEntry;
use crate::element::Element;
use crate::json::{FromJson, Json, JsonError, JsonResult, ToJson};

/// A frequency threshold: either an absolute count or a fraction φ of the
/// stream length ("clicked more than 0.1% of the total clicks").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// Absolute minimum count.
    Count(u64),
    /// Fraction of the processed stream length, in `[0, 1]`.
    Fraction(f64),
}

impl Threshold {
    /// Resolve against the number of processed elements.
    pub fn resolve(self, total: u64) -> u64 {
        match self {
            Threshold::Count(c) => c,
            Threshold::Fraction(f) => {
                debug_assert!((0.0..=1.0).contains(&f), "fraction out of range: {f}");
                // ceil(f * total), computed in f64: exact enough for the
                // stream lengths used here and saturating at the ends.
                (f * total as f64).ceil().max(0.0) as u64
            }
        }
    }
}

/// Query 1: a boolean query about a single element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointQuery<K> {
    /// `IsElementFrequent(e)` at the given threshold.
    IsFrequent {
        /// The element asked about.
        item: K,
        /// The frequency threshold.
        threshold: Threshold,
    },
    /// `IsElementInTopk(e)`.
    IsInTopK {
        /// The element asked about.
        item: K,
        /// The rank cutoff.
        k: usize,
    },
}

/// Query 2: a query returning a set of elements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SetQuery {
    /// All elements whose estimated count meets the threshold.
    Frequent {
        /// The frequency threshold.
        threshold: Threshold,
    },
    /// The k most frequent elements.
    TopK {
        /// How many elements to report.
        k: usize,
    },
}

/// How often an interval (Query 3) evaluation fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPeriod {
    /// Every `n` processed updates (the paper's experiments use 50 000).
    Updates(u64),
}

/// Queries 3/4: a point or set query plus a re-evaluation period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalQuery<K> {
    /// What to evaluate.
    pub query: QueryKind<K>,
    /// How often.
    pub period: QueryPeriod,
}

/// Either query shape, for interval scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind<K> {
    /// A point query.
    Point(PointQuery<K>),
    /// A set query.
    Set(SetQuery),
}

/// The answer to a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer<K> {
    /// Answer to a point query.
    Bool(bool),
    /// Answer to a set query: entries in decreasing-count order.
    Set(Vec<CounterEntry<K>>),
}

impl<K: Element> QueryAnswer<K> {
    /// Unwrap a boolean answer.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryAnswer::Bool(b) => Some(*b),
            QueryAnswer::Set(_) => None,
        }
    }

    /// Unwrap a set answer.
    pub fn as_set(&self) -> Option<&[CounterEntry<K>]> {
        match self {
            QueryAnswer::Bool(_) => None,
            QueryAnswer::Set(s) => Some(s),
        }
    }
}

/// Decompose an externally-tagged enum value: `"Variant"` or
/// `{"Variant": payload}`.
fn variant(v: &Json) -> JsonResult<(&str, Option<&Json>)> {
    match v {
        Json::Str(name) => Ok((name, None)),
        Json::Obj(members) if members.len() == 1 => {
            Ok((members[0].0.as_str(), Some(&members[0].1)))
        }
        _ => Err(JsonError("expected an enum variant".into())),
    }
}

fn tagged(name: &str, payload: Json) -> Json {
    Json::Obj(vec![(name.to_string(), payload)])
}

impl ToJson for Threshold {
    fn to_json(&self) -> Json {
        match self {
            Threshold::Count(c) => tagged("Count", c.to_json()),
            Threshold::Fraction(f) => tagged("Fraction", f.to_json()),
        }
    }
}

impl FromJson for Threshold {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("Count", Some(p)) => Ok(Threshold::Count(u64::from_json(p)?)),
            ("Fraction", Some(p)) => Ok(Threshold::Fraction(f64::from_json(p)?)),
            (name, _) => Err(JsonError(format!("unknown Threshold variant `{name}`"))),
        }
    }
}

impl<K: ToJson> ToJson for PointQuery<K> {
    fn to_json(&self) -> Json {
        match self {
            PointQuery::IsFrequent { item, threshold } => tagged(
                "IsFrequent",
                Json::obj(vec![
                    ("item", item.to_json()),
                    ("threshold", threshold.to_json()),
                ]),
            ),
            PointQuery::IsInTopK { item, k } => tagged(
                "IsInTopK",
                Json::obj(vec![("item", item.to_json()), ("k", k.to_json())]),
            ),
        }
    }
}

impl<K: FromJson> FromJson for PointQuery<K> {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("IsFrequent", Some(p)) => Ok(PointQuery::IsFrequent {
                item: K::from_json(p.field("item")?)?,
                threshold: Threshold::from_json(p.field("threshold")?)?,
            }),
            ("IsInTopK", Some(p)) => Ok(PointQuery::IsInTopK {
                item: K::from_json(p.field("item")?)?,
                k: usize::from_json(p.field("k")?)?,
            }),
            (name, _) => Err(JsonError(format!("unknown PointQuery variant `{name}`"))),
        }
    }
}

impl ToJson for SetQuery {
    fn to_json(&self) -> Json {
        match self {
            SetQuery::Frequent { threshold } => tagged(
                "Frequent",
                Json::obj(vec![("threshold", threshold.to_json())]),
            ),
            SetQuery::TopK { k } => tagged("TopK", Json::obj(vec![("k", k.to_json())])),
        }
    }
}

impl FromJson for SetQuery {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("Frequent", Some(p)) => Ok(SetQuery::Frequent {
                threshold: Threshold::from_json(p.field("threshold")?)?,
            }),
            ("TopK", Some(p)) => Ok(SetQuery::TopK {
                k: usize::from_json(p.field("k")?)?,
            }),
            (name, _) => Err(JsonError(format!("unknown SetQuery variant `{name}`"))),
        }
    }
}

impl ToJson for QueryPeriod {
    fn to_json(&self) -> Json {
        match self {
            QueryPeriod::Updates(n) => tagged("Updates", n.to_json()),
        }
    }
}

impl FromJson for QueryPeriod {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("Updates", Some(p)) => Ok(QueryPeriod::Updates(u64::from_json(p)?)),
            (name, _) => Err(JsonError(format!("unknown QueryPeriod variant `{name}`"))),
        }
    }
}

impl<K: ToJson> ToJson for QueryKind<K> {
    fn to_json(&self) -> Json {
        match self {
            QueryKind::Point(p) => tagged("Point", p.to_json()),
            QueryKind::Set(s) => tagged("Set", s.to_json()),
        }
    }
}

impl<K: FromJson> FromJson for QueryKind<K> {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("Point", Some(p)) => Ok(QueryKind::Point(PointQuery::from_json(p)?)),
            ("Set", Some(p)) => Ok(QueryKind::Set(SetQuery::from_json(p)?)),
            (name, _) => Err(JsonError(format!("unknown QueryKind variant `{name}`"))),
        }
    }
}

impl<K: ToJson> ToJson for IntervalQuery<K> {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("query", self.query.to_json()),
            ("period", self.period.to_json()),
        ])
    }
}

impl<K: FromJson> FromJson for IntervalQuery<K> {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            query: QueryKind::from_json(v.field("query")?)?,
            period: QueryPeriod::from_json(v.field("period")?)?,
        })
    }
}

impl<K: ToJson> ToJson for QueryAnswer<K> {
    fn to_json(&self) -> Json {
        match self {
            QueryAnswer::Bool(b) => tagged("Bool", b.to_json()),
            QueryAnswer::Set(s) => tagged("Set", s.to_json()),
        }
    }
}

impl<K: FromJson> FromJson for QueryAnswer<K> {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("Bool", Some(p)) => Ok(QueryAnswer::Bool(bool::from_json(p)?)),
            ("Set", Some(p)) => Ok(QueryAnswer::Set(Vec::from_json(p)?)),
            (name, _) => Err(JsonError(format!("unknown QueryAnswer variant `{name}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_resolution() {
        assert_eq!(Threshold::Count(7).resolve(1000), 7);
        assert_eq!(Threshold::Fraction(0.001).resolve(100_000), 100);
        assert_eq!(Threshold::Fraction(0.0).resolve(500), 0);
        assert_eq!(Threshold::Fraction(1.0).resolve(500), 500);
        // ceil semantics: 0.1% of 1001 = 1.001 -> 2.
        assert_eq!(Threshold::Fraction(0.001).resolve(1001), 2);
        // Zero-length stream.
        assert_eq!(Threshold::Fraction(0.5).resolve(0), 0);
    }

    #[test]
    fn answer_accessors() {
        let b: QueryAnswer<u64> = QueryAnswer::Bool(true);
        assert_eq!(b.as_bool(), Some(true));
        assert!(b.as_set().is_none());
        let s: QueryAnswer<u64> = QueryAnswer::Set(vec![CounterEntry::new(1, 2, 0)]);
        assert!(s.as_bool().is_none());
        assert_eq!(s.as_set().unwrap().len(), 1);
    }

    #[test]
    fn json_round_trip() {
        let q: IntervalQuery<u64> = IntervalQuery {
            query: QueryKind::Set(SetQuery::TopK { k: 25 }),
            period: QueryPeriod::Updates(50_000),
        };
        let json = crate::json::to_string(&q);
        let back: IntervalQuery<u64> = crate::json::from_str(&json).unwrap();
        assert_eq!(q, back);

        let p: QueryKind<u64> = QueryKind::Point(PointQuery::IsFrequent {
            item: 9,
            threshold: Threshold::Fraction(0.25),
        });
        let back: QueryKind<u64> = crate::json::from_str(&crate::json::to_string(&p)).unwrap();
        assert_eq!(p, back);

        let a: QueryAnswer<u64> = QueryAnswer::Set(vec![CounterEntry::new(1, 2, 0)]);
        let back: QueryAnswer<u64> = crate::json::from_str(&crate::json::to_string(&a)).unwrap();
        assert_eq!(a, back);
    }
}
