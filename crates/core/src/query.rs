//! The query model of the paper (§3.2).
//!
//! Four query shapes are supported:
//!
//! * **Query 1 — point**: `IsElementFrequent(e)` / `IsElementInTopk(e)`.
//! * **Query 2 — set**: all frequent elements / the top-k set.
//! * **Query 3 — interval/discrete**: a point or set query re-evaluated
//!   every *n* updates (or every Δt). This is the shape the parallel engines
//!   actually serve; the benchmark harness poses one every 50 000 updates as
//!   the paper does.
//! * **Query 4 — continuous**: a query re-evaluated on every update. As the
//!   paper argues, "every update" is ill-defined under parallel processing,
//!   so continuous queries are modelled as interval queries with period 1 and
//!   only supported by the sequential engines.

use serde::{Deserialize, Serialize};

use crate::counter::CounterEntry;
use crate::element::Element;

/// A frequency threshold: either an absolute count or a fraction φ of the
/// stream length ("clicked more than 0.1% of the total clicks").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Threshold {
    /// Absolute minimum count.
    Count(u64),
    /// Fraction of the processed stream length, in `[0, 1]`.
    Fraction(f64),
}

impl Threshold {
    /// Resolve against the number of processed elements.
    pub fn resolve(self, total: u64) -> u64 {
        match self {
            Threshold::Count(c) => c,
            Threshold::Fraction(f) => {
                debug_assert!((0.0..=1.0).contains(&f), "fraction out of range: {f}");
                // ceil(f * total), computed in f64: exact enough for the
                // stream lengths used here and saturating at the ends.
                (f * total as f64).ceil().max(0.0) as u64
            }
        }
    }
}

/// Query 1: a boolean query about a single element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PointQuery<K> {
    /// `IsElementFrequent(e)` at the given threshold.
    IsFrequent {
        /// The element asked about.
        item: K,
        /// The frequency threshold.
        threshold: Threshold,
    },
    /// `IsElementInTopk(e)`.
    IsInTopK {
        /// The element asked about.
        item: K,
        /// The rank cutoff.
        k: usize,
    },
}

/// Query 2: a query returning a set of elements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SetQuery {
    /// All elements whose estimated count meets the threshold.
    Frequent {
        /// The frequency threshold.
        threshold: Threshold,
    },
    /// The k most frequent elements.
    TopK {
        /// How many elements to report.
        k: usize,
    },
}

/// How often an interval (Query 3) evaluation fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryPeriod {
    /// Every `n` processed updates (the paper's experiments use 50 000).
    Updates(u64),
}

/// Queries 3/4: a point or set query plus a re-evaluation period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalQuery<K> {
    /// What to evaluate.
    pub query: QueryKind<K>,
    /// How often.
    pub period: QueryPeriod,
}

/// Either query shape, for interval scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueryKind<K> {
    /// A point query.
    Point(PointQuery<K>),
    /// A set query.
    Set(SetQuery),
}

/// The answer to a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryAnswer<K> {
    /// Answer to a point query.
    Bool(bool),
    /// Answer to a set query: entries in decreasing-count order.
    Set(Vec<CounterEntry<K>>),
}

impl<K: Element> QueryAnswer<K> {
    /// Unwrap a boolean answer.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryAnswer::Bool(b) => Some(*b),
            QueryAnswer::Set(_) => None,
        }
    }

    /// Unwrap a set answer.
    pub fn as_set(&self) -> Option<&[CounterEntry<K>]> {
        match self {
            QueryAnswer::Bool(_) => None,
            QueryAnswer::Set(s) => Some(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_resolution() {
        assert_eq!(Threshold::Count(7).resolve(1000), 7);
        assert_eq!(Threshold::Fraction(0.001).resolve(100_000), 100);
        assert_eq!(Threshold::Fraction(0.0).resolve(500), 0);
        assert_eq!(Threshold::Fraction(1.0).resolve(500), 500);
        // ceil semantics: 0.1% of 1001 = 1.001 -> 2.
        assert_eq!(Threshold::Fraction(0.001).resolve(1001), 2);
        // Zero-length stream.
        assert_eq!(Threshold::Fraction(0.5).resolve(0), 0);
    }

    #[test]
    fn answer_accessors() {
        let b: QueryAnswer<u64> = QueryAnswer::Bool(true);
        assert_eq!(b.as_bool(), Some(true));
        assert!(b.as_set().is_none());
        let s: QueryAnswer<u64> = QueryAnswer::Set(vec![CounterEntry::new(1, 2, 0)]);
        assert!(s.as_bool().is_none());
        assert_eq!(s.as_set().unwrap().len(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let q: IntervalQuery<u64> = IntervalQuery {
            query: QueryKind::Set(SetQuery::TopK { k: 25 }),
            period: QueryPeriod::Updates(50_000),
        };
        let json = serde_json::to_string(&q).unwrap();
        let back: IntervalQuery<u64> = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
