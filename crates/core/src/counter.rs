//! Counter entries and summary snapshots.
//!
//! Counter-based algorithms monitor a bounded set of elements, each with an
//! over-estimating `count` and an `error` bound such that
//! `count - error <= true_frequency <= count`. A [`Snapshot`] is the
//! engine-independent export format: entries sorted by decreasing count, from
//! which every query of the paper's model can be answered.

use crate::element::Element;
use crate::json::{FromJson, Json, JsonResult, ToJson};
use crate::query::Threshold;

/// One monitored element: the guaranteed-over-estimate `count` and the
/// maximum possible over-estimation `error`.
///
/// For Space Saving, `error` is the count the element inherited when it
/// overwrote the previous minimum; a *guaranteed* count of
/// `count - error` is thus always a lower bound on the true frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterEntry<K> {
    /// The monitored element.
    pub item: K,
    /// Estimated frequency; never less than the true frequency.
    pub count: u64,
    /// Over-estimation bound; `count - error` never exceeds the true
    /// frequency.
    pub error: u64,
}

impl<K: Element> CounterEntry<K> {
    /// Create an entry.
    pub fn new(item: K, count: u64, error: u64) -> Self {
        debug_assert!(error <= count, "error bound may not exceed the count");
        Self { item, count, error }
    }

    /// The guaranteed (lower-bound) frequency of the element.
    #[inline]
    pub fn guaranteed(&self) -> u64 {
        self.count - self.error
    }
}

/// A consistent, sorted view of a frequency summary.
///
/// Entries are ordered by decreasing `count` (ties broken arbitrarily but
/// deterministically), which is the order in which the Stream Summary
/// structure naturally maintains them. `total` is the number of stream
/// elements the summary has absorbed — for any counter-based algorithm in
/// this suite the invariant `Σ count == total` holds whenever the alphabet
/// has been counted exactly or the structure is full (Space Saving maintains
/// it unconditionally).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot<K> {
    entries: Vec<CounterEntry<K>>,
    total: u64,
}

impl<K: Element> Snapshot<K> {
    /// Build a snapshot from unsorted entries.
    pub fn new(mut entries: Vec<CounterEntry<K>>, total: u64) -> Self {
        entries.sort_by_key(|e| std::cmp::Reverse(e.count));
        Self { entries, total }
    }

    /// Build from entries already sorted by decreasing count.
    ///
    /// Debug builds verify the order.
    pub fn from_sorted(entries: Vec<CounterEntry<K>>, total: u64) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].count >= w[1].count));
        Self { entries, total }
    }

    /// Entries sorted by decreasing count.
    pub fn entries(&self) -> &[CounterEntry<K>] {
        &self.entries
    }

    /// Number of stream elements processed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of monitored elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is monitored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated count of `item`, if monitored.
    pub fn get(&self, item: &K) -> Option<&CounterEntry<K>> {
        self.entries.iter().find(|e| &e.item == item)
    }

    /// Resolve a [`Threshold`] against the processed total.
    pub fn resolve_threshold(&self, threshold: Threshold) -> u64 {
        threshold.resolve(self.total)
    }

    /// Elements whose estimated count meets `threshold` (Query 2, frequent
    /// elements). Entries are reported in decreasing-count order.
    pub fn frequent(&self, threshold: Threshold) -> Vec<CounterEntry<K>> {
        let min = self.resolve_threshold(threshold);
        self.entries
            .iter()
            .take_while(|e| e.count >= min)
            .copied()
            .collect()
    }

    /// Elements whose *guaranteed* count meets `threshold` — the subset of
    /// [`Snapshot::frequent`] that is certainly correct.
    pub fn guaranteed_frequent(&self, threshold: Threshold) -> Vec<CounterEntry<K>> {
        let min = self.resolve_threshold(threshold);
        self.entries
            .iter()
            .filter(|e| e.guaranteed() >= min)
            .copied()
            .collect()
    }

    /// The `k` elements with the highest estimated counts (Query 2, top-k).
    pub fn top_k(&self, k: usize) -> Vec<CounterEntry<K>> {
        self.entries.iter().take(k).copied().collect()
    }

    /// Point query: is `item` frequent at `threshold`? (Query 1)
    pub fn is_frequent(&self, item: &K, threshold: Threshold) -> bool {
        let min = self.resolve_threshold(threshold);
        self.get(item).map(|e| e.count >= min).unwrap_or(false)
    }

    /// Point query: is `item` among the top `k`? (Query 1)
    ///
    /// Implemented as the paper describes: determine the k-th frequency by
    /// rank, then compare the item's estimate against it.
    pub fn is_in_top_k(&self, item: &K, k: usize) -> bool {
        if k == 0 {
            return false;
        }
        let Some(entry) = self.get(item) else {
            return false;
        };
        match self.entries.get(k - 1) {
            // Fewer than k monitored elements: anything monitored is top-k.
            None => true,
            Some(kth) => entry.count >= kth.count,
        }
    }

    /// Consume the snapshot, returning its entries.
    pub fn into_entries(self) -> Vec<CounterEntry<K>> {
        self.entries
    }
}

/// Structural audit of a snapshot, used on summaries restored from disk:
/// a CRC-valid checkpoint whose *contents* violate the counter algebra
/// (error exceeding count, unsorted entries, guaranteed mass exceeding
/// the stream total) must be rejected rather than served.
#[cfg(feature = "invariants")]
impl<K: Element> crate::invariants::CheckInvariants for Snapshot<K> {
    fn violations(&self) -> Vec<crate::invariants::Violation> {
        use crate::invariants::Violation;
        let mut out = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            if e.error > e.count {
                out.push(Violation::new(
                    "error-bound",
                    format!("entry {i}: error {} exceeds count {}", e.error, e.count),
                ));
            }
        }
        if let Some(i) = self
            .entries
            .windows(2)
            .position(|w| w[0].count < w[1].count)
        {
            out.push(Violation::new(
                "sort-order",
                format!(
                    "entry {} (count {}) follows entry {i} (count {})",
                    i + 1,
                    self.entries[i + 1].count,
                    self.entries[i].count
                ),
            ));
        }
        // Saturating: an auditor must survive the corruption it reports
        // (error > count would underflow `guaranteed()` here).
        let guaranteed: u64 = self
            .entries
            .iter()
            .map(|e| e.count.saturating_sub(e.error))
            .sum();
        if guaranteed > self.total {
            out.push(Violation::new(
                "guaranteed-mass",
                format!(
                    "guaranteed mass {guaranteed} exceeds the stream total {}",
                    self.total
                ),
            ));
        }
        out
    }
}

impl<K: ToJson> ToJson for CounterEntry<K> {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("item", self.item.to_json()),
            ("count", self.count.to_json()),
            ("error", self.error.to_json()),
        ])
    }
}

impl<K: FromJson> FromJson for CounterEntry<K> {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            item: K::from_json(v.field("item")?)?,
            count: u64::from_json(v.field("count")?)?,
            error: u64::from_json(v.field("error")?)?,
        })
    }
}

impl<K: ToJson> ToJson for Snapshot<K> {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("entries", self.entries.to_json()),
            ("total", self.total.to_json()),
        ])
    }
}

impl<K: FromJson> FromJson for Snapshot<K> {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            entries: Vec::from_json(v.field("entries")?)?,
            total: u64::from_json(v.field("total")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Snapshot<u64> {
        Snapshot::new(
            vec![
                CounterEntry::new(3, 10, 0),
                CounterEntry::new(1, 50, 5),
                CounterEntry::new(2, 30, 0),
                CounterEntry::new(4, 10, 9),
            ],
            100,
        )
    }

    #[test]
    fn sorted_by_count_desc() {
        let s = snap();
        let counts: Vec<u64> = s.entries().iter().map(|e| e.count).collect();
        assert_eq!(counts, vec![50, 30, 10, 10]);
    }

    #[test]
    fn frequent_absolute_threshold() {
        let s = snap();
        let f = s.frequent(Threshold::Count(30));
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].item, 1);
        assert_eq!(f[1].item, 2);
    }

    #[test]
    fn frequent_fractional_threshold() {
        let s = snap();
        // 0.3 of 100 = 30.
        let f = s.frequent(Threshold::Fraction(0.3));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn guaranteed_frequent_excludes_uncertain() {
        let s = snap();
        // Threshold 10: items 3 (guaranteed 10) qualifies, item 4
        // (guaranteed 1) does not.
        let g = s.guaranteed_frequent(Threshold::Count(10));
        let items: Vec<u64> = g.iter().map(|e| e.item).collect();
        assert!(items.contains(&3));
        assert!(!items.contains(&4));
    }

    #[test]
    fn top_k_basic_and_oversized() {
        let s = snap();
        assert_eq!(s.top_k(2).len(), 2);
        assert_eq!(s.top_k(2)[0].item, 1);
        assert_eq!(s.top_k(99).len(), 4);
        assert!(s.top_k(0).is_empty());
    }

    #[test]
    fn point_queries() {
        let s = snap();
        assert!(s.is_frequent(&1, Threshold::Count(50)));
        assert!(!s.is_frequent(&1, Threshold::Count(51)));
        assert!(!s.is_frequent(&99, Threshold::Count(1)));
        assert!(s.is_in_top_k(&1, 1));
        assert!(!s.is_in_top_k(&3, 2));
        // Ties: item 3 and 4 both have count 10; both are "in the top 3"
        // because their count equals the 3rd frequency.
        assert!(s.is_in_top_k(&3, 3));
        assert!(s.is_in_top_k(&4, 3));
        assert!(!s.is_in_top_k(&1, 0));
        assert!(s.is_in_top_k(&4, 100));
    }

    #[test]
    fn guaranteed_counts() {
        let e = CounterEntry::new(7u64, 12, 4);
        assert_eq!(e.guaranteed(), 8);
    }

    #[test]
    fn empty_snapshot() {
        let s: Snapshot<u64> = Snapshot::new(vec![], 0);
        assert!(s.is_empty());
        assert!(s.frequent(Threshold::Count(1)).is_empty());
        assert!(s.top_k(3).is_empty());
        assert!(!s.is_frequent(&1, Threshold::Count(0)));
    }

    #[test]
    fn json_round_trip() {
        let s = snap();
        let json = crate::json::to_string(&s);
        let back: Snapshot<u64> = crate::json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[cfg(feature = "invariants")]
    #[test]
    fn snapshot_invariants_catch_corrupt_state() {
        use crate::invariants::CheckInvariants;
        assert!(snap().violations().is_empty());
        // Hand-build corrupt snapshots the constructors would reject.
        let err_exceeds = Snapshot {
            entries: vec![CounterEntry {
                item: 1u64,
                count: 3,
                error: 5,
            }],
            total: 3,
        };
        assert!(err_exceeds
            .violations()
            .iter()
            .any(|v| v.invariant == "error-bound"));
        let unsorted = Snapshot {
            entries: vec![CounterEntry::new(1u64, 2, 0), CounterEntry::new(2u64, 9, 0)],
            total: 11,
        };
        assert!(unsorted
            .violations()
            .iter()
            .any(|v| v.invariant == "sort-order"));
        let over_mass = Snapshot {
            entries: vec![CounterEntry::new(1u64, 50, 0)],
            total: 10,
        };
        assert!(over_mass
            .violations()
            .iter()
            .any(|v| v.invariant == "guaranteed-mass"));
    }
}
